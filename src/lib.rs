//! # mcds — Minimum Connected Dominating Sets in Wireless Ad Hoc Networks
//!
//! A faithful, full-stack reproduction of
//!
//! > Peng-Jun Wan, Lixin Wang, Frances Yao,
//! > *"Two-Phased Approximation Algorithms for Minimum CDS in Wireless Ad
//! > Hoc Networks"*, ICDCS 2008.
//!
//! The paper studies **connected dominating sets** (CDS) — the standard
//! virtual-backbone abstraction for wireless ad hoc networks — on
//! **unit-disk graphs** (UDGs), and contributes: a tighter packing bound
//! `α(G) ≤ 3⅔·γ_c(G) + 1` (Corollary 7); an improved `7⅓` approximation
//! ratio for the classic Wan–Alzoubi–Frieder two-phased algorithm
//! (Theorem 8); and a new two-phased algorithm with greedy connector
//! selection whose ratio is at most `6 7/18` (Theorem 10).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`geom`] | `mcds-geom` | points, disks, hulls, spatial grid, packing predicates |
//! | [`graph`] | `mcds-graph` | CSR graphs, BFS trees, union–find, CDS/MIS predicates |
//! | [`udg`] | `mcds-udg` | unit-disk-graph model, instance generators, I/O |
//! | [`mis`] | `mcds-mis` | first-fit MIS, star decompositions, packing bounds, Fig. 1/2 constructions |
//! | [`cds`] | `mcds-cds` | the two-phased algorithms and baselines |
//! | [`exact`] | `mcds-exact` | exact `α`, `γ`, `γ_c` solvers |
//! | [`distsim`] | `mcds-distsim` | synchronous protocol simulator, distributed WAF |
//! | [`viz`] | `mcds-viz` | SVG rendering of instances, backbones and the paper's figures |
//! | [`maintain`] | `mcds-maintain` | dynamic CDS maintenance under churn |
//! | [`obs`] | `mcds-obs` | zero-dep tracing, counters/histograms, JSONL profiling |
//! | [`rng`] | `mcds-rng` | zero-dependency seeded PRNG (hermetic builds) |
//! | [`check`] | `mcds-check` | in-tree property testing: generators, shrinking, corpus, differential oracle |
//!
//! # Quickstart
//!
//! ```
//! use mcds::prelude::*;
//! use mcds_rng::{rngs::StdRng, SeedableRng};
//!
//! // Deploy 60 sensors uniformly in a 4×4 field (unit radio range).
//! let mut rng = StdRng::seed_from_u64(7);
//! let udg = mcds::udg::gen::connected_uniform(&mut rng, 60, 4.0, 100)
//!     .expect("dense deployments are connected");
//!
//! // Build the virtual backbone with the paper's 6 7/18-approximation.
//! let backbone = greedy_cds(udg.graph())?;
//! assert!(backbone.verify(udg.graph()).is_ok());
//!
//! // Compare with the classic WAF 7 1/3-approximation.
//! let waf = waf_cds(udg.graph())?;
//! println!("greedy: {} nodes, waf: {} nodes", backbone.len(), waf.len());
//! # Ok::<(), mcds::cds::CdsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;

pub use mcds_cds as cds;
pub use mcds_check as check;
pub use mcds_distsim as distsim;
pub use mcds_exact as exact;
pub use mcds_geom as geom;
pub use mcds_graph as graph;
pub use mcds_maintain as maintain;
pub use mcds_mis as mis;
pub use mcds_obs as obs;
pub use mcds_rng as rng;
pub use mcds_udg as udg;
pub use mcds_viz as viz;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use mcds_cds::{
        arbitrary_mis_cds, chvatal_cds, greedy_cds, greedy_cds_rooted, waf_cds, waf_cds_rooted,
        Cds, CdsError,
    };
    pub use mcds_geom::Point;
    pub use mcds_graph::{properties, Graph};
    pub use mcds_mis::BfsMis;
    pub use mcds_udg::Udg;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reaches_every_crate() {
        use crate::prelude::*;
        let g = Graph::path(5);
        let cds = greedy_cds(&g).unwrap();
        assert!(properties::is_connected_dominating_set(&g, cds.nodes()));
        let _alpha = crate::exact::independence_number(&g);
        let _phi = crate::geom::packing::phi(2);
        let _c = crate::mis::constructions::fig1_two_star(0.02);
        let udg = Udg::build(vec![Point::new(0.0, 0.0)]);
        assert_eq!(udg.len(), 1);
        use crate::rng::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let _u: f64 = rng.gen();
        let engine = crate::maintain::Maintainer::with_population(
            crate::maintain::MaintainConfig::default(),
            vec![Point::new(0.0, 0.0)],
        );
        assert_eq!(engine.backbone().len(), 1);
    }
}
