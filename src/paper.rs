//! # Paper-to-code map
//!
//! A section-by-section index from *"Two-Phased Approximation Algorithms
//! for Minimum CDS in Wireless Ad Hoc Networks"* (Wan, Wang & Yao, ICDCS
//! 2008) to this workspace.  Every claim the paper makes has a concrete
//! artifact here: an implementation, an oracle that checks it, an
//! experiment that stresses it, or all three.
//!
//! ## Section I — Introduction
//!
//! | Paper | Here |
//! |-------|------|
//! | UDG communication model | [`mcds_udg::Udg`] |
//! | the two-phased family \[1\],\[2\],\[4\],\[8\],\[9\],\[10\] | [`mcds_cds::algorithms::Algorithm`] registry |
//! | `α ≤ 4γ_c + 1` (WAF 2004) | [`mcds_mis::bounds::alpha_upper_bound_waf2004`] |
//! | `α ≤ 3.8γ_c + 1.2` (Wu et al. 2006) | [`mcds_mis::bounds::alpha_upper_bound_wu2006`] |
//! | `α ≤ 3⅔γ_c + 1` (this paper) | [`mcds_mis::bounds::alpha_upper_bound`], experiment E3 |
//! | Funke et al. claim, demoted to conjecture | [`mcds_mis::bounds::alpha_claimed_funke`], E10 |
//!
//! ## Section II — Bound on the independence number
//!
//! | Paper | Here |
//! |-------|------|
//! | independent points, `I(u)`, `I(U)` | [`mcds_geom::packing::is_independent`], [`mcds_mis::packing::covered_by_point`], [`mcds_mis::packing::covered_by_set`] |
//! | Lemma 1 (`\|I(o) △ I(u)\| ≤ 7`) | [`mcds_mis::lemmas::stress_lemma1`], E9 |
//! | Lemma 2 (11-point union bound) | [`mcds_mis::lemmas::stress_lemma2`], E9 |
//! | `φ(n)` and Theorem 3 | [`mcds_geom::packing::phi`], [`mcds_mis::packing::check_theorem3`] |
//! | Theorem 3's refined `φ(n) − 1` clause | [`mcds_mis::packing::check_theorem3_refined`] |
//! | Wegner's 21-point bound | [`mcds_geom::packing::WEGNER_RADIUS_2`] |
//! | star decompositions, Lemma 4 | [`mcds_mis::stars::star_decomposition`] (the proof's construction, executable) |
//! | Lemma 5 (telescoping) | [`mcds_mis::packing::check_lemma5`] |
//! | Theorem 6 (`\|I(V)\| ≤ 11n/3 + 1`) | [`mcds_mis::packing::check_theorem6`], [`mcds_geom::packing::connected_set_bound`] |
//! | Corollary 7 | [`mcds_mis::bounds::alpha_upper_bound`], E3 |
//!
//! ## Section III — Improved ratio of the WAF algorithm
//!
//! | Paper | Here |
//! |-------|------|
//! | rooted spanning tree `T`, BFS order | [`mcds_graph::traversal::BfsTree`] |
//! | first-fit MIS | [`mcds_mis::first_fit`], [`mcds_mis::BfsMis`] |
//! | the connector rule `C = {s} ∪ parents` | [`mcds_cds::waf_cds_rooted`] |
//! | Theorem 8 (ratio ≤ 7⅓) | [`mcds_mis::bounds::WAF_RATIO`], experiment E4 |
//! | distributed realization | [`mcds_distsim::pipeline::run_waf_distributed`], E7 |
//!
//! ## Section IV — The new algorithm
//!
//! | Paper | Here |
//! |-------|------|
//! | `q(U)` component counting | [`mcds_graph::subsets::count_components`] |
//! | the gain `Δ_w q(U)` | [`mcds_graph::subsets::adjacent_components`], [`mcds_cds::connect::gain_trace`] |
//! | Lemma 9 (progress guarantee) | asserted by [`mcds_cds::connect::max_gain_connectors`]'s stall error being unreachable on MIS seeds |
//! | the greedy connector algorithm | [`mcds_cds::greedy_cds_rooted`] |
//! | Theorem 10 (ratio ≤ 6 7/18) | [`mcds_mis::bounds::GREEDY_RATIO`], experiment E5 |
//!
//! ## Section V — Discussions
//!
//! | Paper | Here |
//! |-------|------|
//! | Fig. 1 (8 / 12 points) | [`mcds_mis::constructions::fig1_two_star`], [`mcds_mis::constructions::fig1_three_star`], E1 |
//! | Fig. 2 (`3(n+1)` points) | [`mcds_mis::constructions::fig2_chain`], E2 |
//! | the `3(n+1)` conjecture | [`mcds_mis::bounds::alpha_conjectured_bound`], E8 |
//! | the area argument of Funke et al. | [`mcds_geom::area::area_argument_bound`], E10 |
//!
//! ## Beyond the paper (extensions, all labeled as such)
//!
//! * pruning post-pass: [`mcds_cds::prune::prune_cds`] (ablated in E6),
//! * broadcast/routing applications: [`mcds_distsim::protocols::run_broadcast`] (E12), [`mcds_cds::routing`] (E13),
//! * distributed self-verification: [`mcds_distsim::protocols::run_verify_cds`],
//! * root-choice ablation: E11,
//! * SVG figure rendering: [`mcds_viz`].
