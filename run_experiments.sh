#!/usr/bin/env bash
# Regenerates every experiment artifact of the reproduction (E1-E25),
# then appends the run to the perf-trajectory ledger.
# Usage: ./run_experiments.sh [--quick] [--skip-verify] [outdir]
# (default outdir: results)
set -euo pipefail
quick=""
skip_verify=""
out="results"
for arg in "$@"; do
  case "$arg" in
    --quick) quick="--quick" ;;
    --skip-verify) skip_verify=1 ;;
    *) out="$arg" ;;
  esac
done
if [[ -z "$skip_verify" ]]; then
  echo "### verify"
  scripts/verify.sh
  echo
fi
exps=(exp_fig1 exp_fig2 exp_bounds exp_waf_ratio exp_greedy_ratio exp_compare
      exp_distributed exp_conjecture exp_lemmas exp_area exp_root_ablation
      exp_broadcast exp_routing exp_mobility exp_election exp_anatomy
      exp_churn exp_build_scaling exp_profile exp_fault exp_serve
      exp_substrate exp_hotpath)
for e in "${exps[@]}"; do
  echo "### $e"
  cargo run --quiet --release -p mcds-bench --bin "$e" -- $quick --out "$out"
  echo
done
echo "### trajectory"
cargo run --quiet --release -p mcds-bench --bin trajectory -- record \
  --dir "$out" --out "$out/BENCH_trajectory.jsonl"
cargo run --quiet --release -p mcds-bench --bin trajectory -- check \
  --file "$out/BENCH_trajectory.jsonl"
echo
echo "All experiments completed; CSVs and figures in $out/"
