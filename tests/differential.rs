//! Differential fuzzing of every CDS algorithm against the exact
//! oracle (`mcds-exact`).
//!
//! Random unit-disk instances with at most 18 nodes — across uniform,
//! clustered, and corridor deployments — are solved exactly by branch
//! and bound, cross-checked against the brute-force solver up to 16
//! nodes, and compared with WAF, the greedy two-phased algorithm, and
//! every other [`Algorithm`](mcds::cds::algorithms::Algorithm): the
//! approximate outputs must be valid CDSs, at least `γ_c` large, and
//! within the paper's ratio bounds (Theorem 8: `7⅓` for WAF,
//! Theorem 10: `6 7/18` for greedy; Corollary 7 for `α`).  Pruning must
//! stay valid and idempotent.
//!
//! Shrunk counterexamples are persisted to `tests/corpus/*.case` and
//! replayed before random exploration on every subsequent run.

use std::time::{Duration, Instant};

use mcds_check::corpus::load_dir;
use mcds_check::fault::check_fault_case;
use mcds_check::oracle::{check_oracle_case, oracle_cases, OracleCase};
use mcds_check::runner::replay_outcome;
use mcds_check::{Property, TestResult};
use mcds_pool::ThreadPool;

/// The checked-in regression corpus next to this suite.
const CORPUS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");

/// The differential oracle proper: ≥500 random instances per run, every
/// algorithm checked for validity, optimality floor, and ratio bounds.
#[test]
fn differential_oracle() {
    let stats = Property::new("differential_oracle")
        .cases(540)
        .corpus(CORPUS_DIR)
        .run_report(&oracle_cases(18), check_oracle_case)
        .unwrap_or_else(|failure| panic!("{}", failure.report()));
    assert!(
        stats.cases >= 540,
        "ran only {} of the required 540 instances",
        stats.cases
    );
    assert!(stats.corpus_replayed >= 1, "corpus seed case not replayed");
}

/// The fault-tolerant family oracle: the same 540-instance regime for
/// the `(1, m)` / `(2, m)` backbones of `mcds_cds::fault` — every
/// output checked against the independent exact-side predicates
/// (`is_m_dominating`, `is_biconnected`), the `(1, 2)` outputs against
/// the exact `(1, 2)`-CDS optimum, and the m-aware prune for
/// idempotence.
#[test]
fn fault_tolerant_family() {
    let stats = Property::new("fault_tolerant_family")
        .cases(540)
        .corpus(CORPUS_DIR)
        .run_report(&oracle_cases(18), check_fault_case)
        .unwrap_or_else(|failure| panic!("{}", failure.report()));
    assert!(
        stats.cases >= 540,
        "ran only {} of the required 540 instances",
        stats.cases
    );
    assert!(stats.corpus_replayed >= 1, "corpus seed case not replayed");
}

/// The check a corpus entry's property name maps to; new properties
/// must register here so their persisted cases replay meaningfully.
fn check_for(prop: &str) -> fn(&OracleCase) -> TestResult {
    match prop {
        "fault_tolerant_family" => check_fault_case,
        _ => check_oracle_case,
    }
}

/// Satellite 4's contract: a `.case` file reproduces the identical
/// outcome at any worker-pool width.  Replays every checked-in corpus
/// entry under pools of 1 and 4 threads and diffs the outcome strings.
#[test]
fn corpus_replay_matches_at_any_thread_count() {
    let entries = load_dir(std::path::Path::new(CORPUS_DIR)).expect("corpus parses");
    assert!(!entries.is_empty(), "checked-in corpus must not be empty");
    let gen = oracle_cases(18);
    let outcome_under = |threads: usize| -> Vec<String> {
        let cases: Vec<_> = entries.iter().map(|(_, c)| c.clone()).collect();
        ThreadPool::new(threads).parallel_map(cases, |_i, case| {
            replay_outcome(&case, &gen, check_for(&case.prop))
        })
    };
    let t1 = outcome_under(1);
    let t4 = outcome_under(4);
    for (i, (a, b)) in t1.iter().zip(&t4).enumerate() {
        assert_eq!(
            a, b,
            "corpus entry {:?} diverges between 1 and 4 threads",
            entries[i].0
        );
    }
}

/// Time-bounded fuzz smoke with a fixed seed: explores a deterministic
/// prefix of batches for `MCDS_CHECK_FUZZ_SECS` seconds (default 30).
/// Run explicitly (it is `#[ignore]`d) — `scripts/verify.sh check` does.
#[test]
#[ignore = "time-bounded; run via scripts/verify.sh check"]
fn fuzz_smoke_bounded() {
    const FUZZ_SEED: u64 = 0x2008_1CDC;
    const BATCH: usize = 25;
    let secs: u64 = std::env::var("MCDS_CHECK_FUZZ_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let deadline = Instant::now() + Duration::from_secs(secs);
    let gen = oracle_cases(18);
    let mut batch = 0u64;
    while Instant::now() < deadline {
        // Fixed seed + batch counter: the k-th batch is identical on
        // every run, so any failure this smoke finds is replayable from
        // the persisted corpus entry alone.
        Property::new("differential_oracle_fuzz")
            .seed(FUZZ_SEED.wrapping_add(batch))
            .cases(BATCH)
            .corpus(CORPUS_DIR)
            .run(&gen, check_oracle_case);
        batch += 1;
    }
    eprintln!(
        "fuzz smoke: {} instances across {} batches within the {}s budget",
        batch as usize * BATCH,
        batch,
        secs
    );
}
