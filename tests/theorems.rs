//! The theorem catalog: every claim of the paper asserted by name on
//! deterministic instance batteries.  This file is the executable
//! statement of what "reproduced" means for this repository.

use mcds::cds::accounting::greedy_accounting;
use mcds::exact;
use mcds::geom::packing::phi;
use mcds::mis::bounds;
use mcds::mis::constructions::{fig1_three_star, fig1_two_star, fig2_chain};
use mcds::mis::packing::{check_lemma5, check_theorem3, check_theorem6};
use mcds::mis::stars::{star_decomposition, verify_decomposition};
use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

/// A deterministic battery of small connected UDGs with exact optima in
/// reach.
fn exact_battery() -> Vec<Udg> {
    let mut out = Vec::new();
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(7_000 + seed);
        if let Some(udg) = mcds::udg::gen::connected_uniform(&mut rng, 18, 2.2, 50) {
            out.push(udg);
        }
    }
    // Structured extremes.
    out.push(Udg::build(mcds::udg::gen::linear_chain(12, 1.0)));
    out.push(Udg::build(mcds::udg::gen::linear_chain(7, 0.6)));
    out
}

#[test]
fn theorem_3_phi_bounds_hold_and_are_tight_for_small_stars() {
    // Tightness at n = 2, 3 via the paper's own constructions.
    let c2 = fig1_two_star(0.02);
    let chk2 = check_theorem3(c2.set[0], &c2.set, &c2.independent, 0.0).unwrap();
    assert!(chk2.holds);
    assert_eq!(chk2.count, phi(2));

    let c3 = fig1_three_star(0.02);
    let chk3 = check_theorem3(c3.set[0], &c3.set, &c3.independent, 0.0).unwrap();
    assert!(chk3.holds);
    assert_eq!(chk3.count, phi(3));
}

#[test]
fn lemma_4_star_decomposition_exists_for_all_battery_instances() {
    for udg in exact_battery() {
        if udg.len() < 2 {
            continue;
        }
        let stars = star_decomposition(udg.points()).expect("connected battery instance");
        verify_decomposition(udg.points(), &stars).expect("valid decomposition");
    }
}

#[test]
fn lemma_5_telescoping_holds_with_mis_packings() {
    for udg in exact_battery() {
        if udg.len() < 3 {
            continue;
        }
        let mis = BfsMis::compute(udg.graph(), 0);
        let mis_points: Vec<_> = mis.mis().iter().map(|&i| udg.points()[i]).collect();
        let stars = star_decomposition(udg.points()).expect("connected");
        // Check the inequality with the first star in the role of S.
        let chk =
            check_lemma5(udg.points(), stars[0].members(), &mis_points, 0.0).expect("valid inputs");
        assert!(chk.holds, "outside {} > {}", chk.count, chk.bound);
    }
}

#[test]
fn theorem_6_holds_with_mis_packings() {
    for udg in exact_battery() {
        if udg.len() < 2 {
            continue;
        }
        let mis = BfsMis::compute(udg.graph(), 0);
        let mis_points: Vec<_> = mis.mis().iter().map(|&i| udg.points()[i]).collect();
        let chk = check_theorem6(udg.points(), &mis_points, 0.0).expect("valid inputs");
        assert!(chk.holds);
    }
}

#[test]
fn corollary_7_alpha_bound_on_exact_battery() {
    for udg in exact_battery() {
        let g = udg.graph();
        if g.num_nodes() < 2 {
            continue;
        }
        let alpha = exact::independence_number(g);
        let gamma_c = exact::connected_domination_number(g).expect("connected");
        assert!(
            alpha as f64 <= bounds::alpha_upper_bound(gamma_c) + 1e-9,
            "alpha {alpha}, gamma_c {gamma_c}"
        );
    }
}

#[test]
fn theorem_8_including_the_remark_minus_one() {
    // The paper remarks "with a more subtle analysis, we can actually
    // show |I ∪ C| ≤ 7⅓γ_c − 1"; assert the stronger form too.
    for udg in exact_battery() {
        let g = udg.graph();
        if g.num_nodes() < 2 {
            continue;
        }
        let gamma_c = exact::connected_domination_number(g).expect("connected");
        let cds = waf_cds(g).expect("connected");
        assert!(
            (cds.len() as f64) <= bounds::waf_size_bound(gamma_c) + 1e-9,
            "Theorem 8: {} vs 7.33*{gamma_c}",
            cds.len()
        );
        assert!(
            (cds.len() as f64) <= bounds::waf_size_bound(gamma_c) - 1.0 + 1e-9,
            "Theorem 8 remark: {} vs 7.33*{gamma_c} - 1",
            cds.len()
        );
    }
}

#[test]
fn theorem_10_final_bound_and_proof_anatomy() {
    for udg in exact_battery() {
        let g = udg.graph();
        if g.num_nodes() < 2 {
            continue;
        }
        let gamma_c = exact::connected_domination_number(g).expect("connected");
        let cds = greedy_cds(g).expect("connected");
        assert!(
            (cds.len() as f64) <= bounds::greedy_size_bound(gamma_c) + 1e-9,
            "Theorem 10: {} vs 6.39*{gamma_c}",
            cds.len()
        );
        // Internal accounting (C1/C2/C3 split).
        let acc = greedy_accounting(g, 0).expect("connected");
        acc.check(gamma_c).expect("proof anatomy holds");
    }
}

#[test]
fn lemma_9_greedy_never_stalls_on_bfs_mis_seeds() {
    // 60 random connected graphs — general graphs, not only UDGs: the
    // argument needs only the first-fit structure.
    let mut s = 2024u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut tested = 0;
    while tested < 60 {
        let n = 6 + (next() % 20) as usize;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if next() % 100 < 20 {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, edges);
        if !g.is_connected() {
            continue;
        }
        tested += 1;
        let mis = BfsMis::compute(&g, 0).mis().to_vec();
        let conn = mcds::cds::connect::max_gain_connectors(&g, &mis);
        assert!(conn.is_ok(), "Lemma 9 violated on {g:?}");
    }
}

#[test]
fn figure_2_achieves_the_conjectured_optimum_for_every_n() {
    for n in 3..=48 {
        let c = fig2_chain(n, 0.02);
        c.verify().unwrap();
        assert_eq!(c.independent.len(), 3 * (n + 1), "n = {n}");
        assert_eq!(
            c.independent.len() as f64,
            bounds::alpha_conjectured_bound(n),
            "construction meets the conjectured bound exactly at n = {n}"
        );
    }
}
