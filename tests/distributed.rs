//! Integration: the distributed pipeline equals the centralized
//! construction on random unit-disk instances.

use mcds::distsim::pipeline::run_waf_distributed;
use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

#[test]
fn distributed_equals_centralized_on_random_udgs() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let udg = mcds::udg::gen::connected_uniform(&mut rng, 90, 5.5, 50)
            .unwrap_or_else(|| mcds::udg::gen::giant_component_instance(&mut rng, 90, 5.5));
        let g = udg.graph();
        if g.num_nodes() < 2 {
            continue;
        }
        let run = run_waf_distributed(g).expect("connected");
        let central = waf_cds_rooted(g, run.root).expect("connected");
        assert_eq!(run.cds.nodes(), central.nodes(), "seed {seed}");
        run.cds.verify(g).unwrap();
    }
}

#[test]
fn rounds_track_diameter() {
    // Chains of growing length: rounds must grow linearly with diameter,
    // and the connector phase must stay constant.
    let mut prev_rounds = 0;
    for n in [10usize, 20, 40] {
        let udg = Udg::build(mcds::udg::gen::linear_chain(n, 0.9));
        let run = run_waf_distributed(udg.graph()).expect("connected chain");
        assert!(run.connect.rounds <= 5, "connector phase is constant-round");
        assert!(
            run.total_rounds() > prev_rounds,
            "rounds should grow with diameter"
        );
        prev_rounds = run.total_rounds();
    }
}

#[test]
fn transmissions_scale_subquadratically() {
    // At constant density, total transmissions per node should stay
    // bounded as the network grows (the "linear messages" selling point
    // of this family, up to the O(diam) flooding term).
    let mut per_node = Vec::new();
    for n in [100usize, 400] {
        let side = mcds::udg::gen::side_for_avg_degree(n, 12.0);
        let mut rng = StdRng::seed_from_u64(n as u64);
        let udg = mcds::udg::gen::connected_uniform(&mut rng, n, side, 50)
            .unwrap_or_else(|| mcds::udg::gen::giant_component_instance(&mut rng, n, side));
        let run = run_waf_distributed(udg.graph()).expect("connected");
        per_node.push(run.total_transmissions() as f64 / udg.len() as f64);
    }
    // 4x more nodes should not cost anywhere near 4x more transmissions
    // per node.
    assert!(
        per_node[1] < per_node[0] * 2.5,
        "per-node transmissions exploded: {per_node:?}"
    );
}
