//! Integration: the Section II / Section V geometric machinery, end to
//! end — constructions, bound oracles, star decompositions.

use mcds::geom::packing::{connected_set_bound, phi};
use mcds::mis::constructions::{fig1_three_star, fig1_two_star, fig2_chain};
use mcds::mis::packing::{check_theorem3, check_theorem6};
use mcds::mis::stars::{star_decomposition, verify_decomposition};
use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

#[test]
fn fig1_constructions_meet_theorem3_exactly() {
    for &eps in &[0.05, 0.01, 0.002] {
        let c2 = fig1_two_star(eps);
        c2.verify().unwrap();
        let chk = check_theorem3(c2.set[0], &c2.set, &c2.independent, 0.0).unwrap();
        assert!(chk.holds);
        assert_eq!(chk.count as f64, chk.bound, "phi(2) met exactly");

        let c3 = fig1_three_star(eps);
        c3.verify().unwrap();
        let chk = check_theorem3(c3.set[0], &c3.set, &c3.independent, 0.0).unwrap();
        assert!(chk.holds);
        assert_eq!(chk.count as f64, chk.bound, "phi(3) met exactly");
    }
}

#[test]
fn fig2_chains_respect_theorem6_with_known_gap() {
    for n in [3usize, 7, 15, 40] {
        let c = fig2_chain(n, 0.02);
        c.verify().unwrap();
        let chk = check_theorem6(&c.set, &c.independent, 0.0).unwrap();
        assert!(chk.holds);
        let gap = chk.bound - chk.count as f64;
        let expected_gap = connected_set_bound(n) - 3.0 * (n as f64 + 1.0);
        assert!((gap - expected_gap).abs() < 1e-9, "n={n}");
    }
}

#[test]
fn star_decompositions_of_construction_sets() {
    // The chain sets of Fig. 2 are connected: Lemma 4 must decompose
    // them into nontrivial stars, and summing Theorem 3 over the stars
    // must stay consistent with the observed packing.
    for n in [3usize, 6, 12] {
        let c = fig2_chain(n, 0.02);
        let stars = star_decomposition(&c.set).unwrap();
        verify_decomposition(&c.set, &stars).unwrap();
        let phi_sum: usize = stars.iter().map(|s| phi(s.len())).sum();
        // Per-star packing bounds always over-count the union bound.
        assert!(
            phi_sum >= c.independent.len(),
            "n={n}: sum phi {phi_sum} < observed {}",
            c.independent.len()
        );
    }
}

#[test]
fn star_decomposition_on_random_connected_sets() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let udg = mcds::udg::gen::connected_uniform(&mut rng, 40, 3.5, 50)
            .unwrap_or_else(|| mcds::udg::gen::giant_component_instance(&mut rng, 40, 3.5));
        if udg.len() < 2 {
            continue;
        }
        let stars = star_decomposition(udg.points()).unwrap();
        verify_decomposition(udg.points(), &stars).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn packed_mis_of_udg_respects_corollary7_shape() {
    // For UDG instances, the number of MIS nodes inside the neighborhood
    // of the whole point set trivially equals the MIS size; check the
    // geometric packing oracle agrees with the graph view.
    let mut rng = StdRng::seed_from_u64(77);
    let udg = mcds::udg::gen::connected_uniform(&mut rng, 60, 4.0, 50).unwrap();
    let mis = BfsMis::compute(udg.graph(), 0);
    let mis_points: Vec<Point> = mis.mis().iter().map(|&i| udg.points()[i]).collect();
    // Graph-independent nodes are at distance > 1... NOT necessarily:
    // UDG independence means distance strictly greater than 1? Adjacency
    // is dist <= 1, so independent means dist > 1 — the geometric and
    // graph notions coincide.
    assert!(mcds::geom::packing::is_independent(&mis_points, 0.0));
    let chk = check_theorem6(udg.points(), &mis_points, 0.0).unwrap();
    assert_eq!(chk.count, mis.len());
    assert!(chk.holds);
}
