//! Property-based tests across the workspace: the core invariants of the
//! paper's objects, exercised on randomized inputs via proptest.
//!
//! SUPERSEDED: these properties have been ported to the in-tree
//! `mcds-check` engine in `tests/check_properties.rs`, which runs in
//! the default `cargo test -q`.  This proptest variant is kept
//! compiling behind `ext-tests` for cross-validation against an
//! external shrinker, but is no longer the suite of record.

// Property tests need the external `proptest` crate, which is not
// available in hermetic (offline) builds; enable with
// `cargo test --features ext-tests` after restoring the dependency in
// the workspace manifest.
#![cfg(feature = "ext-tests")]

use mcds::cds::algorithms::Algorithm;
use mcds::prelude::*;
use proptest::prelude::*;

/// Strategy: a point set of `n` points in a `side × side` square,
/// quantized to avoid degenerate float edge cases.
fn points_strategy(max_n: usize, side: f64) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0u32..1000, 0u32..1000)
            .prop_map(move |(x, y)| Point::new(x as f64 / 1000.0 * side, y as f64 / 1000.0 * side)),
        1..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn udg_grid_equals_naive(points in points_strategy(120, 5.0)) {
        let fast = Udg::build(points.clone());
        let slow = Udg::build_naive(points, 1.0);
        prop_assert_eq!(fast.graph(), slow.graph());
    }

    #[test]
    fn first_fit_mis_invariants(points in points_strategy(100, 4.0)) {
        let udg = Udg::build(points);
        let g = udg.graph();
        // Work on the largest component (MIS election needs a rooted
        // component).
        let comp = mcds::graph::traversal::largest_component(g);
        let root = comp[0];
        let mis = BfsMis::compute(g, root);
        prop_assert!(properties::is_independent_set(g, mis.mis()));
        // Maximal within the root's component: every component node is
        // dominated.
        let mask = mcds::graph::node_mask(g.num_nodes(), mis.mis());
        for &v in &comp {
            let dominated = mask[v] || g.neighbors_iter(v).any(|u| mask[u]);
            prop_assert!(dominated, "component node {} undominated", v);
        }
    }

    #[test]
    fn all_algorithms_valid_on_connected_instances(points in points_strategy(90, 4.0)) {
        let udg = Udg::build(points);
        let comp = mcds::graph::traversal::largest_component(udg.graph());
        let sub = udg.restricted_to(&comp);
        let g = sub.graph();
        prop_assume!(g.num_nodes() >= 2);
        for alg in Algorithm::ALL {
            let cds = alg.run(g).expect("connected by construction");
            prop_assert!(cds.verify(g).is_ok(), "{} failed", alg);
        }
    }

    #[test]
    fn greedy_and_waf_respect_alpha_band(points in points_strategy(60, 3.0)) {
        // Without exact gamma_c, use the unconditional UDG band:
        // |CDS| <= 2|I| + 1 for WAF-style constructions and the MIS size
        // bound |I| >= gamma(G) >= gamma_c(G)/(something) is not needed —
        // just check the structural inequality |C| <= |I| - |I(s)| + 1
        // indirectly via |CDS| <= 2|I|.
        let udg = Udg::build(points);
        let comp = mcds::graph::traversal::largest_component(udg.graph());
        let sub = udg.restricted_to(&comp);
        let g = sub.graph();
        prop_assume!(g.num_nodes() >= 2);
        let waf = waf_cds(g).expect("connected");
        let greedy = greedy_cds(g).expect("connected");
        let i = waf.dominators().len();
        prop_assert!(waf.len() <= 2 * i + 1);
        prop_assert!(greedy.len() <= 2 * i + 1);
    }

    #[test]
    fn pruned_cds_is_one_minimal(points in points_strategy(50, 3.0)) {
        let udg = Udg::build(points);
        let comp = mcds::graph::traversal::largest_component(udg.graph());
        let sub = udg.restricted_to(&comp);
        let g = sub.graph();
        prop_assume!(g.num_nodes() >= 3);
        let cds = greedy_cds(g).expect("connected");
        let pruned = mcds::cds::prune::prune_cds(g, cds.nodes()).expect("valid");
        prop_assert!(properties::check_cds(g, &pruned).is_ok());
        // 1-minimality.
        for &v in &pruned {
            let smaller: Vec<usize> = pruned.iter().copied().filter(|&u| u != v).collect();
            if !smaller.is_empty() {
                prop_assert!(
                    !properties::is_connected_dominating_set(g, &smaller),
                    "node {} redundant after pruning", v
                );
            }
        }
    }

    #[test]
    fn instance_io_roundtrip(points in points_strategy(80, 6.0)) {
        let udg = Udg::build(points);
        let text = mcds::udg::io::write_instance(&udg);
        let back = mcds::udg::io::parse_instance(&text).expect("own output parses");
        prop_assert_eq!(back.points(), udg.points());
        prop_assert_eq!(back.graph(), udg.graph());
    }

    #[test]
    fn exact_alpha_at_least_any_mis(points in points_strategy(26, 2.5)) {
        let udg = Udg::build(points);
        let g = udg.graph();
        let alpha = mcds::exact::independence_number(g);
        let comp = mcds::graph::traversal::largest_component(g);
        let mis = BfsMis::compute(g, comp[0]);
        prop_assert!(mis.len() <= alpha);
        let lex = mcds::mis::variants::lexicographic_mis(g);
        prop_assert!(lex.len() <= alpha);
    }

    #[test]
    fn corollary7_on_tiny_instances(points in points_strategy(14, 1.8)) {
        let udg = Udg::build(points);
        let comp = mcds::graph::traversal::largest_component(udg.graph());
        let sub = udg.restricted_to(&comp);
        let g = sub.graph();
        prop_assume!(g.num_nodes() >= 2);
        let alpha = mcds::exact::independence_number(g);
        let gamma_c = mcds::exact::connected_domination_number(g).expect("connected");
        prop_assert!(
            alpha as f64 <= mcds::mis::bounds::alpha_upper_bound(gamma_c) + 1e-9,
            "alpha {} gamma_c {}", alpha, gamma_c
        );
    }
}
