//! Property tests for the graph substrate split: the CSR and
//! gap-compressed backends must be observationally identical, the varint
//! codec must reject every malformed stream, and the streaming UDG
//! builder must agree with the reference grid build.

use mcds::prelude::*;
use mcds_check::gen::{point_sets, usizes, vecs};
use mcds_check::oracle::oracle_cases;
use mcds_check::{prop_assert, prop_assert_eq, Property, TestResult};
use mcds_graph::codec::{read_varint, write_varint, zigzag_decode, zigzag_encode};
use mcds_graph::{traversal, CompactGraph};

#[test]
fn csr_compact_round_trip() {
    Property::new("csr_compact_round_trip")
        .cases(64)
        .run(&point_sets(0..=120, 5.0), |points| {
            let udg = Udg::build(points.clone());
            let g = udg.graph();
            let c = CompactGraph::from_graph(g);
            prop_assert_eq!(&c.to_graph(), g);
            prop_assert_eq!(c.num_nodes(), g.num_nodes());
            prop_assert_eq!(c.num_edges(), g.num_edges());
            for v in 0..g.num_nodes() {
                prop_assert_eq!(c.degree(v), g.degree(v));
                prop_assert!(
                    c.successors(v).eq(g.neighbors_iter(v)),
                    "successor streams differ at node {v}"
                );
            }
            TestResult::Pass
        });
}

#[test]
fn solves_agree_across_backends() {
    use mcds::cds::algorithms::Algorithm;
    use mcds::cds::Solver;

    Property::new("solves_agree_across_backends")
        .cases(48)
        .run(&oracle_cases(14), |case| {
            let udg = Udg::build(case.points.clone());
            let comp = traversal::largest_component(udg.graph());
            let (g, _) = udg.graph().induced_subgraph(&comp);
            let c = CompactGraph::from_graph(&g);
            for alg in Algorithm::ALL {
                let solver = Solver::new(alg).verify(true);
                match (solver.solve(&g), solver.solve(&c)) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(
                            a.cds().nodes() == b.cds().nodes(),
                            "{alg}: backends disagree ({:?} vs {:?})",
                            a.cds().nodes(),
                            b.cds().nodes()
                        );
                    }
                    (a, b) => {
                        prop_assert_eq!(a.err(), b.err());
                    }
                }
            }
            TestResult::Pass
        });
}

#[test]
fn varint_round_trips_and_zigzag_is_involutive() {
    Property::new("varint_round_trip").cases(256).run(
        &vecs(usizes(0..=usize::MAX), 0..=8),
        |values| {
            let mut bytes = Vec::new();
            for &v in values {
                write_varint(&mut bytes, v as u64);
            }
            let mut pos = 0;
            for &v in values {
                prop_assert_eq!(read_varint(&bytes, &mut pos), Ok(v as u64));
                let delta = v as i64;
                prop_assert_eq!(zigzag_decode(zigzag_encode(delta)), delta);
            }
            prop_assert_eq!(pos, bytes.len());
            TestResult::Pass
        },
    );
}

/// Hostile fuzz: an arbitrary byte stream either decodes to a value whose
/// canonical re-encoding is exactly the consumed prefix, or is rejected
/// with `pos` left at the failed varint — never a panic, never an
/// out-of-bounds read, never a non-canonical acceptance.
#[test]
fn varint_decoder_survives_hostile_bytes() {
    Property::new("varint_hostile_fuzz")
        .cases(512)
        .run(&vecs(usizes(0..=255), 0..=24), |raw| {
            let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
            let mut pos = 0;
            while pos < bytes.len() {
                let start = pos;
                match read_varint(&bytes, &mut pos) {
                    Ok(x) => {
                        prop_assert!(pos > start && pos <= bytes.len());
                        let mut canonical = Vec::new();
                        write_varint(&mut canonical, x);
                        prop_assert!(
                            bytes[start..pos] == canonical[..],
                            "accepted a non-canonical encoding of {x}"
                        );
                    }
                    Err(_) => {
                        prop_assert_eq!(pos, start);
                        break;
                    }
                }
            }
            TestResult::Pass
        });
}

#[test]
fn streaming_build_matches_grid_build() {
    Property::new("streaming_build_matches_grid_build")
        .cases(48)
        .run(&point_sets(0..=150, 6.0), |points| {
            let streamed = mcds::udg::stream_build(points.clone(), 1.0);
            let csr = Udg::with_radius(streamed.points().to_vec(), 1.0);
            prop_assert_eq!(&streamed.graph().to_graph(), csr.graph());
            prop_assert_eq!(
                streamed.graph().num_edges(),
                Udg::build(points.clone()).graph().num_edges()
            );
            TestResult::Pass
        });
}
