//! End-to-end integration: point set → UDG → every algorithm → verified
//! CDS → paper bounds, with exact optima where reachable.

use mcds::cds::algorithms::Algorithm;
use mcds::exact;
use mcds::mis::bounds;
use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

fn connected_instance(seed: u64, n: usize, side: f64) -> Udg {
    let mut rng = StdRng::seed_from_u64(seed);
    mcds::udg::gen::connected_uniform(&mut rng, n, side, 50)
        .unwrap_or_else(|| mcds::udg::gen::giant_component_instance(&mut rng, n, side))
}

#[test]
fn every_algorithm_yields_valid_cds_on_random_udgs() {
    for seed in 0..8u64 {
        let udg = connected_instance(seed, 80, 5.0);
        let g = udg.graph();
        for alg in Algorithm::ALL {
            let cds = alg.run(g).expect("connected instance");
            cds.verify(g)
                .unwrap_or_else(|e| panic!("seed {seed}, {alg}: {e}"));
        }
    }
}

#[test]
fn theorem_8_and_10_hold_against_exact_optimum() {
    let mut checked = 0;
    for seed in 100..130u64 {
        let udg = connected_instance(seed, 18, 2.2);
        let g = udg.graph();
        if g.num_nodes() < 2 {
            continue;
        }
        let Ok(Some(opt)) = exact::try_min_connected_dominating_set(g, 30_000_000) else {
            continue;
        };
        let gamma_c = opt.len().max(1);
        checked += 1;
        let waf = waf_cds(g).unwrap();
        let greedy = greedy_cds(g).unwrap();
        assert!(
            waf.len() as f64 <= bounds::waf_size_bound(gamma_c) + 1e-9,
            "seed {seed}: Theorem 8 violated ({} > 7.33 * {gamma_c})",
            waf.len()
        );
        assert!(
            greedy.len() as f64 <= bounds::greedy_size_bound(gamma_c) + 1e-9,
            "seed {seed}: Theorem 10 violated ({} > 6.39 * {gamma_c})",
            greedy.len()
        );
    }
    assert!(
        checked >= 10,
        "exact solver solved only {checked} instances"
    );
}

#[test]
fn corollary_7_holds_against_exact_optima() {
    let mut checked = 0;
    for seed in 200..224u64 {
        let udg = connected_instance(seed, 16, 2.0);
        let g = udg.graph();
        if g.num_nodes() < 2 {
            continue;
        }
        let Some(alpha) = exact::try_max_independent_set(g, 30_000_000).map(|s| s.len()) else {
            continue;
        };
        let Ok(Some(opt)) = exact::try_min_connected_dominating_set(g, 30_000_000) else {
            continue;
        };
        checked += 1;
        assert!(
            alpha as f64 <= bounds::alpha_upper_bound(opt.len()) + 1e-9,
            "seed {seed}: Corollary 7 violated (alpha {alpha}, gamma_c {})",
            opt.len()
        );
        // The BFS-first-fit MIS is an independent set, so it never
        // exceeds alpha.
        assert!(BfsMis::compute(g, 0).len() <= alpha, "seed {seed}");
    }
    assert!(
        checked >= 10,
        "exact solver solved only {checked} instances"
    );
}

#[test]
fn greedy_never_beaten_by_waf_on_shared_phase1() {
    // Same root, same MIS: greedy's connector phase is never worse in
    // total size on these instances (empirical regularity; the paper's
    // point is the tighter worst-case bound).
    let mut greedy_wins = 0usize;
    let mut total = 0usize;
    for seed in 300..320u64 {
        let udg = connected_instance(seed, 100, 6.0);
        let g = udg.graph();
        if g.num_nodes() < 2 {
            continue;
        }
        let waf = waf_cds_rooted(g, 0).unwrap();
        let greedy = greedy_cds_rooted(g, 0).unwrap();
        assert_eq!(waf.dominators(), greedy.dominators(), "shared phase 1");
        total += 1;
        if greedy.len() <= waf.len() {
            greedy_wins += 1;
        }
    }
    assert!(
        greedy_wins * 10 >= total * 9,
        "greedy should match or beat WAF almost always: {greedy_wins}/{total}"
    );
}

#[test]
fn pruning_preserves_validity_and_never_grows() {
    for seed in 400..406u64 {
        let udg = connected_instance(seed, 70, 5.0);
        let g = udg.graph();
        for alg in Algorithm::ALL {
            let cds = alg.run(g).expect("connected");
            let pruned = mcds::cds::prune::prune_cds(g, cds.nodes()).expect("valid input");
            assert!(pruned.len() <= cds.len());
            assert!(properties::check_cds(g, &pruned).is_ok());
        }
    }
}

#[test]
fn degenerate_topologies_across_the_stack() {
    // Single node.
    let single = Udg::build(vec![Point::ORIGIN]);
    let cds = greedy_cds(single.graph()).unwrap();
    assert_eq!(cds.nodes(), &[0]);
    // Two nodes at exactly unit distance.
    let pair = Udg::build(vec![Point::ORIGIN, Point::new(1.0, 0.0)]);
    let cds = waf_cds(pair.graph()).unwrap();
    cds.verify(pair.graph()).unwrap();
    assert!(cds.len() <= 2);
    // Disconnected pair.
    let split = Udg::build(vec![Point::ORIGIN, Point::new(3.0, 0.0)]);
    assert_eq!(greedy_cds(split.graph()), Err(CdsError::DisconnectedGraph));
    // Collinear unit chain (the paper's worst-case family).
    let chain = Udg::build(mcds::udg::gen::linear_chain(30, 1.0));
    let cds = greedy_cds(chain.graph()).unwrap();
    cds.verify(chain.graph()).unwrap();
    // γ_c(P_30) = 28; greedy should stay in the proven band.
    assert!(cds.len() as f64 <= bounds::greedy_size_bound(28));
}
