//! Scenario matrix: every algorithm × every deployment family × every
//! application metric, verified end-to-end through the public API.
//!
//! This is the "does the whole product hold together" suite: if a change
//! breaks any pairing of generator, algorithm, verifier, router,
//! broadcaster or renderer, it fails here with a named scenario.

use mcds::cds::algorithms::Algorithm;
use mcds::cds::routing::stretch_stats;
use mcds::distsim::protocols::{run_broadcast, run_verify_cds};
use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

/// Named deployment scenarios spanning the families the generators
/// support.
fn scenarios() -> Vec<(&'static str, Udg)> {
    let mut rng = StdRng::seed_from_u64(1914);
    let mut out: Vec<(&'static str, Udg)> = Vec::new();

    let uniform =
        mcds::udg::gen::connected_uniform(&mut rng, 90, 5.5, 100).expect("dense uniform connects");
    out.push(("uniform", uniform));

    let clustered = {
        let pts = mcds::udg::gen::clustered(&mut rng, 4, 20, 6.0, 0.9);
        let udg = Udg::build(pts);
        let giant = mcds::graph::traversal::largest_component(udg.graph());
        udg.restricted_to(&giant)
    };
    out.push(("clustered", clustered));

    let grid = Udg::build(mcds::udg::gen::perturbed_grid(&mut rng, 8, 10, 0.8, 0.08));
    out.push(("grid", grid));

    let chain = Udg::build(mcds::udg::gen::linear_chain(40, 0.95));
    out.push(("chain", chain));

    let corridor = {
        let pts = mcds::udg::gen::corridor(&mut rng, 150, 25.0, 1.8);
        let udg = Udg::build(pts);
        let giant = mcds::graph::traversal::largest_component(udg.graph());
        udg.restricted_to(&giant)
    };
    out.push(("corridor", corridor));

    let annulus = {
        let pts = mcds::udg::gen::uniform_in_annulus(&mut rng, 140, Point::new(0.0, 0.0), 3.0, 5.0);
        let udg = Udg::build(pts);
        let giant = mcds::graph::traversal::largest_component(udg.graph());
        udg.restricted_to(&giant)
    };
    out.push(("annulus", annulus));

    out
}

#[test]
fn every_algorithm_on_every_scenario() {
    for (name, udg) in scenarios() {
        let g = udg.graph();
        assert!(g.is_connected(), "{name}: scenario must be connected");
        assert!(g.num_nodes() >= 2, "{name}: scenario too small");
        for alg in Algorithm::ALL {
            let cds = alg.run(g).unwrap_or_else(|e| panic!("{name}/{alg}: {e}"));
            cds.verify(g)
                .unwrap_or_else(|e| panic!("{name}/{alg}: invalid CDS: {e}"));
            // Distributed self-verification agrees.
            let report = run_verify_cds(g, cds.nodes())
                .unwrap_or_else(|e| panic!("{name}/{alg}: verify protocol: {e}"));
            assert!(report.is_valid(), "{name}/{alg}: distributed verdict");
        }
    }
}

#[test]
fn applications_work_on_every_scenario() {
    for (name, udg) in scenarios() {
        let g = udg.graph();
        let cds = greedy_cds(g).unwrap_or_else(|e| panic!("{name}: {e}"));

        // Broadcast: full coverage from two sources.
        for source in [0, g.num_nodes() - 1] {
            let out = run_broadcast(g, source, cds.nodes())
                .unwrap_or_else(|e| panic!("{name}: broadcast: {e}"));
            assert_eq!(out.reached, g.num_nodes(), "{name}: coverage from {source}");
        }

        // Routing: all pairs routable, stretch sane.
        let s = stretch_stats(g, cds.nodes()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(s.pairs, g.num_nodes() * (g.num_nodes() - 1), "{name}");
        assert!(
            s.mean >= 1.0 && s.mean < 4.0,
            "{name}: mean stretch {}",
            s.mean
        );

        // Pruning keeps validity.
        let pruned = mcds::cds::prune::prune_cds(g, cds.nodes())
            .unwrap_or_else(|e| panic!("{name}: prune: {e}"));
        assert!(properties::check_cds(g, &pruned).is_ok(), "{name}");

        // Rendering produces plausible SVG.
        let style = mcds::viz::UdgStyle {
            dominators: cds.dominators().to_vec(),
            connectors: cds.connectors().to_vec(),
            ..mcds::viz::UdgStyle::default()
        };
        let svg = mcds::viz::render_udg(&udg, &style);
        assert!(svg.starts_with("<svg"), "{name}");
        assert!(
            svg.matches("<circle").count() >= g.num_nodes(),
            "{name}: every node rendered"
        );
    }
}

#[test]
fn io_roundtrip_preserves_algorithm_outputs() {
    for (name, udg) in scenarios() {
        let text = mcds::udg::io::write_instance(&udg);
        let back = mcds::udg::io::parse_instance(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Same instance ⇒ same (deterministic) CDS.
        let a = greedy_cds(udg.graph()).unwrap();
        let b = greedy_cds(back.graph()).unwrap();
        assert_eq!(a.nodes(), b.nodes(), "{name}: determinism across I/O");
    }
}

#[test]
fn bound_sanity_on_every_scenario() {
    use mcds::mis::bounds;
    for (name, udg) in scenarios() {
        let g = udg.graph();
        let mis = BfsMis::compute(g, 0);
        let greedy = greedy_cds(g).unwrap();
        let waf = waf_cds(g).unwrap();
        // Structural inequalities that hold regardless of γ_c:
        assert!(greedy.len() <= 2 * mis.len(), "{name}");
        assert!(waf.len() <= 2 * mis.len() + 1, "{name}");
        // Certified lower bound never exceeds what any algorithm built.
        let diam = mcds::graph::traversal::diameter(g).expect("connected");
        let lb = bounds::gamma_lower_bound_from_diameter(diam)
            .max(bounds::gamma_lower_bound_from_alpha(mis.len()))
            .max(1);
        assert!(
            lb <= greedy.len(),
            "{name}: lb {lb} > greedy {}",
            greedy.len()
        );
        assert!(lb <= waf.len(), "{name}");
    }
}
