//! Workspace-wide property tests on the in-tree `mcds-check` engine.
//!
//! This suite ports `tests/proptests.rs` (the proptest-based variant,
//! gated behind `ext-tests`) onto `mcds-check` so the same invariants
//! run in the default `cargo test -q` with deterministic seeds and
//! automatic counterexample shrinking.

use mcds::cds::algorithms::Algorithm;
use mcds::prelude::*;
use mcds_check::gen::point_sets;
use mcds_check::{prop_assert, prop_assert_eq, prop_assume, Property, TestResult};

#[test]
fn udg_grid_equals_naive() {
    Property::new("udg_grid_equals_naive")
        .cases(64)
        .run(&point_sets(1..=120, 5.0), |points| {
            let fast = Udg::build(points.clone());
            let slow = Udg::build_naive(points.clone(), 1.0);
            prop_assert_eq!(fast.graph(), slow.graph());
            TestResult::Pass
        });
}

#[test]
fn first_fit_mis_invariants() {
    Property::new("first_fit_mis_invariants")
        .cases(64)
        .run(&point_sets(1..=100, 4.0), |points| {
            let udg = Udg::build(points.clone());
            let g = udg.graph();
            // Work on the largest component (MIS election needs a rooted
            // component).
            let comp = mcds::graph::traversal::largest_component(g);
            let root = comp[0];
            let mis = BfsMis::compute(g, root);
            prop_assert!(properties::is_independent_set(g, mis.mis()));
            // Maximal within the root's component: every component node is
            // dominated.
            let mask = mcds::graph::node_mask(g.num_nodes(), mis.mis());
            for &v in &comp {
                let dominated = mask[v] || g.neighbors_iter(v).any(|u| mask[u]);
                prop_assert!(dominated, "component node {} undominated", v);
            }
            TestResult::Pass
        });
}

#[test]
fn all_algorithms_valid_on_connected_instances() {
    Property::new("all_algorithms_valid_on_connected_instances")
        .cases(64)
        .run(&point_sets(1..=90, 4.0), |points| {
            let udg = Udg::build(points.clone());
            let comp = mcds::graph::traversal::largest_component(udg.graph());
            let sub = udg.restricted_to(&comp);
            let g = sub.graph();
            prop_assume!(g.num_nodes() >= 2);
            for alg in Algorithm::ALL {
                let cds = alg.run(g).expect("connected by construction");
                prop_assert!(cds.verify(g).is_ok(), "{} failed", alg);
            }
            TestResult::Pass
        });
}

#[test]
fn greedy_and_waf_respect_alpha_band() {
    Property::new("greedy_and_waf_respect_alpha_band")
        .cases(64)
        .run(&point_sets(1..=60, 3.0), |points| {
            // Without exact gamma_c, check the unconditional structural
            // band |CDS| <= 2|I| + 1 shared by the WAF-style two-phased
            // constructions.
            let udg = Udg::build(points.clone());
            let comp = mcds::graph::traversal::largest_component(udg.graph());
            let sub = udg.restricted_to(&comp);
            let g = sub.graph();
            prop_assume!(g.num_nodes() >= 2);
            let waf = waf_cds(g).expect("connected");
            let greedy = greedy_cds(g).expect("connected");
            let i = waf.dominators().len();
            prop_assert!(waf.len() <= 2 * i + 1);
            prop_assert!(greedy.len() <= 2 * i + 1);
            TestResult::Pass
        });
}

#[test]
fn pruned_cds_is_one_minimal() {
    Property::new("pruned_cds_is_one_minimal")
        .cases(64)
        .run(&point_sets(1..=50, 3.0), |points| {
            let udg = Udg::build(points.clone());
            let comp = mcds::graph::traversal::largest_component(udg.graph());
            let sub = udg.restricted_to(&comp);
            let g = sub.graph();
            prop_assume!(g.num_nodes() >= 3);
            let cds = greedy_cds(g).expect("connected");
            let pruned = mcds::cds::prune::prune_cds(g, cds.nodes()).expect("valid");
            prop_assert!(properties::check_cds(g, &pruned).is_ok());
            // 1-minimality.
            for &v in &pruned {
                let smaller: Vec<usize> = pruned.iter().copied().filter(|&u| u != v).collect();
                if !smaller.is_empty() {
                    prop_assert!(
                        !properties::is_connected_dominating_set(g, &smaller),
                        "node {} redundant after pruning",
                        v
                    );
                }
            }
            TestResult::Pass
        });
}

#[test]
fn instance_io_roundtrip() {
    Property::new("instance_io_roundtrip")
        .cases(64)
        .run(&point_sets(1..=80, 6.0), |points| {
            let udg = Udg::build(points.clone());
            let text = mcds::udg::io::write_instance(&udg);
            let back = mcds::udg::io::parse_instance(&text).expect("own output parses");
            prop_assert_eq!(back.points(), udg.points());
            prop_assert_eq!(back.graph(), udg.graph());
            TestResult::Pass
        });
}

#[test]
fn exact_alpha_at_least_any_mis() {
    Property::new("exact_alpha_at_least_any_mis").cases(64).run(
        &point_sets(1..=26, 2.5),
        |points| {
            let udg = Udg::build(points.clone());
            let g = udg.graph();
            let alpha = mcds::exact::independence_number(g);
            let comp = mcds::graph::traversal::largest_component(g);
            let mis = BfsMis::compute(g, comp[0]);
            prop_assert!(mis.len() <= alpha);
            let lex = mcds::mis::variants::lexicographic_mis(g);
            prop_assert!(lex.len() <= alpha);
            TestResult::Pass
        },
    );
}

#[test]
fn corollary7_on_tiny_instances() {
    Property::new("corollary7_on_tiny_instances").cases(64).run(
        &point_sets(1..=14, 1.8),
        |points| {
            let udg = Udg::build(points.clone());
            let comp = mcds::graph::traversal::largest_component(udg.graph());
            let sub = udg.restricted_to(&comp);
            let g = sub.graph();
            prop_assume!(g.num_nodes() >= 2);
            let alpha = mcds::exact::independence_number(g);
            let gamma_c = mcds::exact::connected_domination_number(g).expect("connected");
            prop_assert!(
                alpha as f64 <= mcds::mis::bounds::alpha_upper_bound(gamma_c) + 1e-9,
                "alpha {} gamma_c {}",
                alpha,
                gamma_c
            );
            TestResult::Pass
        },
    );
}
