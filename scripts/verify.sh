#!/usr/bin/env bash
# Tier-1 verification gate: build, test, format, lint.
# Usage: scripts/verify.sh [--no-clippy]
#
# Hermetic by design — no network, no external dependencies.  The
# proptest/criterion targets are feature-gated (`ext-tests`) and excluded
# here; see the workspace Cargo.toml for how to restore them.
set -euo pipefail
cd "$(dirname "$0")/.."

no_clippy=""
for arg in "$@"; do
  case "$arg" in
    --no-clippy) no_clippy=1 ;;
    *) echo "usage: scripts/verify.sh [--no-clippy]" >&2; exit 1 ;;
  esac
done

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo fmt --check =="
cargo fmt --all -- --check

if [[ -z "$no_clippy" ]]; then
  # Probe first: clippy is a rustup component, not part of a bare cargo
  # install, and the gate must stay runnable on toolchains without it.
  if cargo clippy --version > /dev/null 2>&1; then
    echo "== cargo clippy =="
    cargo clippy --workspace --all-targets -- -D warnings
  else
    echo "== cargo clippy == (skipped: clippy not installed)"
  fi
fi

echo "== check: corpus replay + differential oracle (mcds-check) =="
# Replays tests/corpus/*.case first, then >= 500 fresh random instances
# against the exact solver; also diffs corpus replay at 1 vs 4 threads.
cargo test --quiet --release -p mcds --test differential

echo "== check: bounded fuzz smoke (${MCDS_CHECK_FUZZ_SECS:-30}s, fixed seed) =="
cargo test --quiet --release -p mcds --test differential -- \
  --ignored fuzz_smoke_bounded

echo "== pool determinism: sweep + exp_compare CSVs at --threads 1 vs 4 =="
det_dir=$(mktemp -d)
trap 'rm -rf "$det_dir"' EXIT
cargo run --quiet --release -p mcds-cli -- sweep --n 60 --side 4.5 --trials 5 \
  --seed 11 --threads 1 --out "$det_dir/sweep_t1.csv" > /dev/null
cargo run --quiet --release -p mcds-cli -- sweep --n 60 --side 4.5 --trials 5 \
  --seed 11 --threads 4 --out "$det_dir/sweep_t4.csv" > /dev/null
diff "$det_dir/sweep_t1.csv" "$det_dir/sweep_t4.csv"
cargo run --quiet --release -p mcds-bench --bin exp_compare -- --quick \
  --threads 1 --out "$det_dir/t1" > /dev/null
cargo run --quiet --release -p mcds-bench --bin exp_compare -- --quick \
  --threads 4 --out "$det_dir/t4" > /dev/null
diff "$det_dir/t1/exp_compare.csv" "$det_dir/t4/exp_compare.csv"
echo "CSVs byte-identical at both widths"

echo "== tracing: schema-valid JSONL, identical solve output on vs off =="
cargo run --quiet --release -p mcds-cli -- gen --n 200 --side 7.9 --seed 7 \
  --connected -o "$det_dir/trace.udg" > /dev/null
cargo run --quiet --release -p mcds-cli -- solve "$det_dir/trace.udg" \
  --alg all --prune > "$det_dir/solve_plain.txt"
cargo run --quiet --release -p mcds-cli -- solve "$det_dir/trace.udg" \
  --alg all --prune --trace "$det_dir/trace.jsonl" --quiet > "$det_dir/solve_traced.txt"
diff "$det_dir/solve_plain.txt" "$det_dir/solve_traced.txt"
cargo run --quiet --release -p mcds-cli -- trace check "$det_dir/trace.jsonl"
cargo run --quiet --release -p mcds-cli -- trace summarize "$det_dir/trace.jsonl" \
  > "$det_dir/summary.txt"
# The phase spans must account for >= 95% of root-span wall time.
coverage=$(awk 'END { gsub(/%/, "", $NF); print $NF }' "$det_dir/summary.txt")
awk -v c="$coverage" 'BEGIN { exit !(c >= 95.0) }' || {
  echo "span coverage $coverage% < 95%" >&2; exit 1; }
echo "solve output identical with tracing on; trace valid, coverage $coverage%"

echo "== serve: daemon solve byte-identical to batch CLI, clean shutdown =="
cargo run --quiet --release -p mcds-cli -- gen --n 80 --side 5.0 --seed 21 \
  --connected -o "$det_dir/serve.udg" > /dev/null
cargo run --quiet --release -p mcds-cli -- solve "$det_dir/serve.udg" \
  --alg greedy --json > "$det_dir/solve_batch.json"
cargo run --quiet --release -p mcds-cli -- serve "$det_dir/serve.udg" \
  --addr 127.0.0.1:0 > "$det_dir/serve_out.txt" &
serve_pid=$!
# The daemon prints exactly one `listening on HOST:PORT` line once bound;
# poll for it rather than racing the ephemeral-port assignment.
addr=""
for _ in $(seq 1 100); do
  addr=$(awk '/^listening on /{print $3; exit}' "$det_dir/serve_out.txt")
  [[ -n "$addr" ]] && break
  sleep 0.1
done
[[ -n "$addr" ]] || { echo "daemon never reported its address" >&2; exit 1; }
printf '%s\n%s\n' \
  '{"op":"solve","alg":"greedy"}' \
  '{"op":"shutdown"}' \
  | cargo run --quiet --release -p mcds-cli -- serve --connect "$addr" \
  > "$det_dir/serve_session.txt"
head -n 1 "$det_dir/serve_session.txt" > "$det_dir/solve_daemon.json"
diff "$det_dir/solve_batch.json" "$det_dir/solve_daemon.json"
wait "$serve_pid"
echo "daemon solve byte-identical to batch CLI; clean shutdown"

echo "== substrate: compact backend byte-identical to CSR, E23 smoke =="
cargo run --quiet --release -p mcds-cli -- gen --n 150 --side 6.5 --seed 23 \
  --connected -o "$det_dir/substrate.udg" > /dev/null
cargo run --quiet --release -p mcds-cli -- solve "$det_dir/substrate.udg" \
  --alg all --prune --json > "$det_dir/solve_csr.json"
cargo run --quiet --release -p mcds-cli -- solve "$det_dir/substrate.udg" \
  --alg all --prune --json --backend compact > "$det_dir/solve_compact.json"
diff "$det_dir/solve_csr.json" "$det_dir/solve_compact.json"
echo "solve --json byte-identical on both backends"
# Bounded E23 smoke: streaming build + cross-backend solve + the >= 3x
# adjacency compression gate, at quick-ladder sizes.
cargo run --quiet --release -p mcds-bench --bin exp_substrate -- --quick \
  > /dev/null

echo "== grid vs naive speedup smoke (n=20k, release) =="
cargo test --quiet --release -p mcds-udg --test grid_equivalence -- \
  --ignored grid_beats_naive_5x_at_20k

echo "verify: all checks passed"
