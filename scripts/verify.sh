#!/usr/bin/env bash
# Tier-1 verification gate: build, test, format, lint.
# Usage: scripts/verify.sh [--no-clippy]
#
# Hermetic by design — no network, no external dependencies.  The
# proptest/criterion targets are feature-gated (`ext-tests`) and excluded
# here; see the workspace Cargo.toml for how to restore them.
set -euo pipefail
cd "$(dirname "$0")/.."

no_clippy=""
for arg in "$@"; do
  case "$arg" in
    --no-clippy) no_clippy=1 ;;
    *) echo "usage: scripts/verify.sh [--no-clippy]" >&2; exit 1 ;;
  esac
done

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo fmt --check =="
cargo fmt --all -- --check

if [[ -z "$no_clippy" ]]; then
  echo "== cargo clippy =="
  cargo clippy --workspace --all-targets -- -D warnings
fi

echo "verify: all checks passed"
