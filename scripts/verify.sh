#!/usr/bin/env bash
# Tier-1 verification gate: build, test, format, lint, plus the
# behavioral stages (determinism, tracing, serve, substrate, bench).
# Usage: scripts/verify.sh [--no-clippy] [STAGE...]
#
# With no STAGE arguments every stage runs.  Naming stages runs just
# those (e.g. `scripts/verify.sh build serve bench`); stage names:
#   build test fmt clippy check fuzz pool tracing serve substrate grid
#   kernel bench
#
# Hermetic by design — no network, no external dependencies.  The
# proptest/criterion targets are feature-gated (`ext-tests`) and excluded
# here; see the workspace Cargo.toml for how to restore them.
set -euo pipefail
cd "$(dirname "$0")/.."

all_stages="build test fmt clippy check fuzz pool tracing serve substrate grid kernel bench"
no_clippy=""
stages=()
for arg in "$@"; do
  case "$arg" in
    --no-clippy) no_clippy=1 ;;
    -*) echo "usage: scripts/verify.sh [--no-clippy] [STAGE...]" >&2; exit 1 ;;
    *)
      case " $all_stages " in
        *" $arg "*) stages+=("$arg") ;;
        *) echo "unknown stage \`$arg\` (want: $all_stages)" >&2; exit 1 ;;
      esac ;;
  esac
done

# want STAGE — does this run include STAGE?
want() {
  [[ ${#stages[@]} -eq 0 ]] && return 0
  local s
  for s in "${stages[@]}"; do [[ "$s" == "$1" ]] && return 0; done
  return 1
}

det_dir=$(mktemp -d)
trap 'rm -rf "$det_dir"' EXIT

if want build; then
  echo "== cargo build --release =="
  cargo build --release --workspace
fi

if want test; then
  echo "== cargo test =="
  cargo test --workspace -q
fi

if want fmt; then
  echo "== cargo fmt --check =="
  cargo fmt --all -- --check
fi

if want clippy && [[ -z "$no_clippy" ]]; then
  # Probe first: clippy is a rustup component, not part of a bare cargo
  # install, and the gate must stay runnable on toolchains without it.
  if cargo clippy --version > /dev/null 2>&1; then
    echo "== cargo clippy =="
    cargo clippy --workspace --all-targets -- -D warnings
  else
    echo "== cargo clippy == (skipped: clippy not installed)"
  fi
fi

if want check; then
  echo "== check: corpus replay + differential oracle (mcds-check) =="
  # Replays tests/corpus/*.case first, then >= 500 fresh random instances
  # against the exact solver; also diffs corpus replay at 1 vs 4 threads.
  cargo test --quiet --release -p mcds --test differential
fi

if want fuzz; then
  echo "== check: bounded fuzz smoke (${MCDS_CHECK_FUZZ_SECS:-30}s, fixed seed) =="
  cargo test --quiet --release -p mcds --test differential -- \
    --ignored fuzz_smoke_bounded
fi

if want pool; then
  echo "== pool determinism: sweep + exp_compare CSVs at --threads 1 vs 4 =="
  cargo run --quiet --release -p mcds-cli -- sweep --n 60 --side 4.5 --trials 5 \
    --seed 11 --threads 1 --out "$det_dir/sweep_t1.csv" > /dev/null
  cargo run --quiet --release -p mcds-cli -- sweep --n 60 --side 4.5 --trials 5 \
    --seed 11 --threads 4 --out "$det_dir/sweep_t4.csv" > /dev/null
  diff "$det_dir/sweep_t1.csv" "$det_dir/sweep_t4.csv"
  cargo run --quiet --release -p mcds-bench --bin exp_compare -- --quick \
    --threads 1 --out "$det_dir/t1" > /dev/null
  cargo run --quiet --release -p mcds-bench --bin exp_compare -- --quick \
    --threads 4 --out "$det_dir/t4" > /dev/null
  diff "$det_dir/t1/exp_compare.csv" "$det_dir/t4/exp_compare.csv"
  echo "CSVs byte-identical at both widths"
fi

if want tracing; then
  echo "== tracing: schema-valid JSONL, identical solve output on vs off =="
  cargo run --quiet --release -p mcds-cli -- gen --n 200 --side 7.9 --seed 7 \
    --connected -o "$det_dir/trace.udg" > /dev/null
  cargo run --quiet --release -p mcds-cli -- solve "$det_dir/trace.udg" \
    --alg all --prune > "$det_dir/solve_plain.txt"
  cargo run --quiet --release -p mcds-cli -- solve "$det_dir/trace.udg" \
    --alg all --prune --trace "$det_dir/trace.jsonl" --quiet > "$det_dir/solve_traced.txt"
  diff "$det_dir/solve_plain.txt" "$det_dir/solve_traced.txt"
  cargo run --quiet --release -p mcds-cli -- trace check "$det_dir/trace.jsonl"
  cargo run --quiet --release -p mcds-cli -- trace summarize "$det_dir/trace.jsonl" \
    > "$det_dir/summary.txt"
  # The phase spans must account for >= 95% of root-span wall time.
  coverage=$(awk 'END { gsub(/%/, "", $NF); print $NF }' "$det_dir/summary.txt")
  awk -v c="$coverage" 'BEGIN { exit !(c >= 95.0) }' || {
    echo "span coverage $coverage% < 95%" >&2; exit 1; }
  echo "solve output identical with tracing on; trace valid, coverage $coverage%"
  # Flame attribution: per-label self times must reconstruct >= 99% of
  # root-span wall time (the folding identity), and both the collapsed
  # stacks and the SVG must materialize.
  cargo run --quiet --release -p mcds-cli -- trace flame "$det_dir/trace.jsonl" \
    --folded "$det_dir/trace.folded" --svg "$det_dir/trace.svg" \
    > "$det_dir/flame.txt"
  [[ -s "$det_dir/trace.folded" && -s "$det_dir/trace.svg" ]] || {
    echo "trace flame did not write folded/SVG outputs" >&2; exit 1; }
  attributed=$(awk '/^attributed /{ gsub(/[()%]/, "", $NF); print $NF }' \
    "$det_dir/flame.txt")
  awk -v a="$attributed" 'BEGIN { exit !(a >= 99.0) }' || {
    echo "flame attribution $attributed% < 99%" >&2; exit 1; }
  echo "flame attribution $attributed% of root wall; folded + SVG written"
fi

if want serve; then
  echo "== serve: JSONL solve byte-identical to batch, HTTP /metrics shim =="
  cargo run --quiet --release -p mcds-cli -- gen --n 80 --side 5.0 --seed 21 \
    --connected -o "$det_dir/serve.udg" > /dev/null
  cargo run --quiet --release -p mcds-cli -- solve "$det_dir/serve.udg" \
    --alg greedy --json > "$det_dir/solve_batch.json"
  cargo run --quiet --release -p mcds-cli -- serve "$det_dir/serve.udg" \
    --addr 127.0.0.1:0 > "$det_dir/serve_out.txt" &
  serve_pid=$!
  # The daemon prints exactly one `listening on HOST:PORT` line once bound;
  # poll for it rather than racing the ephemeral-port assignment.
  addr=""
  for _ in $(seq 1 100); do
    addr=$(awk '/^listening on /{print $3; exit}' "$det_dir/serve_out.txt")
    [[ -n "$addr" ]] && break
    sleep 0.1
  done
  [[ -n "$addr" ]] || { echo "daemon never reported its address" >&2; exit 1; }
  # Session 1: JSONL solve before any HTTP traffic.
  printf '%s\n' '{"op":"solve","alg":"greedy"}' \
    | cargo run --quiet --release -p mcds-cli -- serve --connect "$addr" \
    | head -n 1 > "$det_dir/solve_daemon_pre.json"
  diff "$det_dir/solve_batch.json" "$det_dir/solve_daemon_pre.json"
  # Curl-style raw HTTP against the same port (no curl in the image:
  # bash /dev/tcp gives us a plain TCP file descriptor).
  host=${addr%:*}; port=${addr##*:}
  exec 3<>"/dev/tcp/$host/$port"
  printf 'GET /metrics HTTP/1.1\r\nHost: %s\r\nAccept: */*\r\n\r\n' "$addr" >&3
  metrics_response=$(cat <&3)
  exec 3<&- 3>&-
  grep -q $'^HTTP/1.1 200 OK\r$' <<< "$metrics_response" || {
    echo "GET /metrics did not return 200" >&2; exit 1; }
  grep -q '^# TYPE mcds_serve_connections_total counter$' <<< "${metrics_response//$'\r'/}" || {
    echo "/metrics body lacks Prometheus exposition" >&2; exit 1; }
  exec 3<>"/dev/tcp/$host/$port"
  printf 'GET /nope HTTP/1.1\r\nHost: %s\r\n\r\n' "$addr" >&3
  notfound_response=$(cat <&3)
  exec 3<&- 3>&-
  grep -q $'^HTTP/1.1 404 Not Found\r$' <<< "$notfound_response" || {
    echo "GET /nope did not return 404" >&2; exit 1; }
  # Session 2: JSONL solve after the HTTP scrapes must stay
  # byte-identical, then a clean shutdown.
  printf '%s\n%s\n' \
    '{"op":"solve","alg":"greedy"}' \
    '{"op":"shutdown"}' \
    | cargo run --quiet --release -p mcds-cli -- serve --connect "$addr" \
    > "$det_dir/serve_session.txt"
  head -n 1 "$det_dir/serve_session.txt" > "$det_dir/solve_daemon_post.json"
  diff "$det_dir/solve_batch.json" "$det_dir/solve_daemon_post.json"
  wait "$serve_pid"
  echo "JSONL solve byte-identical before and after /metrics scrapes; clean shutdown"
fi

if want substrate; then
  echo "== substrate: compact backend byte-identical to CSR, E23 smoke =="
  cargo run --quiet --release -p mcds-cli -- gen --n 150 --side 6.5 --seed 23 \
    --connected -o "$det_dir/substrate.udg" > /dev/null
  cargo run --quiet --release -p mcds-cli -- solve "$det_dir/substrate.udg" \
    --alg all --prune --json > "$det_dir/solve_csr.json"
  cargo run --quiet --release -p mcds-cli -- solve "$det_dir/substrate.udg" \
    --alg all --prune --json --backend compact > "$det_dir/solve_compact.json"
  diff "$det_dir/solve_csr.json" "$det_dir/solve_compact.json"
  echo "solve --json byte-identical on both backends"
  # Bounded E23 smoke: streaming build + cross-backend solve + the >= 3x
  # adjacency compression gate, at quick-ladder sizes.
  cargo run --quiet --release -p mcds-bench --bin exp_substrate -- --quick \
    > /dev/null
fi

if want grid; then
  echo "== grid vs naive speedup smoke (n=20k, release) =="
  cargo test --quiet --release -p mcds-udg --test grid_equivalence -- \
    --ignored grid_beats_naive_5x_at_20k
fi

if want kernel; then
  echo "== kernel: forced-bitset solve --json byte-identical to forced-scalar =="
  # Cross-process equivalence gate for the bitset hot-path kernels
  # (DESIGN.md §14): the MCDS_KERNEL env var pins the kernel below and
  # above the auto-selection threshold (512 nodes), and the full
  # solve --json output — every algorithm, prune on — must not differ
  # by a byte.
  for spec in "200 7.9 31" "1500 21.7 32"; do
    read -r kn kside kseed <<< "$spec"
    cargo run --quiet --release -p mcds-cli -- gen --n "$kn" --side "$kside" \
      --seed "$kseed" --connected -o "$det_dir/kernel_$kn.udg" > /dev/null
    MCDS_KERNEL=scalar cargo run --quiet --release -p mcds-cli -- solve \
      "$det_dir/kernel_$kn.udg" --alg all --prune --json \
      > "$det_dir/kernel_${kn}_scalar.json"
    MCDS_KERNEL=bitset cargo run --quiet --release -p mcds-cli -- solve \
      "$det_dir/kernel_$kn.udg" --alg all --prune --json \
      > "$det_dir/kernel_${kn}_bitset.json"
    diff "$det_dir/kernel_${kn}_scalar.json" "$det_dir/kernel_${kn}_bitset.json"
  done
  echo "solve --json byte-identical under both kernels at n=200 and n=1500"
fi

if want bench; then
  echo "== bench: perf-trajectory record/compare regression gate =="
  # A quick profile ladder produces a real BENCH_profile.json; recording
  # it twice yields ~1.0x ratios (pass), and a --scale-wall 2.0 fixture
  # entry must trip the gate.
  cargo run --quiet --release -p mcds-bench --bin exp_profile -- --quick \
    --out "$det_dir/bench" > /dev/null
  cargo run --quiet --release -p mcds-bench --bin exp_hotpath -- --quick \
    --out "$det_dir/bench" > /dev/null
  traj="$det_dir/bench/BENCH_trajectory.jsonl"
  cargo run --quiet --release -p mcds-bench --bin trajectory -- record \
    --dir "$det_dir/bench" --out "$traj" > /dev/null
  grep -q '"hotpath"' "$traj" || {
    echo "recorded trajectory line lacks the hotpath bench" >&2; exit 1; }
  cargo run --quiet --release -p mcds-bench --bin trajectory -- record \
    --dir "$det_dir/bench" --out "$traj" > /dev/null
  cargo run --quiet --release -p mcds-bench --bin trajectory -- check \
    --file "$traj"
  cargo run --quiet --release -p mcds-bench --bin trajectory -- compare \
    --file "$traj"
  cargo run --quiet --release -p mcds-bench --bin trajectory -- record \
    --dir "$det_dir/bench" --out "$traj" --scale-wall 2.0 > /dev/null
  if cargo run --quiet --release -p mcds-bench --bin trajectory -- compare \
    --file "$traj" > /dev/null 2>&1; then
    echo "trajectory compare failed to flag a synthetic 2x slowdown" >&2
    exit 1
  fi
  echo "trajectory gate passes on a steady run and flags the 2x fixture"
  # The committed ledger (appended after full experiment runs; see
  # EXPERIMENTS.md E24) must stay schema-valid.
  if [[ -f results/BENCH_trajectory.jsonl ]]; then
    cargo run --quiet --release -p mcds-bench --bin trajectory -- check \
      --file results/BENCH_trajectory.jsonl
  fi
fi

echo "verify: all requested stages passed"
