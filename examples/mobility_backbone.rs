//! Backbone maintenance in a *mobile* ad hoc network.
//!
//! Nodes follow a random-waypoint walk; every epoch the backbone is
//! rebuilt and compared with the previous one.  The output shows the two
//! quantities operators care about: how long a backbone stays *valid*,
//! and how much of it survives a rebuild (churn = messages spent
//! re-electing roles).
//!
//! Run with: `cargo run --release --example mobility_backbone`

use mcds::prelude::*;
use mcds::udg::mobility::{survival_fraction, RandomWaypoint};
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

fn main() -> Result<(), CdsError> {
    let mut rng = StdRng::seed_from_u64(1492);
    let region = mcds::geom::Aabb::square(7.0);
    let mut walk = RandomWaypoint::new(&mut rng, 150, region, (0.2, 0.6), 0.5);
    let epochs = 10;

    println!("150 nodes, 7x7 region, speeds 0.2-0.6 units/epoch\n");
    println!(
        "{:>5} {:>7} {:>9} {:>10} {:>12}",
        "epoch", "giant", "backbone", "survival", "old valid?"
    );

    let mut prev: Option<Vec<usize>> = None;
    for epoch in 0..epochs {
        walk.step(&mut rng, 1.0);
        let udg = walk.snapshot();
        let giant = mcds::graph::traversal::largest_component(udg.graph());
        let sub = udg.restricted_to(&giant);
        let g = sub.graph();
        if g.num_nodes() < 2 {
            println!("{epoch:>5}  network collapsed; skipping");
            continue;
        }
        let cds = greedy_cds(g)?;
        let global: Vec<usize> = cds.nodes().iter().map(|&v| giant[v]).collect();
        let (survival, old_valid) = match &prev {
            None => (1.0, true),
            Some(old) => {
                let old_local: Vec<usize> = old
                    .iter()
                    .filter_map(|v| giant.binary_search(v).ok())
                    .collect();
                (
                    survival_fraction(old, &global),
                    properties::is_connected_dominating_set(g, &old_local),
                )
            }
        };
        println!(
            "{epoch:>5} {:>7} {:>9} {:>9.0}% {:>12}",
            g.num_nodes(),
            cds.len(),
            survival * 100.0,
            old_valid
        );
        prev = Some(global);
    }
    println!("\nlesson: even slow motion invalidates the backbone within an epoch or");
    println!("two — construction must be cheap, which is the paper family's design goal.");
    Ok(())
}
