//! Quickstart: build a virtual backbone for a random sensor deployment.
//!
//! Run with: `cargo run --example quickstart`

use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

fn main() -> Result<(), CdsError> {
    // 120 sensors, unit radio range, 6×6 deployment field.
    let mut rng = StdRng::seed_from_u64(2008);
    let udg = mcds::udg::gen::connected_uniform(&mut rng, 120, 6.0, 100)
        .expect("this density is essentially always connected");
    let g = udg.graph();
    println!(
        "deployment: {} nodes, {} links, avg degree {:.1}",
        g.num_nodes(),
        g.num_edges(),
        g.avg_degree()
    );

    // The paper's new algorithm (Section IV): first-fit MIS dominators +
    // greedy max-gain connectors.  Ratio ≤ 6 7/18 (Theorem 10).
    let greedy = greedy_cds(g)?;
    greedy
        .verify(g)
        .expect("algorithm output is always a valid CDS");
    println!(
        "greedy backbone : {:3} nodes ({} dominators + {} connectors)",
        greedy.len(),
        greedy.dominators().len(),
        greedy.connectors().len()
    );

    // The classic WAF algorithm [10] (Section III analysis).  Ratio ≤ 7⅓.
    let waf = waf_cds(g)?;
    println!(
        "waf backbone    : {:3} nodes ({} dominators + {} connectors)",
        waf.len(),
        waf.dominators().len(),
        waf.connectors().len()
    );

    // Certified quality statement, no exact solver needed: γ_c is at
    // least max(diam − 1, ⌈3(|I|−1)/11⌉) on unit-disk graphs.
    let diam = mcds::graph::traversal::diameter(g).expect("connected");
    let mis_size = BfsMis::compute(g, 0).len();
    let lb = mcds::mis::bounds::gamma_lower_bound_from_diameter(diam)
        .max(mcds::mis::bounds::gamma_lower_bound_from_alpha(mis_size))
        .max(1);
    println!(
        "certified: optimum >= {lb}, so the greedy backbone is within {:.2}x of optimal",
        greedy.len() as f64 / lb as f64
    );
    Ok(())
}
