//! Backbone maintenance under node failure.
//!
//! Virtual backbones in ad hoc networks must survive node deaths.  This
//! example fails the busiest backbone node and compares two recovery
//! strategies:
//!
//! 1. **Full rebuild** — rerun the greedy two-phased algorithm on the
//!    surviving network (optimal-quality but churns the whole backbone);
//! 2. **Local repair** — keep the surviving backbone, patch domination
//!    greedily and reconnect with the library's connector engine
//!    (touches few nodes).
//!
//! Run with: `cargo run --example node_failure`

use mcds::cds::connect;
use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

/// Greedily restores domination: while some node is undominated, add the
/// candidate covering the most undominated nodes.
fn patch_domination(g: &Graph, set: &mut Vec<usize>) {
    loop {
        let mask = mcds::graph::node_mask(g.num_nodes(), set);
        let undominated: Vec<usize> = (0..g.num_nodes())
            .filter(|&v| !mask[v] && !g.neighbors_iter(v).any(|u| mask[u]))
            .collect();
        if undominated.is_empty() {
            return;
        }
        let best = (0..g.num_nodes())
            .filter(|&c| !mask[c])
            .max_by_key(|&c| {
                undominated
                    .iter()
                    .filter(|&&v| v == c || g.has_edge(c, v))
                    .count()
            })
            .expect("some candidate exists");
        set.push(best);
    }
}

fn symmetric_difference(a: &[usize], b: &[usize]) -> usize {
    let sa: std::collections::BTreeSet<_> = a.iter().collect();
    let sb: std::collections::BTreeSet<_> = b.iter().collect();
    sa.symmetric_difference(&sb).count()
}

fn main() -> Result<(), CdsError> {
    let mut rng = StdRng::seed_from_u64(404);
    let udg = mcds::udg::gen::connected_uniform(&mut rng, 200, 7.5, 100).expect("dense deployment");
    let g = udg.graph();
    let backbone = greedy_cds(g)?;
    println!(
        "initial backbone: {} nodes on a {}-node network",
        backbone.len(),
        g.num_nodes()
    );

    // How fragile is the backbone itself?  Articulation points of the
    // backbone-induced subgraph are its single points of failure.
    let (bb_sub, bb_map) = g.induced_subgraph(backbone.nodes());
    let cuts = mcds::graph::traversal::articulation_points(&bb_sub);
    println!(
        "backbone fragility: {} of {} backbone nodes are single points of failure",
        cuts.len(),
        backbone.len()
    );

    // Fail the highest-degree *critical* backbone node (worst case for
    // repair); fall back to highest-degree if the backbone is 2-connected.
    let &failed = cuts
        .iter()
        .map(|&c| &bb_map[c])
        .chain(backbone.nodes().iter())
        .max_by_key(|&&v| g.degree(v))
        .expect("nonempty backbone");
    println!(
        "failing backbone node {failed} (degree {})",
        g.degree(failed)
    );

    // The surviving network: everyone but the failed node.
    let survivors: Vec<usize> = (0..g.num_nodes()).filter(|&v| v != failed).collect();
    let sub = udg.restricted_to(&survivors);
    let sg = sub.graph();
    if !sg.is_connected() {
        println!("network split by the failure; no CDS exists — done");
        return Ok(());
    }
    // Map old ids to new (restricted_to keeps sorted order).
    let old_to_new = |v: usize| if v < failed { v } else { v - 1 };

    // Strategy 1: full rebuild.
    let rebuilt = greedy_cds(sg)?;

    // Strategy 2: local repair.
    let mut repaired: Vec<usize> = backbone
        .nodes()
        .iter()
        .filter(|&&v| v != failed)
        .map(|&v| old_to_new(v))
        .collect();
    patch_domination(sg, &mut repaired);
    let reconnect = connect::max_gain_then_paths(sg, &repaired)?;
    repaired.extend(reconnect);
    let repaired = mcds::graph::node_set(repaired);
    properties::check_cds(sg, &repaired).expect("repair must yield a valid CDS");

    let old_mapped: Vec<usize> = backbone
        .nodes()
        .iter()
        .filter(|&&v| v != failed)
        .map(|&v| old_to_new(v))
        .collect();
    println!();
    println!(
        "full rebuild : {} nodes, churn {} (nodes added+removed vs old backbone)",
        rebuilt.len(),
        symmetric_difference(rebuilt.nodes(), &old_mapped)
    );
    println!(
        "local repair : {} nodes, churn {}",
        repaired.len(),
        symmetric_difference(&repaired, &old_mapped)
    );
    println!();
    println!(
        "tradeoff: the rebuild re-optimizes globally; the repair touches only \
         {} node(s) — in a real network that is the difference between a \
         network-wide re-election and a local patch.",
        symmetric_difference(&repaired, &old_mapped)
    );
    Ok(())
}
