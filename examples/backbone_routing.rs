//! Routing via the virtual backbone — the original CDS application
//! (Das & Bharghavan), measured on a realistic deployment.
//!
//! Routes are confined to the backbone (intermediate hops must be
//! backbone members), which shrinks routing state from `n` nodes to
//! `|CDS|` nodes; the price is path stretch.  This example quantifies
//! that tradeoff for the paper's two algorithms and self-verifies the
//! backbone with the distributed verification protocol.
//!
//! Run with: `cargo run --release --example backbone_routing`

use mcds::cds::routing::stretch_stats;
use mcds::distsim::protocols::run_verify_cds;
use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

fn main() -> Result<(), CdsError> {
    let mut rng = StdRng::seed_from_u64(2718);
    let udg = mcds::udg::gen::connected_uniform(&mut rng, 180, 7.0, 100).expect("dense deployment");
    let g = udg.graph();
    println!(
        "network: {} nodes, {} links, diameter {}\n",
        g.num_nodes(),
        g.num_edges(),
        mcds::graph::traversal::diameter(g).expect("connected")
    );

    for (name, cds) in [("greedy", greedy_cds(g)?), ("waf", waf_cds(g)?)] {
        // Self-verify with radio messages only, then measure routing.
        let report = run_verify_cds(g, cds.nodes()).expect("protocol runs");
        assert!(report.is_valid(), "distributed verification must pass");
        let s = stretch_stats(g, cds.nodes()).expect("a CDS routes all pairs");
        println!(
            "{name:<6} backbone {:3} nodes | routing state shrunk {:.1}x | \
             mean stretch {:.3} | worst {:.2} | mean extra hops {:.2}",
            cds.len(),
            g.num_nodes() as f64 / cds.len() as f64,
            s.mean,
            s.max,
            s.mean_additive
        );
    }

    println!(
        "\ntradeoff: greedy's smaller backbone saves more routing state; WAF's \
         tree-shaped connectors route closer to shortest paths (see E13)."
    );
    Ok(())
}
