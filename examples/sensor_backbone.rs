//! The motivating application: broadcast over a CDS backbone.
//!
//! In a wireless ad hoc network, naive flooding makes *every* node
//! retransmit a broadcast once.  With a CDS backbone, only backbone nodes
//! retransmit — every node still hears the message (the backbone
//! dominates), and the backbone's connectivity carries it everywhere.
//! This example measures the transmission savings on a realistic
//! deployment, which is exactly why the paper wants the CDS *small*.
//!
//! Run with: `cargo run --example sensor_backbone`

use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;
use std::collections::VecDeque;

/// Simulates a source broadcast where only `relays` retransmit.
/// Returns (nodes reached, transmissions used).
fn broadcast(g: &Graph, source: usize, relays: &[usize]) -> (usize, usize) {
    let relay_mask = mcds::graph::node_mask(g.num_nodes(), relays);
    let mut heard = vec![false; g.num_nodes()];
    let mut queued = vec![false; g.num_nodes()];
    let mut tx = 0usize;
    let mut queue = VecDeque::new();
    heard[source] = true;
    queued[source] = true;
    queue.push_back(source); // the source always transmits once
    while let Some(v) = queue.pop_front() {
        tx += 1;
        for u in g.neighbors_iter(v) {
            if !heard[u] {
                heard[u] = true;
                // Only backbone members (and the source) relay further.
                if relay_mask[u] && !queued[u] {
                    queued[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    (heard.iter().filter(|&&h| h).count(), tx)
}

fn main() -> Result<(), CdsError> {
    let mut rng = StdRng::seed_from_u64(31415);
    let udg = mcds::udg::gen::connected_uniform(&mut rng, 300, 9.0, 100).expect("dense deployment");
    let g = udg.graph();
    let n = g.num_nodes();
    println!("network: {n} nodes, {} links\n", g.num_edges());

    let everyone: Vec<usize> = (0..n).collect();
    let backbone = greedy_cds(g)?;

    let source = 0;
    let (reach_flood, tx_flood) = broadcast(g, source, &everyone);
    let (reach_cds, tx_cds) = broadcast(g, source, backbone.nodes());

    assert_eq!(reach_flood, n, "flooding reaches everyone");
    assert_eq!(reach_cds, n, "CDS relaying also reaches everyone");

    println!("naive flooding : {tx_flood:4} transmissions (every node relays)");
    println!(
        "CDS backbone   : {tx_cds:4} transmissions ({} backbone nodes relay)",
        backbone.len()
    );

    // Cross-check the hand-rolled count against the radio simulator's
    // relay protocol — two independent implementations must agree.
    let sim = mcds::distsim::protocols::run_broadcast(g, source, backbone.nodes())
        .expect("valid protocol");
    assert_eq!(sim.reached, n);
    assert_eq!(sim.stats.transmissions as usize, tx_cds);
    println!(
        "savings        : {:.1}% of transmissions eliminated",
        100.0 * (1.0 - tx_cds as f64 / tx_flood as f64)
    );

    // The same guarantee holds from any source: the backbone dominates.
    for s in [n / 2, n - 1] {
        let (reach, _) = broadcast(g, s, backbone.nodes());
        assert_eq!(reach, n);
    }
    println!("\nchecked: broadcasts from other sources also reach all {n} nodes");
    Ok(())
}
