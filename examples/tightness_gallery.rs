//! A gallery of the paper's tightness constructions (Figures 1 and 2),
//! printed as coordinates and exported as Graphviz DOT.
//!
//! Run with: `cargo run --example tightness_gallery`
//! Render with: `neato -n2 -Tpng fig1_three_star.dot -o fig1.png`

use mcds::geom::packing::phi;
use mcds::mis::constructions::{fig1_three_star, fig1_two_star, fig2_chain, Construction};
use mcds::prelude::*;

fn show(name: &str, c: &Construction) {
    println!("=== {name} ===");
    println!(
        "set of {} points, {} independent points packed (bound phi = {}):",
        c.set.len(),
        c.independent.len(),
        if c.set.len() <= 6 {
            phi(c.set.len()).to_string()
        } else {
            "-".into()
        },
    );
    for (i, p) in c.set.iter().enumerate() {
        println!("  set[{i}]  = ({:+.4}, {:+.4})", p.x, p.y);
    }
    for (i, p) in c.independent.iter().enumerate() {
        println!("  ind[{i:2}] = ({:+.4}, {:+.4})", p.x, p.y);
    }
    c.verify().expect("construction must verify");
    println!(
        "verified: strictly independent (margin {:.2e}), all inside the neighborhood\n",
        c.margin()
    );
}

fn export_dot(name: &str, c: &Construction) {
    // Render the union of set and independent points as a UDG (scaled up
    // so Graphviz pixel coordinates look reasonable).
    let mut pts: Vec<Point> = c.set.clone();
    pts.extend(c.independent.iter().copied());
    let udg = Udg::build(pts.clone());
    let style = mcds::graph::dot::DotStyle {
        dominators: (0..c.set.len()).collect(),
        connectors: vec![],
        positions: pts.iter().map(|p| (p.x * 120.0, p.y * 120.0)).collect(),
    };
    let dot = mcds::graph::dot::to_dot(udg.graph(), name, &style);
    let path = format!("{name}.dot");
    std::fs::write(&path, dot).expect("write dot file");
    println!("wrote {path}");
}

fn export_svg(name: &str, c: &Construction) {
    let svg = mcds::viz::render_construction(c);
    let path = format!("{name}.svg");
    std::fs::write(&path, svg).expect("write svg file");
    println!("wrote {path}");
}

fn main() {
    let eps = 0.02;
    show(
        "Fig. 1 left: 2-star with 8 independent points",
        &fig1_two_star(eps),
    );
    show(
        "Fig. 1 right: 3-star with 12 independent points",
        &fig1_three_star(eps),
    );
    show(
        "Fig. 2: 6-chain with 21 independent points",
        &fig2_chain(6, eps),
    );

    export_dot("fig1_three_star", &fig1_three_star(eps));
    export_dot("fig2_chain6", &fig2_chain(6, eps));
    export_svg("fig1_two_star", &fig1_two_star(eps));
    export_svg("fig1_three_star", &fig1_three_star(eps));
    export_svg("fig2_chain6", &fig2_chain(6, eps));
}
