//! Running the WAF construction as a real distributed protocol.
//!
//! Every node is an independent state machine exchanging radio messages
//! in synchronous rounds; nobody sees the global topology.  Three phases:
//! min-id flooding (leader election + BFS tree), rank-based MIS election,
//! and the constant-round connector protocol.  The example shows the
//! per-phase cost and that the result is node-for-node identical to the
//! centralized algorithm.
//!
//! Run with: `cargo run --example distributed_waf`

use mcds::distsim::pipeline::run_waf_distributed;
use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1848);
    let udg = mcds::udg::gen::connected_uniform(&mut rng, 150, 6.5, 100).expect("dense deployment");
    let g = udg.graph();
    println!("network: {} nodes, {} links", g.num_nodes(), g.num_edges());

    let run = run_waf_distributed(g).expect("connected network");
    println!("\nelected leader: node {}", run.root);
    println!("phase                rounds  transmissions  receptions");
    for (name, s) in [
        ("flooding (BFS tree)", run.flood),
        ("MIS election       ", run.mis),
        ("WAF connectors     ", run.connect),
    ] {
        println!(
            "{name}  {:>6}  {:>13}  {:>10}",
            s.rounds, s.transmissions, s.receptions
        );
    }
    println!(
        "total                {:>6}  {:>13}",
        run.total_rounds(),
        run.total_transmissions()
    );

    let central = waf_cds_rooted(g, run.root).expect("connected network");
    assert_eq!(run.cds.nodes(), central.nodes());
    println!(
        "\ndistributed CDS ({} nodes) is identical to the centralized construction",
        run.cds.len()
    );
    run.cds.verify(g).expect("valid CDS");

    let diam = mcds::graph::traversal::diameter(g).expect("connected");
    println!(
        "network diameter {diam}; the protocol used {} rounds (~O(diam))",
        run.total_rounds()
    );
}
