//! How backbone size scales with deployment density.
//!
//! Sweeps the deployment-square side at fixed node count and reports the
//! CDS sizes of the paper's algorithms.  Sparse networks need large
//! backbones (the network is almost a tree); dense networks collapse to
//! a few dominators.
//!
//! Run with: `cargo run --release --example density_sweep`

use mcds::prelude::*;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;

fn main() -> Result<(), CdsError> {
    let n = 250;
    let trials = 5;
    println!("n = {n} nodes, unit radio range, {trials} trials per density\n");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "side", "avg deg", "mis", "greedy", "waf", "greedy/waf"
    );
    for side in [5.0, 7.0, 9.0, 11.0, 13.0, 15.0] {
        let mut rng = StdRng::seed_from_u64(side as u64 * 1000 + 9);
        let mut degs = 0.0;
        let mut mis_total = 0usize;
        let mut greedy_total = 0usize;
        let mut waf_total = 0usize;
        let mut count = 0usize;
        for _ in 0..trials {
            let udg = match mcds::udg::gen::connected_uniform(&mut rng, n, side, 30) {
                Some(u) => u,
                None => mcds::udg::gen::giant_component_instance(&mut rng, n, side),
            };
            let g = udg.graph();
            if g.num_nodes() < 2 {
                continue;
            }
            count += 1;
            degs += g.avg_degree();
            mis_total += BfsMis::compute(g, 0).len();
            greedy_total += greedy_cds(g)?.len();
            waf_total += waf_cds(g)?.len();
        }
        let c = count as f64;
        println!(
            "{side:>6.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>10.3}",
            degs / c,
            mis_total as f64 / c,
            greedy_total as f64 / c,
            waf_total as f64 / c,
            greedy_total as f64 / waf_total as f64,
        );
    }
    println!("\nshape: denser networks (small side) -> tiny backbones; the greedy");
    println!("connector phase consistently saves nodes over the WAF tree connectors.");
    Ok(())
}
