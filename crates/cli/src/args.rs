//! Tiny flag parser shared by the subcommands.

use crate::CliError;
use std::collections::HashMap;

/// Parsed arguments: positionals in order, `--flag value` pairs, and
/// boolean `--switch`es.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv`, treating flags in `value_flags` as taking one value
    /// and flags in `switch_flags` as boolean.
    pub fn parse(
        argv: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Self, CliError> {
        let mut out = Args::default();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if value_flags.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                    out.values.insert(name.to_string(), v.clone());
                } else if switch_flags.contains(&name) {
                    out.switches.push(name.to_string());
                } else {
                    return Err(CliError::Usage(format!("unknown flag --{name}")));
                }
            } else if a == "-o" {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("-o needs a file".to_string()))?;
                out.values.insert("o".to_string(), v.clone());
            } else {
                out.positional.push(a.clone());
            }
        }
        Ok(out)
    }

    /// The n-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(|s| s.as_str())
    }

    /// Value of `--name`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Value of `--name` parsed as `T`, or `default`.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name}: cannot parse `{v}`"))),
        }
    }

    /// Whether `--name` was given as a switch.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_mixed_args() {
        let a = Args::parse(
            &sv(&["file.udg", "--n", "10", "--connected", "-o", "out"]),
            &["n"],
            &["connected"],
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("file.udg"));
        assert_eq!(a.value("n"), Some("10"));
        assert_eq!(a.parsed_or("n", 0usize).unwrap(), 10);
        assert!(a.switch("connected"));
        assert_eq!(a.value("o"), Some("out"));
        assert_eq!(a.parsed_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn rejects_unknown_and_dangling() {
        assert!(Args::parse(&sv(&["--wat"]), &[], &[]).is_err());
        assert!(Args::parse(&sv(&["--n"]), &["n"], &[]).is_err());
        assert!(Args::parse(&sv(&["-o"]), &[], &[]).is_err());
    }

    #[test]
    fn bad_parse_is_usage_error() {
        let a = Args::parse(&sv(&["--n", "xyz"]), &["n"], &[]).unwrap();
        assert!(a.parsed_or::<usize>("n", 0).is_err());
    }
}
