//! `mcds-cli` — command-line interface to the mcds toolkit.
//!
//! ```text
//! mcds-cli gen    --n 200 --side 8 [--seed S] [--kind uniform|clustered|grid|chain]
//!                 [--connected] -o inst.udg
//! mcds-cli stats  inst.udg
//! mcds-cli solve  inst.udg [--alg greedy|waf|chvatal|arb-mis|all] [--prune]
//!                 [--timings] [--threads T] [--backend csr|compact] [--dot out.dot]
//! mcds-cli sweep  [--alg NAME|all] [--n N] [--side S] [--trials T]
//!                 [--seed S] [--threads T] [--out sizes.csv]
//! mcds-cli exact  inst.udg [--budget STEPS]
//! mcds-cli verify inst.udg --nodes 1,5,9
//! mcds-cli dist   inst.udg
//! mcds-cli construct chain --n 8 -o chain.udg
//! mcds-cli churn  --n 100 --events 200 [--waypoint]
//! mcds-cli serve  inst.udg [--addr 127.0.0.1:0] [--m 1|2|3] [--threads T]
//! mcds-cli trace  summarize out.jsonl
//! ```
//!
//! Global flags (any subcommand): `--trace FILE.jsonl` records a
//! structured trace of the run (spans, counters, logs; see `mcds-obs`),
//! `--quiet` silences stderr diagnostics.
//!
//! Exit codes: 0 success, 1 usage error, 2 runtime failure (bad instance,
//! disconnected graph, exhausted budget, invalid CDS).

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    // Writing to a closed pipe (`mcds-cli analyze f | head`) makes
    // println! panic because Rust ignores SIGPIPE; exit quietly like a
    // conventional Unix tool instead of dumping a backtrace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied());
        let is_broken_pipe = message.is_some_and(|m| m.contains("Broken pipe"));
        if is_broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // Global flags, valid in any position with any subcommand; stripped
    // here so subcommand parsers never see them.
    let trace_path = match take_value_flag(&mut argv, "--trace") {
        Ok(path) => path,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(1);
        }
    };
    if take_switch(&mut argv, "--quiet") {
        mcds_obs::log::set_stderr_level(mcds_obs::log::Level::Silent);
    }
    if trace_path.is_some() {
        mcds_obs::enable();
    }

    let code = match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            mcds_obs::error!("{msg}");
            mcds_obs::log::plain(mcds_obs::log::Level::Error, USAGE);
            ExitCode::from(1)
        }
        Err(CliError::Runtime(msg)) => {
            mcds_obs::error!("{msg}");
            ExitCode::from(2)
        }
    };
    if let Some(path) = trace_path {
        match mcds_obs::trace::flush_to_path(&path) {
            Ok(()) => {
                mcds_obs::log::plain(mcds_obs::log::Level::Info, &format!("wrote trace {path}"))
            }
            Err(e) => {
                eprintln!("error: cannot write trace {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    code
}

/// Removes every occurrence of the switch `flag` from `argv`, reporting
/// whether any was present.
fn take_switch(argv: &mut Vec<String>, flag: &str) -> bool {
    let before = argv.len();
    argv.retain(|a| a != flag);
    argv.len() != before
}

/// Removes `flag <value>` from `argv`, returning the value (the last one
/// wins if repeated).
fn take_value_flag(argv: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let mut found = None;
    while let Some(i) = argv.iter().position(|a| a == flag) {
        if i + 1 >= argv.len() {
            return Err(format!("{flag} needs a value"));
        }
        found = Some(argv.remove(i + 1));
        argv.remove(i);
    }
    Ok(found)
}

const USAGE: &str = "\
usage:
  mcds-cli gen    --n N --side S [--seed SEED] [--kind uniform|clustered|grid|chain]
                  [--connected] -o FILE
  mcds-cli stats  FILE
  mcds-cli solve  FILE [--alg greedy|waf|chvatal|arb-mis|gk-grow|all] [--prune]
                  [--timings] [--m 1|2|3] [--biconnect] [--threads T]
                  [--weights unit|degree|random [--weight-seed S]] [--json]
                  [--backend csr|compact] [--dot FILE] [--svg FILE]
  mcds-cli sweep  [--alg NAME|all] [--n N] [--side S] [--trials T] [--seed SEED]
                  [--m 1|2|3] [--biconnect] [--threads T] [--out FILE]
                  [--weights unit|degree|random [--weight-seed S]]
  mcds-cli exact  FILE [--budget STEPS]
  mcds-cli verify FILE --nodes a,b,c
  mcds-cli dist   FILE
  mcds-cli construct two-star|three-star|chain [--n N] [--eps E] [-o FILE]
  mcds-cli analyze FILE
  mcds-cli route  FILE --from A --to B [--alg NAME]
  mcds-cli broadcast FILE [--source S] [--alg NAME]
  mcds-cli churn  [--n N] [--side S] [--seed SEED] [--events E] [--drift F]
                  [--p-join P] [--p-leave P] [--move-radius R] [--m 1|2|3]
                  [--fault-every K] [--fault-radius R] [--fault-kill B]
                  [--threads T] [--verbose]
                  [--waypoint [--speed-min V] [--speed-max V] [--pause T] [--dt T]]
  mcds-cli serve  FILE [--addr HOST:PORT] [--m 1|2|3] [--threads T]
                  (daemon also answers raw HTTP GET /metrics on the same port)
  mcds-cli serve  --connect HOST:PORT        (JSONL client: stdin -> stdout)
  mcds-cli serve  --bench HOST:PORT [--clients C] [--requests R] [--churn-every K]
  mcds-cli serve  --top HOST:PORT [--interval-ms MS] [--count N]
  mcds-cli trace  summarize|check FILE.jsonl
  mcds-cli trace  flame FILE.jsonl [--folded OUT] [--svg OUT]

global flags (any subcommand):
  --trace FILE.jsonl   record spans/counters/logs and write the trace on exit
  --quiet              silence stderr diagnostics";

/// CLI error split by exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (exit 1).
    Usage(String),
    /// Valid command line that failed at runtime (exit 2).
    Runtime(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        return Err(CliError::usage("missing subcommand"));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "gen" => commands::gen(rest),
        "stats" => commands::stats(rest),
        "solve" => commands::solve(rest),
        "sweep" => commands::sweep(rest),
        "exact" => commands::exact(rest),
        "verify" => commands::verify(rest),
        "dist" => commands::dist(rest),
        "construct" => commands::construct(rest),
        "analyze" => commands::analyze(rest),
        "route" => commands::route(rest),
        "broadcast" => commands::broadcast(rest),
        "churn" => commands::churn(rest),
        "serve" => commands::serve(rest),
        "trace" => commands::trace(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown subcommand `{other}`"))),
    }
}
