//! Subcommand implementations.

use crate::args::Args;
use crate::CliError;
use mcds_bench::sweeps::{mean_timings, ms, timed_family_trials, timed_trials, Cell};
use mcds_cds::algorithms::Algorithm;
use mcds_cds::{Solver, WeightScheme};
use mcds_graph::{dot, properties, traversal};
use mcds_maintain::{
    waypoint_epoch, ChurnConfig, ChurnGen, FaultConfig, FaultGen, MaintainConfig, Maintainer,
    StabilityMetrics, TopologyEvent,
};
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;
use mcds_udg::mobility::RandomWaypoint;
use mcds_udg::{gen, io, Udg};

fn load(args: &Args) -> Result<Udg, CliError> {
    let path = args
        .positional(0)
        .ok_or_else(|| CliError::Usage("missing instance file".into()))?;
    io::load_instance(path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))
}

/// `gen`: produce an instance file.
pub fn gen(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["n", "side", "seed", "kind"], &["connected"])?;
    let n: usize = args.parsed_or("n", 100)?;
    let side: f64 = args.parsed_or("side", 6.0)?;
    let seed: u64 = args.parsed_or("seed", 1)?;
    let kind = args.value("kind").unwrap_or("uniform");
    let out = args
        .value("o")
        .ok_or_else(|| CliError::Usage("gen needs -o FILE".into()))?;

    let mut rng = StdRng::seed_from_u64(seed);
    let udg = match kind {
        "uniform" => {
            if args.switch("connected") {
                gen::connected_uniform(&mut rng, n, side, 100).ok_or_else(|| {
                    CliError::Runtime(format!(
                        "no connected instance of n={n}, side={side} in 100 tries; \
                         lower --side or drop --connected"
                    ))
                })?
            } else {
                Udg::build(gen::uniform_in_square(&mut rng, n, side))
            }
        }
        "clustered" => {
            let clusters = (n / 20).max(2);
            Udg::build(gen::clustered(&mut rng, clusters, n / clusters, side, 0.8))
        }
        "grid" => {
            let cols = (n as f64).sqrt().ceil() as usize;
            let rows = n.div_ceil(cols);
            Udg::build(gen::perturbed_grid(&mut rng, rows, cols, 0.8, 0.1))
        }
        "chain" => Udg::build(gen::linear_chain(n, 1.0)),
        other => return Err(CliError::Usage(format!("unknown --kind {other}"))),
    };
    io::save_instance(&udg, out).map_err(|e| CliError::Runtime(format!("{out}: {e}")))?;
    println!(
        "wrote {out}: {} nodes, {} links ({kind})",
        udg.len(),
        udg.graph().num_edges()
    );
    Ok(())
}

/// `stats`: summarize an instance.
pub fn stats(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &[], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    println!("nodes       {}", g.num_nodes());
    println!("edges       {}", g.num_edges());
    println!("avg degree  {:.2}", g.avg_degree());
    println!("max degree  {}", g.max_degree());
    let comps = traversal::connected_components(g);
    println!("components  {}", comps.len());
    if comps.len() == 1 && g.num_nodes() > 0 {
        println!("diameter    {}", traversal::diameter(g).expect("connected"));
    }
    Ok(())
}

/// Resolves `--alg` via the registry's own parser ([`mcds_cds::parse_selector`]),
/// turning unknown names into usage errors.
fn algorithms_for(name: &str) -> Result<Vec<Algorithm>, CliError> {
    mcds_cds::parse_selector(name).map_err(|e| CliError::Usage(e.to_string()))
}

/// Parses `--threads` (default: available parallelism) and configures the
/// process-wide worker pool to that width.
fn configure_pool(args: &Args) -> Result<usize, CliError> {
    let threads: usize = args.parsed_or("threads", mcds_pool::default_parallelism())?;
    if threads == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    mcds_pool::global::configure(threads);
    Ok(threads)
}

/// Parses `--m` (m-fold domination level) with the [`Solver::m`] range
/// turned into a usage error instead of a builder panic.
fn parse_m(args: &Args) -> Result<usize, CliError> {
    let m: usize = args.parsed_or("m", 1)?;
    if !(1..=3).contains(&m) {
        return Err(CliError::Usage(format!("--m must be 1, 2, or 3 (got {m})")));
    }
    Ok(m)
}

/// Parses `--weights` / `--weight-seed` into a [`WeightScheme`] (default
/// unit, i.e. the classic unweighted constructions).
fn parse_weights(args: &Args) -> Result<WeightScheme, CliError> {
    let seed: u64 = args.parsed_or("weight-seed", 1)?;
    let name = args.value("weights").unwrap_or("unit");
    WeightScheme::parse(name, seed).map_err(|e| CliError::Usage(e.to_string()))
}

/// `solve`: run the CDS algorithms.
pub fn solve(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "alg",
            "dot",
            "svg",
            "threads",
            "m",
            "weights",
            "weight-seed",
            "backend",
        ],
        &["prune", "timings", "biconnect", "json"],
    )?;
    let udg = load(&args)?;
    let g = udg.graph();
    // `--backend compact` re-solves against the gap-compressed adjacency
    // backend; output (including `--json`) is byte-identical to the CSR
    // default because the two backends expose the same sorted adjacency
    // (scripts/verify.sh diffs the two).
    let compact = match args.value("backend").unwrap_or("csr") {
        "csr" => None,
        "compact" => Some(mcds_graph::CompactGraph::from_graph(g)),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --backend {other} (expected csr or compact)"
            )))
        }
    };
    configure_pool(&args)?;
    let algs = algorithms_for(args.value("alg").unwrap_or("greedy"))?;
    let show_timings = args.switch("timings");
    let m = parse_m(&args)?;
    let biconnect = args.switch("biconnect");
    let weights = parse_weights(&args)?;
    let json = args.switch("json");
    let mut last: Option<(Algorithm, mcds_cds::Cds)> = None;
    for alg in &algs {
        let solver = Solver::new(*alg)
            .verify(true)
            .prune(args.switch("prune"))
            .timings(show_timings)
            .m(m)
            .biconnect(biconnect)
            .weight_scheme(weights);
        let solution = match &compact {
            Some(c) => solver.solve(c),
            None => solver.solve(g),
        }
        .map_err(|e| CliError::Runtime(format!("{}: {e}", alg.name())))?;
        if json {
            // One response object per algorithm, rendered by the same
            // function the `mcds-serve` daemon uses — so a daemon seeded
            // with this instance answers `solve` byte-identically
            // (scripts/verify.sh diffs the two).
            let req = mcds_serve::proto::SolveRequest {
                alg: *alg,
                m,
                biconnect,
                prune: args.switch("prune"),
                weights,
            };
            let cds = solution.cds();
            println!(
                "{}",
                mcds_serve::proto::render_solve(
                    &req,
                    g.num_nodes(),
                    weights.total(g, cds.nodes()),
                    cds.dominators(),
                    cds.connectors(),
                )
            );
            last = Some((*alg, solution.into_cds()));
            continue;
        }
        let mut suffix = match solution.pruned_from() {
            Some(orig) => format!(" (pruned from {orig})"),
            None => String::new(),
        };
        if m > 1 || biconnect {
            suffix.push_str(&format!(
                " [({},{m}) backbone]",
                if biconnect { 2 } else { 1 }
            ));
        }
        if weights != WeightScheme::Unit {
            suffix.push_str(&format!(
                " [weights {}: total {}]",
                weights.name(),
                weights.total(g, solution.cds().nodes())
            ));
        }
        println!(
            "{:<8} |CDS| = {:<4} ({} dominators + {} connectors){}",
            alg.name(),
            solution.len(),
            solution.cds().dominators().len(),
            solution.cds().connectors().len(),
            suffix
        );
        if show_timings {
            let t = solution.timings();
            println!(
                "         phase1 {} ms, phase2 {} ms, augment {} ms, verify {} ms, prune {} ms",
                ms(t.phase1),
                ms(t.phase2),
                ms(t.augment),
                ms(t.verify),
                ms(t.prune)
            );
        }
        last = Some((*alg, solution.into_cds()));
    }
    if let (Some(path), Some((alg, cds))) = (args.value("svg"), last.as_ref()) {
        let style = mcds_viz::UdgStyle {
            dominators: cds.dominators().to_vec(),
            connectors: cds.connectors().to_vec(),
            ..mcds_viz::UdgStyle::default()
        };
        std::fs::write(path, mcds_viz::render_udg(&udg, &style))
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
        println!("wrote {path} ({} backbone)", alg.name());
    }
    if let (Some(path), Some((alg, cds))) = (args.value("dot"), last) {
        let style = dot::DotStyle {
            dominators: cds.dominators().to_vec(),
            connectors: cds.connectors().to_vec(),
            positions: udg
                .points()
                .iter()
                .map(|p| (p.x * 100.0, p.y * 100.0))
                .collect(),
        };
        std::fs::write(path, dot::to_dot(g, "cds", &style))
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
        println!("wrote {path} ({} backbone)", alg.name());
    }
    Ok(())
}

/// `sweep`: pooled multi-trial sweep over seeded random connected
/// instances, reporting mean sizes and per-phase wall times.
///
/// Trials fan out over the worker pool (`--threads`); the sizes — and the
/// optional `--out` CSV — are bit-identical at any width because every
/// trial derives its RNG from a per-trial stream of the master seed (the
/// `mcds-pool` determinism contract).  Only the wall times change.
pub fn sweep(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "alg",
            "n",
            "side",
            "trials",
            "seed",
            "threads",
            "out",
            "m",
            "weights",
            "weight-seed",
        ],
        &["biconnect"],
    )?;
    let n: usize = args.parsed_or("n", 200)?;
    let side: f64 = args.parsed_or("side", 8.0)?;
    let trials: usize = args.parsed_or("trials", 10)?;
    let seed: u64 = args.parsed_or("seed", 1)?;
    if n == 0 || trials == 0 {
        return Err(CliError::Usage(
            "sweep needs --n >= 1 and --trials >= 1".into(),
        ));
    }
    let m = parse_m(&args)?;
    let biconnect = args.switch("biconnect");
    let weights = parse_weights(&args)?;
    let threads = configure_pool(&args)?;
    let algs = algorithms_for(args.value("alg").unwrap_or("all"))?;
    let cell = Cell {
        n,
        side,
        instances: trials,
    };
    println!("sweep: {trials} trial(s) of n={n}, side={side}, seed={seed} on {threads} thread(s)");
    let mut rows: Vec<String> = vec!["alg,trial,n,size".into()];
    for alg in algs {
        let ts = if m == 1 && !biconnect && weights == WeightScheme::Unit {
            timed_trials(alg, cell, seed)
        } else {
            timed_family_trials(alg, cell, seed, m, biconnect, weights)
        };
        if ts.is_empty() {
            println!("{:<8} no usable instances in this cell", alg.name());
            continue;
        }
        if biconnect && ts.len() < trials {
            println!(
                "{:<8} {} of {trials} instance(s) skipped (not 2-connectable)",
                alg.name(),
                trials - ts.len()
            );
        }
        let mean_size = ts.iter().map(|t| t.solution.len() as f64).sum::<f64>() / ts.len() as f64;
        let t = mean_timings(&ts);
        println!(
            "{:<8} mean |CDS| {:>7.2}  gen {:>8} ms  phase1 {:>8} ms  phase2 {:>8} ms  augment {:>8} ms  verify {:>8} ms",
            alg.name(),
            mean_size,
            ms(t.build),
            ms(t.phase1),
            ms(t.phase2),
            ms(t.augment),
            ms(t.verify)
        );
        for (i, trial) in ts.iter().enumerate() {
            rows.push(format!(
                "{},{},{},{}",
                alg.name(),
                i,
                trial.n,
                trial.solution.len()
            ));
        }
    }
    if let Some(path) = args.value("out") {
        std::fs::write(path, rows.join("\n") + "\n")
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
        println!("wrote {path} ({} rows)", rows.len() - 1);
    }
    Ok(())
}

/// `exact`: optimal alpha / gamma / gamma_c with a step budget.
pub fn exact(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["budget"], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    let budget: u64 = args.parsed_or("budget", mcds_exact::DEFAULT_BUDGET)?;
    if g.num_nodes() > 128 {
        return Err(CliError::Runtime(
            "exact solvers support at most 128 nodes".into(),
        ));
    }
    match mcds_exact::try_max_independent_set(g, budget) {
        Some(mis) => println!("alpha    = {}", mis.len()),
        None => println!("alpha    = ? (budget exhausted)"),
    }
    match mcds_exact::try_min_dominating_set(g, budget) {
        Some(ds) => println!("gamma    = {}", ds.len()),
        None => println!("gamma    = ? (budget exhausted)"),
    }
    match mcds_exact::try_min_connected_dominating_set(g, budget) {
        Ok(Some(cds)) => {
            println!("gamma_c  = {}", cds.len());
            println!("optimum  = {cds:?}");
        }
        Ok(None) => println!("gamma_c  = infinity (graph disconnected)"),
        Err(()) => println!("gamma_c  = ? (budget exhausted)"),
    }
    Ok(())
}

/// `verify`: check a node list against the instance.
pub fn verify(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["nodes"], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    let spec = args
        .value("nodes")
        .ok_or_else(|| CliError::Usage("verify needs --nodes a,b,c".into()))?;
    let nodes: Vec<usize> = spec
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("bad node id `{s}`")))
        })
        .collect::<Result<_, _>>()?;
    for &v in &nodes {
        if v >= g.num_nodes() {
            return Err(CliError::Runtime(format!(
                "node {v} out of range (instance has {} nodes)",
                g.num_nodes()
            )));
        }
    }
    println!(
        "dominating        : {}",
        properties::is_dominating_set(g, &nodes)
    );
    println!(
        "independent       : {}",
        properties::is_independent_set(g, &nodes)
    );
    match properties::check_cds(g, &nodes) {
        Ok(()) => {
            println!("connected dom. set: true");
            Ok(())
        }
        Err(why) => {
            println!("connected dom. set: false ({why})");
            Err(CliError::Runtime("not a valid CDS".into()))
        }
    }
}

/// `dist`: run the distributed WAF pipeline.
pub fn dist(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &[], &[])?;
    let udg = load(&args)?;
    let run = mcds_distsim::pipeline::run_waf_distributed(udg.graph())
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    println!("leader          node {}", run.root);
    println!(
        "flooding        {} rounds, {} tx",
        run.flood.rounds, run.flood.transmissions
    );
    println!(
        "mis election    {} rounds, {} tx",
        run.mis.rounds, run.mis.transmissions
    );
    println!(
        "waf connectors  {} rounds, {} tx",
        run.connect.rounds, run.connect.transmissions
    );
    println!(
        "cds             {} nodes ({} dominators + {} connectors)",
        run.cds.len(),
        run.cds.dominators().len(),
        run.cds.connectors().len()
    );
    Ok(())
}

/// `analyze`: deeper instance analysis than `stats`.
pub fn analyze(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &[], &[])?;
    let udg = load(&args)?;
    let s = mcds_udg::analysis::instance_stats(&udg);
    println!("nodes            {}", s.nodes);
    println!("edges            {}", s.edges);
    println!("avg degree       {:.2}", s.avg_degree);
    println!("max degree       {}", s.max_degree);
    println!("isolated         {}", s.isolated);
    println!("components       {}", s.components);
    println!("giant fraction   {:.2}", s.giant_fraction);
    match s.diameter {
        Some(d) => println!("diameter         {d}"),
        None => println!("diameter         - (disconnected)"),
    }
    if let Some(c) = mcds_udg::analysis::mean_clustering(&udg) {
        println!("mean clustering  {c:.3}");
    }
    let g = udg.graph();
    println!(
        "cut vertices     {}",
        traversal::articulation_points(g).len()
    );
    println!("bridges          {}", traversal::bridges(g).len());
    let hist = mcds_udg::analysis::degree_histogram(&udg);
    let peak = hist.iter().copied().max().unwrap_or(1).max(1);
    println!("degree histogram:");
    for (d, &count) in hist.iter().enumerate() {
        if count > 0 {
            let bar = "#".repeat((count * 40).div_ceil(peak));
            println!("  {d:>3} | {bar} {count}");
        }
    }
    Ok(())
}

/// `route`: backbone-constrained route between two nodes.
pub fn route(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["from", "to", "alg"], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    let from: usize = args.parsed_or("from", 0)?;
    let to: usize = args.parsed_or("to", g.num_nodes().saturating_sub(1))?;
    if from >= g.num_nodes() || to >= g.num_nodes() {
        return Err(CliError::Runtime("endpoint out of range".into()));
    }
    let algs = algorithms_for(args.value("alg").unwrap_or("greedy"))?;
    let true_dist = traversal::bfs_distances(g, from)[to];
    if true_dist == usize::MAX {
        return Err(CliError::Runtime(format!(
            "{from} and {to} are disconnected"
        )));
    }
    println!("shortest path {from} -> {to}: {true_dist} hops");
    for alg in algs {
        let cds = Solver::new(alg)
            .solve(g)
            .map(mcds_cds::Solution::into_cds)
            .map_err(|e| CliError::Runtime(format!("{}: {e}", alg.name())))?;
        let via = mcds_cds::routing::backbone_route_length(g, cds.nodes(), from, to)
            .ok_or_else(|| CliError::Runtime("backbone does not route this pair".into()))?;
        let stretch = if true_dist == 0 {
            1.0
        } else {
            via as f64 / true_dist as f64
        };
        println!(
            "{:<8} backbone ({} nodes): {via} hops (stretch {stretch:.2})",
            alg.name(),
            cds.len(),
        );
    }
    Ok(())
}

/// `broadcast`: flooding vs backbone relay cost.
pub fn broadcast(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["source", "alg"], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    let source: usize = args.parsed_or("source", 0)?;
    if source >= g.num_nodes() {
        return Err(CliError::Runtime("source out of range".into()));
    }
    let all: Vec<usize> = (0..g.num_nodes()).collect();
    let flood = mcds_distsim::protocols::run_broadcast(g, source, &all)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    println!(
        "flooding : {} transmissions, {} rounds, reached {}/{}",
        flood.stats.transmissions,
        flood.stats.rounds,
        flood.reached,
        g.num_nodes()
    );
    for alg in algorithms_for(args.value("alg").unwrap_or("greedy"))? {
        let cds = Solver::new(alg)
            .solve(g)
            .map(mcds_cds::Solution::into_cds)
            .map_err(|e| CliError::Runtime(format!("{}: {e}", alg.name())))?;
        let out = mcds_distsim::protocols::run_broadcast(g, source, cds.nodes())
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        println!(
            "{:<8} : {} transmissions, {} rounds, reached {}/{} (saved {:.0}%)",
            alg.name(),
            out.stats.transmissions,
            out.stats.rounds,
            out.reached,
            g.num_nodes(),
            100.0 * (1.0 - out.stats.transmissions as f64 / flood.stats.transmissions as f64)
        );
    }
    Ok(())
}

/// `construct`: build one of the paper's tightness constructions, verify
/// it, print its certificate, and optionally save the (set ∪ independent)
/// point set as an instance file.
pub fn construct(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["n", "eps"], &[])?;
    let which = args
        .positional(0)
        .ok_or_else(|| CliError::Usage("construct needs two-star|three-star|chain".into()))?;
    let eps: f64 = args.parsed_or("eps", 0.02)?;
    let c = match which {
        "two-star" => mcds_mis::constructions::fig1_two_star(eps),
        "three-star" => mcds_mis::constructions::fig1_three_star(eps),
        "chain" => {
            let n: usize = args.parsed_or("n", 6)?;
            if n < 3 {
                return Err(CliError::Usage("chain needs --n >= 3".into()));
            }
            mcds_mis::constructions::fig2_chain(n, eps)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown construction `{other}` (want two-star|three-star|chain)"
            )))
        }
    };
    c.verify()
        .map_err(|e| CliError::Runtime(format!("construction failed verification: {e}")))?;
    println!(
        "{which}: {} set points, {} independent points (advertised {}), margin {:.2e} — verified",
        c.set.len(),
        c.independent.len(),
        c.advertised,
        c.margin()
    );
    if let Some(path) = args.value("o") {
        let mut pts = c.set.clone();
        pts.extend(c.independent.iter().copied());
        let udg = Udg::build(pts);
        io::save_instance(&udg, path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
        println!(
            "wrote {path} ({} points: indices 0..{} are the set, the rest the packing)",
            udg.len(),
            c.set.len()
        );
    }
    Ok(())
}

/// `churn`: drive the dynamic maintenance engine through a seeded event
/// stream and report stability.
pub fn churn(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "n",
            "side",
            "seed",
            "events",
            "p-join",
            "p-leave",
            "move-radius",
            "drift",
            "speed-min",
            "speed-max",
            "pause",
            "dt",
            "threads",
            "m",
            "fault-every",
            "fault-radius",
            "fault-kill",
        ],
        &["waypoint", "verbose"],
    )?;
    let n: usize = args.parsed_or("n", 100)?;
    let side: f64 = args.parsed_or("side", 6.0)?;
    let seed: u64 = args.parsed_or("seed", 1)?;
    let events: usize = args.parsed_or("events", 200)?;
    configure_pool(&args)?;
    let drift: f64 = args.parsed_or("drift", 1.75)?;
    let verbose = args.switch("verbose");
    let m = parse_m(&args)?;
    let fault_every: usize = args.parsed_or("fault-every", 0)?;
    let fault_radius: f64 = args.parsed_or("fault-radius", 1.5)?;
    let fault_kill: usize = args.parsed_or("fault-kill", 3)?;
    if fault_every > 0 && args.switch("waypoint") {
        return Err(CliError::Usage(
            "fault injection needs the synthetic churn mode (drop --waypoint)".into(),
        ));
    }
    if args.value("fault-radius").is_some() && !(fault_radius.is_finite() && fault_radius > 0.0) {
        return Err(CliError::Usage(
            "--fault-radius must be positive and finite".into(),
        ));
    }
    if args.value("fault-kill").is_some() && fault_kill == 0 {
        return Err(CliError::Usage("--fault-kill must be at least 1".into()));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let region = mcds_geom::Aabb::square(side);
    let maintain_cfg = MaintainConfig {
        drift_threshold: drift,
        m,
        ..MaintainConfig::default()
    };
    let mut metrics = StabilityMetrics::new();

    let mut engine;
    if args.switch("waypoint") {
        // Random-waypoint mode: a fixed population moves; each epoch of
        // length --dt becomes a batch of move events.
        let speed_min: f64 = args.parsed_or("speed-min", 0.5)?;
        let speed_max: f64 = args.parsed_or("speed-max", 1.5)?;
        let pause: f64 = args.parsed_or("pause", 0.2)?;
        let dt: f64 = args.parsed_or("dt", 0.25)?;
        let mut walk = RandomWaypoint::new(&mut rng, n, region, (speed_min, speed_max), pause);
        engine = Maintainer::with_population(maintain_cfg, walk.positions().to_vec());
        let ids: Vec<usize> = (0..n).collect();
        let mut applied = 0;
        let mut epochs = 0usize;
        // A long --pause can make whole epochs eventless; bound the number
        // of epochs so the loop terminates regardless.
        let max_epochs = events.saturating_mul(50).max(1000);
        while applied < events && epochs < max_epochs {
            epochs += 1;
            let epoch = waypoint_epoch(&mut walk, &mut rng, dt, &ids);
            for event in epoch {
                if applied == events {
                    break;
                }
                let report = engine.apply(event);
                if verbose {
                    print_report(&report);
                }
                metrics.record(&report);
                applied += 1;
            }
        }
    } else {
        // Synthetic churn mode: joins, leaves and moves mixed by rate.
        let churn_cfg = ChurnConfig {
            region,
            p_join: args.parsed_or("p-join", 0.1)?,
            p_leave: args.parsed_or("p-leave", 0.1)?,
            move_radius: args.parsed_or("move-radius", 0.5)?,
            min_population: 4,
        };
        let mut source = ChurnGen::new(churn_cfg);
        let mut faults = (fault_every > 0).then(|| {
            FaultGen::new(FaultConfig {
                radius: fault_radius,
                batch: fault_kill,
                min_population: 4,
            })
        });
        let pts = gen::uniform_in_square(&mut rng, n, side);
        engine = Maintainer::with_population(maintain_cfg, pts);
        let mut applied = 0usize;
        let mut slot = 0usize;
        // Alternate the two failure models on successive fault slots so a
        // single run exercises both correlated and independent deaths.
        let mut regional = true;
        while applied < events {
            slot += 1;
            let mut burst: Vec<TopologyEvent> = Vec::new();
            if let Some(f) = faults.as_mut() {
                if slot.is_multiple_of(fault_every) {
                    let alive = engine.alive();
                    burst = if regional {
                        f.regional_kill(&mut rng, &alive)
                    } else {
                        f.batch_kill(&mut rng, &alive)
                    };
                    regional = !regional;
                }
            }
            if burst.is_empty() {
                // Ordinary churn slot (or a fault burst suppressed by the
                // population floor — fall back to churn so the loop always
                // makes progress).
                burst.push(source.next_event(&mut rng, &engine.alive()));
            }
            for event in burst {
                if applied == events {
                    break;
                }
                let report = engine.apply(event);
                if verbose {
                    print_report(&report);
                }
                metrics.record(&report);
                applied += 1;
            }
        }
    }

    println!("events            {}", metrics.events);
    println!(
        "repaired          {} ({:.1}%)",
        metrics.repaired,
        100.0 * metrics.repair_rate()
    );
    println!(
        "recomputed        {} (cold {}, stalled {}, invalid {}, drift {})",
        metrics.recompute_total(),
        metrics.recomputed[0],
        metrics.recomputed[1],
        metrics.recomputed[2],
        metrics.recomputed[3]
    );
    println!(
        "survival          mean {:.3}, min {:.3}",
        metrics.mean_survival(),
        metrics.survival_min
    );
    println!(
        "violations        {} undominated node(s) across {} event(s)",
        metrics.violations_sum, metrics.violated_events
    );
    println!(
        "locality          ≤10% {}, ≤25% {}, ≤50% {}, >50% {}",
        metrics.locality_hist[0],
        metrics.locality_hist[1],
        metrics.locality_hist[2],
        metrics.locality_hist[3]
    );
    println!(
        "size vs baseline  mean {:.3}×, worst {:.3}×",
        metrics.mean_ratio(),
        metrics.ratio_max
    );
    println!(
        "wall per event    mean {:?}, max {:?}",
        metrics.mean_wall(),
        metrics.wall_max
    );
    println!("population        {} alive", engine.population());
    if metrics.invalid_events > 0 {
        return Err(CliError::Runtime(format!(
            "{} events left an invalid CDS",
            metrics.invalid_events
        )));
    }
    Ok(())
}

/// `serve`: the backbone-as-a-service daemon plus its client modes.
///
/// * `serve FILE [--addr H:P] [--m M] [--threads T]` — hold FILE's
///   topology resident behind a JSONL-over-TCP endpoint and serve
///   solve/churn/query/metrics requests until a client sends
///   `{"op":"shutdown"}`.  The bound address is printed first (use port
///   0 to let the OS pick), so scripts can read the ephemeral port.
/// * `serve --connect H:P` — interactive client: one request line in on
///   stdin, one response line out on stdout.
/// * `serve --bench H:P [--clients C] [--requests R] [--churn-every K]`
///   — the in-tree load generator (E21's measuring side).
pub fn serve(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "addr",
            "m",
            "threads",
            "connect",
            "bench",
            "clients",
            "requests",
            "churn-every",
            "side",
            "top",
            "interval-ms",
            "count",
        ],
        &[],
    )?;
    if let Some(addr) = args.value("connect") {
        return serve_connect(addr);
    }
    if let Some(addr) = args.value("bench") {
        return serve_bench(addr, &args);
    }
    if let Some(addr) = args.value("top") {
        return serve_top(addr, &args);
    }
    let udg = load(&args)?;
    let m = parse_m(&args)?;
    let threads: usize = args.parsed_or("threads", mcds_pool::default_parallelism())?;
    if threads == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    let addr = args.value("addr").unwrap_or("127.0.0.1:0");
    // The daemon's metrics endpoints (JSONL `{"op":"metrics"}` and HTTP
    // `GET /metrics`) need the subscriber on.  Span/log events are only
    // worth buffering when the global `--trace` flag already enabled the
    // subscriber (main.rs flushes them to the trace file on exit);
    // otherwise the accept loop discards them to bound daemon memory.
    let retain_trace = mcds_obs::enabled();
    mcds_obs::enable();
    let cfg = mcds_serve::ServeConfig {
        radius: udg.radius(),
        m,
        threads,
        retain_trace,
        ..mcds_serve::ServeConfig::default()
    };
    let server = mcds_serve::Server::bind(addr, cfg, udg.points().to_vec())
        .map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
    let bound = server
        .local_addr()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    // Scripts parse this exact line to learn the ephemeral port; flush
    // it before blocking in the accept loop.
    println!("listening on {bound}");
    use std::io::Write as _;
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    server
        .run()
        .map_err(|e| CliError::Runtime(format!("serve: {e}")))?;
    println!("shutdown complete");
    Ok(())
}

/// The `serve --connect` client loop: stdin request lines to `addr`,
/// response lines to stdout, until EOF or a shutdown acknowledgement.
fn serve_connect(addr: &str) -> Result<(), CliError> {
    let mut client =
        mcds_serve::Client::connect(addr).map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        let n = std::io::BufRead::read_line(&mut stdin.lock(), &mut line)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        if n == 0 {
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = client
            .request(trimmed)
            .map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
        println!("{response}");
        if response == mcds_serve::proto::render_shutdown() {
            return Ok(());
        }
    }
}

/// The `serve --bench` load generator.
fn serve_bench(addr: &str, args: &Args) -> Result<(), CliError> {
    let cfg = mcds_serve::LoadConfig {
        clients: args.parsed_or("clients", 8)?,
        requests: args.parsed_or("requests", 200)?,
        churn_every: args.parsed_or("churn-every", 10)?,
    };
    if cfg.clients == 0 || cfg.requests == 0 {
        return Err(CliError::Usage(
            "serve --bench needs --clients >= 1 and --requests >= 1".into(),
        ));
    }
    let side: f64 = args.parsed_or("side", 6.0)?;
    let report = mcds_serve::run_load(addr, cfg, side)
        .map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
    println!(
        "{} clients x {} requests: {} ok, {} errors",
        cfg.clients,
        cfg.requests,
        report.requests - report.errors,
        report.errors
    );
    println!(
        "wall {:?}  throughput {:.0} req/s  p50 {} us  p99 {} us",
        report.wall,
        report.throughput(),
        report.p50_us,
        report.p99_us
    );
    if report.errors > 0 {
        return Err(CliError::Runtime(format!(
            "{} request(s) failed",
            report.errors
        )));
    }
    Ok(())
}

/// One histogram snapshot: `(count, sum, nonzero log2 buckets)`.
type HistSnapshot = (u64, u64, Vec<(usize, u64)>);

/// One parsed `{"op":"metrics"}` response: counter/gauge totals plus
/// histogram `(count, sum, log2 buckets)` triples, in response order.
struct TopSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    hists: Vec<(String, HistSnapshot)>,
}

fn parse_top_snapshot(line: &str) -> Result<TopSnapshot, CliError> {
    use mcds_serve::json::Value;
    let doc = Value::parse(line).map_err(|e| CliError::Runtime(format!("metrics reply: {e}")))?;
    let section = |key: &str| -> Result<Vec<(String, Value)>, CliError> {
        match doc.get(key) {
            Some(Value::Obj(entries)) => Ok(entries.clone()),
            _ => Err(CliError::Runtime(format!(
                "metrics reply has no `{key}` object: {line}"
            ))),
        }
    };
    let counters = section("counters")?
        .into_iter()
        .filter_map(|(k, v)| Some((k, v.as_u64()?)))
        .collect();
    let gauges = section("gauges")?
        .into_iter()
        .filter_map(|(k, v)| Some((k, v.as_f64()? as i64)))
        .collect();
    let hists = section("hists")?
        .into_iter()
        .filter_map(|(k, v)| {
            let count = v.get("count")?.as_u64()?;
            let sum = v.get("sum")?.as_u64()?;
            let buckets = v
                .get("buckets")?
                .as_arr()?
                .iter()
                .filter_map(|pair| {
                    let pair = pair.as_arr()?;
                    Some((pair.first()?.as_usize()?, pair.get(1)?.as_u64()?))
                })
                .collect();
            Some((k, (count, sum, buckets)))
        })
        .collect();
    Ok(TopSnapshot {
        counters,
        gauges,
        hists,
    })
}

/// The `serve --top` live dashboard: polls `{"op":"metrics"}` on an
/// interval and renders totals plus per-window deltas (rates, and
/// p50/p99 estimated from histogram bucket deltas) as plain redrawn
/// text.  `--count 0` polls until the connection drops.
fn serve_top(addr: &str, args: &Args) -> Result<(), CliError> {
    let interval_ms: u64 = args.parsed_or("interval-ms", 1000)?;
    let count: u64 = args.parsed_or("count", 0)?;
    if interval_ms == 0 {
        return Err(CliError::Usage("--interval-ms must be at least 1".into()));
    }
    let mut client =
        mcds_serve::Client::connect(addr).map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
    let mut prev: Option<(std::time::Instant, TopSnapshot)> = None;
    let mut poll = 0u64;
    loop {
        poll += 1;
        let line = client
            .request(r#"{"op":"metrics"}"#)
            .map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
        let now = std::time::Instant::now();
        let snap = parse_top_snapshot(&line)?;
        let window = prev
            .as_ref()
            .map(|(t, _)| now.duration_since(*t).as_secs_f64());
        print_top(addr, poll, &snap, prev.as_ref().map(|(_, s)| s), window);
        prev = Some((now, snap));
        if count > 0 && poll >= count {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn print_top(
    addr: &str,
    poll: u64,
    snap: &TopSnapshot,
    prev: Option<&TopSnapshot>,
    window_s: Option<f64>,
) {
    match window_s {
        Some(w) => println!("mcds top @ {addr} — poll {poll}, window {w:.2}s"),
        None => println!("mcds top @ {addr} — poll {poll} (first sample; rates need a window)"),
    }
    let prev_counter = |name: &str| -> u64 {
        prev.and_then(|p| p.counters.iter().find(|(k, _)| k == name))
            .map_or(0, |(_, v)| *v)
    };
    let prev_buckets = |name: &str| -> Vec<(usize, u64)> {
        prev.and_then(|p| p.hists.iter().find(|(k, _)| k == name))
            .map_or_else(Vec::new, |(_, (_, _, b))| b.clone())
    };
    println!("{:<28} {:>12} {:>10}", "counters", "total", "rate/s");
    for (name, total) in &snap.counters {
        let rate = match window_s {
            Some(w) if w > 0.0 => {
                format!("{:.1}", total.saturating_sub(prev_counter(name)) as f64 / w)
            }
            _ => "-".to_string(),
        };
        println!("  {name:<26} {total:>12} {rate:>10}");
    }
    if !snap.gauges.is_empty() {
        println!("{:<28} {:>12}", "gauges", "value");
        for (name, value) in &snap.gauges {
            println!("  {name:<26} {value:>12}");
        }
    }
    println!(
        "{:<28} {:>12} {:>10} {:>10} {:>8}",
        "hists", "count", "p50", "p99", "window"
    );
    for (name, (count, _sum, buckets)) in &snap.hists {
        // Quantiles over the *window*: subtract the previous poll's
        // bucket counts, then read nearest-rank quantiles off the log2
        // buckets (upper bounds — ~2x resolution).
        let base = prev_buckets(name);
        let delta: Vec<(usize, u64)> = buckets
            .iter()
            .map(|&(b, c)| {
                let old = base.iter().find(|&&(ob, _)| ob == b).map_or(0, |&(_, c)| c);
                (b, c.saturating_sub(old))
            })
            .filter(|&(_, c)| c > 0)
            .collect();
        let in_window: u64 = delta.iter().map(|&(_, c)| c).sum();
        let (p50, p99) = if in_window > 0 {
            (
                mcds_obs::bucket_quantile(&delta, 50),
                mcds_obs::bucket_quantile(&delta, 99),
            )
        } else {
            (
                mcds_obs::bucket_quantile(buckets, 50),
                mcds_obs::bucket_quantile(buckets, 99),
            )
        };
        println!("  {name:<26} {count:>12} {p50:>10} {p99:>10} {in_window:>8}");
    }
    println!();
}

/// `trace`: inspect a JSONL trace produced by the global `--trace` flag.
///
/// * `trace check FILE` — validate every line against the `mcds-obs`
///   schema (the checker `scripts/verify.sh` runs in CI).
/// * `trace summarize FILE` — aggregate span records by nesting path and
///   print the per-span wall-time breakdown.
/// * `trace flame FILE [--folded OUT] [--svg OUT]` — fold the span tree
///   into per-label *self* time, write the collapsed-stack file and an
///   SVG flamegraph, and report how much root wall time was attributed.
pub fn trace(argv: &[String]) -> Result<(), CliError> {
    let verb = argv
        .first()
        .ok_or_else(|| CliError::Usage("trace needs summarize|check|flame FILE.jsonl".into()))?;
    let path = argv
        .get(1)
        .ok_or_else(|| CliError::Usage(format!("trace {verb} needs a FILE.jsonl")))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    let stats = mcds_obs::schema::validate_trace(&text)
        .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    match verb.as_str() {
        "check" => {
            println!(
                "{path}: valid trace ({} spans, {} logs, {} counters, {} gauges, {} hists)",
                stats.spans, stats.logs, stats.counters, stats.gauges, stats.hists
            );
            Ok(())
        }
        "summarize" => {
            let (spans, root_ns) = mcds_obs::schema::summarize_spans(&text)
                .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
            if spans.is_empty() {
                println!("{path}: no span records (was the traced run instrumented?)");
                return Ok(());
            }
            let mut table =
                mcds_bench::Table::new(&["span", "count", "total ms", "mean µs", "share"]);
            let label_width = spans
                .iter()
                .map(|s| 2 * s.depth + last_segment(&s.path).len())
                .max()
                .unwrap_or(0);
            for s in &spans {
                let label = format!(
                    "{:<label_width$}",
                    format!("{}{}", "  ".repeat(s.depth), last_segment(&s.path))
                );
                let share = if root_ns == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}%", 100.0 * s.total_ns as f64 / root_ns as f64)
                };
                table.row(&[
                    label,
                    s.count.to_string(),
                    format!("{:.3}", s.total_ns as f64 / 1e6),
                    format!("{:.1}", s.total_ns as f64 / 1e3 / s.count as f64),
                    share,
                ]);
            }
            // Left-align the span column by padding labels to equal width
            // before the table right-aligns them.
            println!("{path}: span breakdown (share = of root-span wall time)");
            table.print();
            let child_ns: u64 = spans
                .iter()
                .filter(|s| s.depth == 1)
                .map(|s| s.total_ns)
                .sum();
            if root_ns > 0 {
                println!(
                    "root spans total {:.3} ms; depth-1 children cover {:.1}%",
                    root_ns as f64 / 1e6,
                    100.0 * child_ns as f64 / root_ns as f64
                );
            }
            Ok(())
        }
        "flame" => trace_flame(path, &argv[2..], &text),
        other => Err(CliError::Usage(format!(
            "unknown trace verb `{other}` (want summarize|check|flame)"
        ))),
    }
}

/// The `trace flame` verb body: profile attribution + collapsed-stack +
/// SVG export.  Output paths default to `FILE.folded` / `FILE.svg`.
fn trace_flame(path: &str, rest: &[String], text: &str) -> Result<(), CliError> {
    let args = Args::parse(rest, &["folded", "svg"], &[])?;
    let profile = mcds_obs::profile::Profile::from_trace(text)
        .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    if profile.frames.is_empty() {
        println!("{path}: no span records (was the traced run instrumented?)");
        return Ok(());
    }

    let labels = profile.labels();
    let mut table = mcds_bench::Table::new(&["label", "calls", "self ms", "total ms", "self %"]);
    let attributed = profile.attributed_ns();
    for l in &labels {
        table.row(&[
            l.label.clone(),
            l.count.to_string(),
            format!("{:.3}", l.self_ns as f64 / 1e6),
            format!("{:.3}", l.total_ns as f64 / 1e6),
            if attributed == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * l.self_ns as f64 / attributed as f64)
            },
        ]);
    }
    println!("{path}: self-time attribution (self % = of attributed time)");
    table.print();

    let folded_path = args
        .value("folded")
        .map_or_else(|| format!("{path}.folded"), str::to_string);
    std::fs::write(&folded_path, profile.collapsed())
        .map_err(|e| CliError::Runtime(format!("{folded_path}: {e}")))?;

    let stacks: Vec<(String, u64)> = profile
        .frames
        .iter()
        .map(|f| (f.path.replace('/', ";"), f.self_ns))
        .collect();
    let title = format!(
        "{path} — {:.3} ms root wall",
        profile.root_total_ns as f64 / 1e6
    );
    let svg_path = args
        .value("svg")
        .map_or_else(|| format!("{path}.svg"), str::to_string);
    std::fs::write(&svg_path, mcds_viz::flame::render_flame(&stacks, &title))
        .map_err(|e| CliError::Runtime(format!("{svg_path}: {e}")))?;

    println!(
        "wrote {folded_path} ({} stacks) and {svg_path}",
        stacks.len()
    );
    // The attribution identity — Σ self over all frames vs. Σ root span
    // wall — is the acceptance gate verify.sh parses off this line.
    let share = if profile.root_total_ns == 0 {
        100.0
    } else {
        100.0 * attributed as f64 / profile.root_total_ns as f64
    };
    println!(
        "attributed {:.3} ms of {:.3} ms root wall ({share:.1}%)",
        attributed as f64 / 1e6,
        profile.root_total_ns as f64 / 1e6
    );
    Ok(())
}

/// The final `/`-separated segment of a span path.
fn last_segment(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn print_report(r: &mcds_maintain::RepairReport) {
    println!(
        "event {:>4}  {:<28} alive {:>4}  cds {:>3} ({:.2}x)  touched {:>3}  {}",
        r.seq,
        format!("{:?}", r.event),
        r.alive,
        r.cds_size,
        r.size_ratio(),
        r.nodes_touched,
        match r.decision {
            mcds_maintain::RepairDecision::Repaired => "repaired".to_string(),
            mcds_maintain::RepairDecision::Recomputed(reason) => format!("recomputed ({reason:?})"),
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mcds_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_stats_solve_roundtrip() {
        let f = tmp("inst1.udg");
        gen(&sv(&[
            "--n",
            "60",
            "--side",
            "4",
            "--seed",
            "3",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        stats(&sv(&[&f])).unwrap();
        solve(&sv(&[&f, "--alg", "all", "--prune"])).unwrap();
        dist(&sv(&[&f])).unwrap();
    }

    #[test]
    fn gen_kinds() {
        for kind in ["uniform", "clustered", "grid", "chain"] {
            let f = tmp(&format!("kind_{kind}.udg"));
            gen(&sv(&["--n", "30", "--side", "5", "--kind", kind, "-o", &f])).unwrap();
        }
        let f = tmp("bad.udg");
        assert!(matches!(
            gen(&sv(&["--kind", "nope", "-o", &f])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn exact_and_verify() {
        let f = tmp("inst2.udg");
        gen(&sv(&[
            "--n",
            "14",
            "--side",
            "2",
            "--seed",
            "5",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        exact(&sv(&[&f])).unwrap();
        // The whole vertex set is always a CDS of a connected instance.
        let all: String = (0..14).map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        verify(&sv(&[&f, "--nodes", &all])).unwrap();
        // A single far node is generally not.
        let r = verify(&sv(&[&f, "--nodes", "0"]));
        // Either it happens to dominate (tiny dense instance) or we get
        // a runtime error; both are legal outcomes of the command.
        if let Err(e) = r {
            assert!(matches!(e, CliError::Runtime(_)));
        }
    }

    #[test]
    fn solve_writes_dot_and_svg() {
        let f = tmp("inst3.udg");
        let d = tmp("inst3.dot");
        let svg = tmp("inst3.svg");
        gen(&sv(&[
            "--n",
            "40",
            "--side",
            "3.5",
            "--seed",
            "9",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        solve(&sv(&[&f, "--dot", &d, "--svg", &svg])).unwrap();
        let dot_text = std::fs::read_to_string(&d).unwrap();
        assert!(dot_text.contains("graph cds"));
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
        assert!(svg_text.contains("#111111")); // dominators present
    }

    #[test]
    fn construct_variants() {
        construct(&sv(&["two-star"])).unwrap();
        construct(&sv(&["three-star", "--eps", "0.01"])).unwrap();
        let f = tmp("chain.udg");
        construct(&sv(&["chain", "--n", "5", "-o", &f])).unwrap();
        let udg = io::load_instance(&f).unwrap();
        assert_eq!(udg.len(), 5 + 18); // set + 3(n+1) packing
        assert!(matches!(
            construct(&sv(&["chain", "--n", "2"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(construct(&sv(&["wat"])), Err(CliError::Usage(_))));
        assert!(matches!(construct(&sv(&[])), Err(CliError::Usage(_))));
    }

    #[test]
    fn analyze_route_broadcast() {
        let f = tmp("inst4.udg");
        gen(&sv(&[
            "--n",
            "50",
            "--side",
            "4",
            "--seed",
            "11",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        analyze(&sv(&[&f])).unwrap();
        route(&sv(&[&f, "--from", "0", "--to", "10", "--alg", "all"])).unwrap();
        broadcast(&sv(&[&f, "--source", "3"])).unwrap();
        assert!(matches!(
            route(&sv(&[&f, "--from", "999"])),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            broadcast(&sv(&[&f, "--source", "999"])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn sweep_csv_identical_across_thread_widths() {
        let f1 = tmp("sweep_t1.csv");
        let f4 = tmp("sweep_t4.csv");
        let base = ["--n", "40", "--side", "4", "--trials", "4", "--seed", "7"];
        let mut a1 = sv(&base);
        a1.extend(sv(&["--threads", "1", "--out", &f1]));
        let mut a4 = sv(&base);
        a4.extend(sv(&["--threads", "4", "--out", &f4]));
        sweep(&a1).unwrap();
        sweep(&a4).unwrap();
        let c1 = std::fs::read_to_string(&f1).unwrap();
        let c4 = std::fs::read_to_string(&f4).unwrap();
        assert!(c1.lines().count() > 1, "sweep produced no rows");
        assert_eq!(c1, c4, "sweep CSV must be byte-identical at any width");
        assert!(matches!(
            sweep(&sv(&["--alg", "nope"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            sweep(&sv(&["--trials", "0"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn solve_fault_tolerant_family_flags() {
        let f = tmp("inst_family.udg");
        gen(&sv(&[
            "--n",
            "50",
            "--side",
            "3.5",
            "--seed",
            "21",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        solve(&sv(&[&f, "--m", "2", "--timings"])).unwrap();
        // --biconnect on an instance with an unavoidable cut vertex is a
        // runtime error, not a crash; on a 2-connected one it succeeds.
        // Either way the command must not panic.
        match solve(&sv(&[&f, "--m", "2", "--biconnect"])) {
            Ok(()) | Err(CliError::Runtime(_)) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(matches!(
            solve(&sv(&[&f, "--m", "5"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            solve(&sv(&[&f, "--m", "0"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn sweep_family_flags() {
        let out = tmp("sweep_family.csv");
        sweep(&sv(&[
            "--alg",
            "greedy",
            "--n",
            "30",
            "--side",
            "3",
            "--trials",
            "3",
            "--seed",
            "7",
            "--m",
            "2",
            "--biconnect",
            "--out",
            &out,
        ]))
        .unwrap();
        let csv = std::fs::read_to_string(&out).unwrap();
        assert!(csv.starts_with("alg,trial,n,size"));
        assert!(matches!(sweep(&sv(&["--m", "4"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn churn_with_fault_injection() {
        churn(&sv(&[
            "--n",
            "60",
            "--side",
            "4",
            "--seed",
            "3",
            "--events",
            "40",
            "--m",
            "2",
            "--fault-every",
            "5",
            "--fault-kill",
            "2",
            "--fault-radius",
            "1.0",
        ]))
        .unwrap();
        assert!(matches!(
            churn(&sv(&["--waypoint", "--fault-every", "2"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            churn(&sv(&["--fault-every", "2", "--fault-kill", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            churn(&sv(&["--fault-every", "2", "--fault-radius", "-1"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn solve_weighted_and_json_flags() {
        let f = tmp("inst_weighted.udg");
        gen(&sv(&[
            "--n",
            "40",
            "--side",
            "3.5",
            "--seed",
            "23",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        solve(&sv(&[&f, "--weights", "degree"])).unwrap();
        solve(&sv(&[
            &f,
            "--weights",
            "random",
            "--weight-seed",
            "5",
            "--json",
        ]))
        .unwrap();
        solve(&sv(&[&f, "--json", "--alg", "all"])).unwrap();
        assert!(matches!(
            solve(&sv(&[&f, "--weights", "lucky"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn sweep_weighted_runs_and_unit_matches_classic() {
        let f_unit = tmp("sweep_w_unit.csv");
        let f_deg = tmp("sweep_w_deg.csv");
        let base = [
            "--alg", "greedy", "--n", "30", "--side", "3", "--trials", "3", "--seed", "7",
        ];
        let mut a = sv(&base);
        a.extend(sv(&["--weights", "unit", "--out", &f_unit]));
        let mut b = sv(&base);
        b.extend(sv(&["--weights", "degree", "--out", &f_deg]));
        sweep(&a).unwrap();
        sweep(&b).unwrap();
        // An explicit unit scheme must reproduce the classic path's CSV.
        let f_classic = tmp("sweep_w_classic.csv");
        let mut c = sv(&base);
        c.extend(sv(&["--out", &f_classic]));
        sweep(&c).unwrap();
        assert_eq!(
            std::fs::read_to_string(&f_unit).unwrap(),
            std::fs::read_to_string(&f_classic).unwrap()
        );
        assert!(matches!(
            sweep(&sv(&["--weights", "nope"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_client_modes_reject_bad_input() {
        assert!(matches!(
            serve(&sv(&["--bench", "127.0.0.1:1", "--clients", "0"])),
            Err(CliError::Usage(_))
        ));
        // Nothing listens on a fresh ephemeral-range port we never bound.
        assert!(matches!(
            serve(&sv(&["--connect", "127.0.0.1:9"])),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(serve(&sv(&[])), Err(CliError::Usage(_))));
    }

    #[test]
    fn solve_unknown_alg_is_usage_error() {
        let f = tmp("inst_unknown_alg.udg");
        gen(&sv(&["--n", "20", "--side", "3", "--seed", "2", "-o", &f])).unwrap();
        match solve(&sv(&[&f, "--alg", "bogus"])) {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("bogus"));
                assert!(
                    msg.contains("greedy"),
                    "message should list valid names: {msg}"
                );
            }
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_runtime_error() {
        assert!(matches!(
            stats(&sv(&["/nonexistent/x.udg"])),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(stats(&sv(&[])), Err(CliError::Usage(_))));
    }

    #[test]
    fn trace_flame_writes_folded_and_svg() {
        // A hand-written trace with a well-formed span tree: one root
        // `solve` span (100µs) covering `phase1` (60µs, with a nested
        // `scan` of 20µs) and `phase2` (30µs), leaving 10µs of root
        // self time.  Hand-writing keeps the test independent of the
        // global tracing gate other tests toggle concurrently.
        let f = tmp("flame_in.jsonl");
        let trace_text = "\
{\"type\":\"meta\",\"version\":1,\"clock\":\"monotonic-ns\"}\n\
{\"type\":\"span\",\"seq\":0,\"thread\":0,\"depth\":2,\"name\":\"scan\",\"path\":\"solve/phase1/scan\",\"dur_ns\":20000}\n\
{\"type\":\"span\",\"seq\":1,\"thread\":0,\"depth\":1,\"name\":\"phase1\",\"path\":\"solve/phase1\",\"dur_ns\":60000}\n\
{\"type\":\"span\",\"seq\":2,\"thread\":0,\"depth\":1,\"name\":\"phase2\",\"path\":\"solve/phase2\",\"dur_ns\":30000}\n\
{\"type\":\"span\",\"seq\":3,\"thread\":0,\"depth\":0,\"name\":\"solve\",\"path\":\"solve\",\"dur_ns\":100000}\n";
        std::fs::write(&f, trace_text).unwrap();
        let folded = tmp("flame_out.folded");
        let svg = tmp("flame_out.svg");
        trace(&sv(&["flame", &f, "--folded", &folded, "--svg", &svg])).unwrap();
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        // Self times: scan 20µs, phase1 60-20=40µs, phase2 30µs,
        // solve 100-90=10µs — and they sum back to the root wall.
        assert!(folded_text.contains("solve;phase1;scan 20000"));
        assert!(folded_text.contains("solve;phase1 40000"));
        assert!(folded_text.contains("solve;phase2 30000"));
        assert!(folded_text.contains("solve 10000"));
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
        assert!(svg_text.contains("phase1"));
        // Default output paths derive from the input path.
        trace(&sv(&["flame", &f])).unwrap();
        assert!(std::path::Path::new(&format!("{f}.folded")).exists());
        assert!(std::path::Path::new(&format!("{f}.svg")).exists());
        // Bad verbs and absent files fail with the right error class.
        assert!(matches!(
            trace(&sv(&["flamegraph", &f])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            trace(&sv(&["flame", "/nonexistent/t.jsonl"])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn top_snapshot_parses_metrics_reply() {
        let line = concat!(
            "{\"ok\":true,\"op\":\"metrics\",",
            "\"counters\":{\"serve.requests\":10},",
            "\"gauges\":{\"pool.queue\":-2},",
            "\"hists\":{\"serve.request_ns\":",
            "{\"count\":3,\"sum\":99,\"max\":50,\"buckets\":[[1,1],[5,2]]}}}"
        );
        let snap = parse_top_snapshot(line).unwrap();
        assert_eq!(snap.counters, vec![("serve.requests".to_string(), 10)]);
        assert_eq!(snap.gauges, vec![("pool.queue".to_string(), -2)]);
        assert_eq!(
            snap.hists,
            vec![(
                "serve.request_ns".to_string(),
                (3, 99, vec![(1, 1), (5, 2)])
            )]
        );
        // A reply without metrics sections is a runtime error, not a panic.
        assert!(matches!(
            parse_top_snapshot(r#"{"ok":false,"error":"nope"}"#),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn serve_top_polls_a_live_server() {
        let server = mcds_serve::Server::bind(
            "127.0.0.1:0",
            mcds_serve::ServeConfig::default(),
            (0..12)
                .map(|i| mcds_geom::Point::new(i as f64 * 0.8, 0.0))
                .collect(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());
        serve(&sv(&["--top", &addr, "--interval-ms", "5", "--count", "2"])).unwrap();
        let mut client = mcds_serve::Client::connect(&addr).unwrap();
        client.request(r#"{"op":"shutdown"}"#).unwrap();
        handle.join().unwrap();
        // Interval validation happens before any connection attempt.
        assert!(matches!(
            serve(&sv(&["--top", "127.0.0.1:9", "--interval-ms", "0"])),
            Err(CliError::Usage(_))
        ));
    }
}
