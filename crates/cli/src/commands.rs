//! Subcommand implementations.

use crate::args::Args;
use crate::CliError;
use mcds_bench::sweeps::{mean_timings, ms, timed_family_trials, timed_trials, Cell};
use mcds_cds::algorithms::Algorithm;
use mcds_cds::{Solver, WeightScheme};
use mcds_graph::{dot, properties, traversal};
use mcds_maintain::{
    waypoint_epoch, ChurnConfig, ChurnGen, FaultConfig, FaultGen, MaintainConfig, Maintainer,
    StabilityMetrics, TopologyEvent,
};
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;
use mcds_udg::mobility::RandomWaypoint;
use mcds_udg::{gen, io, Udg};

fn load(args: &Args) -> Result<Udg, CliError> {
    let path = args
        .positional(0)
        .ok_or_else(|| CliError::Usage("missing instance file".into()))?;
    io::load_instance(path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))
}

/// `gen`: produce an instance file.
pub fn gen(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["n", "side", "seed", "kind"], &["connected"])?;
    let n: usize = args.parsed_or("n", 100)?;
    let side: f64 = args.parsed_or("side", 6.0)?;
    let seed: u64 = args.parsed_or("seed", 1)?;
    let kind = args.value("kind").unwrap_or("uniform");
    let out = args
        .value("o")
        .ok_or_else(|| CliError::Usage("gen needs -o FILE".into()))?;

    let mut rng = StdRng::seed_from_u64(seed);
    let udg = match kind {
        "uniform" => {
            if args.switch("connected") {
                gen::connected_uniform(&mut rng, n, side, 100).ok_or_else(|| {
                    CliError::Runtime(format!(
                        "no connected instance of n={n}, side={side} in 100 tries; \
                         lower --side or drop --connected"
                    ))
                })?
            } else {
                Udg::build(gen::uniform_in_square(&mut rng, n, side))
            }
        }
        "clustered" => {
            let clusters = (n / 20).max(2);
            Udg::build(gen::clustered(&mut rng, clusters, n / clusters, side, 0.8))
        }
        "grid" => {
            let cols = (n as f64).sqrt().ceil() as usize;
            let rows = n.div_ceil(cols);
            Udg::build(gen::perturbed_grid(&mut rng, rows, cols, 0.8, 0.1))
        }
        "chain" => Udg::build(gen::linear_chain(n, 1.0)),
        other => return Err(CliError::Usage(format!("unknown --kind {other}"))),
    };
    io::save_instance(&udg, out).map_err(|e| CliError::Runtime(format!("{out}: {e}")))?;
    println!(
        "wrote {out}: {} nodes, {} links ({kind})",
        udg.len(),
        udg.graph().num_edges()
    );
    Ok(())
}

/// `stats`: summarize an instance.
pub fn stats(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &[], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    println!("nodes       {}", g.num_nodes());
    println!("edges       {}", g.num_edges());
    println!("avg degree  {:.2}", g.avg_degree());
    println!("max degree  {}", g.max_degree());
    let comps = traversal::connected_components(g);
    println!("components  {}", comps.len());
    if comps.len() == 1 && g.num_nodes() > 0 {
        println!("diameter    {}", traversal::diameter(g).expect("connected"));
    }
    Ok(())
}

/// Resolves `--alg` via the registry's own parser ([`mcds_cds::parse_selector`]),
/// turning unknown names into usage errors.
fn algorithms_for(name: &str) -> Result<Vec<Algorithm>, CliError> {
    mcds_cds::parse_selector(name).map_err(|e| CliError::Usage(e.to_string()))
}

/// Parses `--threads` (default: available parallelism) and configures the
/// process-wide worker pool to that width.
fn configure_pool(args: &Args) -> Result<usize, CliError> {
    let threads: usize = args.parsed_or("threads", mcds_pool::default_parallelism())?;
    if threads == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    mcds_pool::global::configure(threads);
    Ok(threads)
}

/// Parses `--m` (m-fold domination level) with the [`Solver::m`] range
/// turned into a usage error instead of a builder panic.
fn parse_m(args: &Args) -> Result<usize, CliError> {
    let m: usize = args.parsed_or("m", 1)?;
    if !(1..=3).contains(&m) {
        return Err(CliError::Usage(format!("--m must be 1, 2, or 3 (got {m})")));
    }
    Ok(m)
}

/// Parses `--weights` / `--weight-seed` into a [`WeightScheme`] (default
/// unit, i.e. the classic unweighted constructions).
fn parse_weights(args: &Args) -> Result<WeightScheme, CliError> {
    let seed: u64 = args.parsed_or("weight-seed", 1)?;
    let name = args.value("weights").unwrap_or("unit");
    WeightScheme::parse(name, seed).map_err(|e| CliError::Usage(e.to_string()))
}

/// `solve`: run the CDS algorithms.
pub fn solve(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "alg",
            "dot",
            "svg",
            "threads",
            "m",
            "weights",
            "weight-seed",
            "backend",
        ],
        &["prune", "timings", "biconnect", "json"],
    )?;
    let udg = load(&args)?;
    let g = udg.graph();
    // `--backend compact` re-solves against the gap-compressed adjacency
    // backend; output (including `--json`) is byte-identical to the CSR
    // default because the two backends expose the same sorted adjacency
    // (scripts/verify.sh diffs the two).
    let compact = match args.value("backend").unwrap_or("csr") {
        "csr" => None,
        "compact" => Some(mcds_graph::CompactGraph::from_graph(g)),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --backend {other} (expected csr or compact)"
            )))
        }
    };
    configure_pool(&args)?;
    let algs = algorithms_for(args.value("alg").unwrap_or("greedy"))?;
    let show_timings = args.switch("timings");
    let m = parse_m(&args)?;
    let biconnect = args.switch("biconnect");
    let weights = parse_weights(&args)?;
    let json = args.switch("json");
    let mut last: Option<(Algorithm, mcds_cds::Cds)> = None;
    for alg in &algs {
        let solver = Solver::new(*alg)
            .verify(true)
            .prune(args.switch("prune"))
            .timings(show_timings)
            .m(m)
            .biconnect(biconnect)
            .weight_scheme(weights);
        let solution = match &compact {
            Some(c) => solver.solve(c),
            None => solver.solve(g),
        }
        .map_err(|e| CliError::Runtime(format!("{}: {e}", alg.name())))?;
        if json {
            // One response object per algorithm, rendered by the same
            // function the `mcds-serve` daemon uses — so a daemon seeded
            // with this instance answers `solve` byte-identically
            // (scripts/verify.sh diffs the two).
            let req = mcds_serve::proto::SolveRequest {
                alg: *alg,
                m,
                biconnect,
                prune: args.switch("prune"),
                weights,
            };
            let cds = solution.cds();
            println!(
                "{}",
                mcds_serve::proto::render_solve(
                    &req,
                    g.num_nodes(),
                    weights.total(g, cds.nodes()),
                    cds.dominators(),
                    cds.connectors(),
                )
            );
            last = Some((*alg, solution.into_cds()));
            continue;
        }
        let mut suffix = match solution.pruned_from() {
            Some(orig) => format!(" (pruned from {orig})"),
            None => String::new(),
        };
        if m > 1 || biconnect {
            suffix.push_str(&format!(
                " [({},{m}) backbone]",
                if biconnect { 2 } else { 1 }
            ));
        }
        if weights != WeightScheme::Unit {
            suffix.push_str(&format!(
                " [weights {}: total {}]",
                weights.name(),
                weights.total(g, solution.cds().nodes())
            ));
        }
        println!(
            "{:<8} |CDS| = {:<4} ({} dominators + {} connectors){}",
            alg.name(),
            solution.len(),
            solution.cds().dominators().len(),
            solution.cds().connectors().len(),
            suffix
        );
        if show_timings {
            let t = solution.timings();
            println!(
                "         phase1 {} ms, phase2 {} ms, augment {} ms, verify {} ms, prune {} ms",
                ms(t.phase1),
                ms(t.phase2),
                ms(t.augment),
                ms(t.verify),
                ms(t.prune)
            );
        }
        last = Some((*alg, solution.into_cds()));
    }
    if let (Some(path), Some((alg, cds))) = (args.value("svg"), last.as_ref()) {
        let style = mcds_viz::UdgStyle {
            dominators: cds.dominators().to_vec(),
            connectors: cds.connectors().to_vec(),
            ..mcds_viz::UdgStyle::default()
        };
        std::fs::write(path, mcds_viz::render_udg(&udg, &style))
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
        println!("wrote {path} ({} backbone)", alg.name());
    }
    if let (Some(path), Some((alg, cds))) = (args.value("dot"), last) {
        let style = dot::DotStyle {
            dominators: cds.dominators().to_vec(),
            connectors: cds.connectors().to_vec(),
            positions: udg
                .points()
                .iter()
                .map(|p| (p.x * 100.0, p.y * 100.0))
                .collect(),
        };
        std::fs::write(path, dot::to_dot(g, "cds", &style))
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
        println!("wrote {path} ({} backbone)", alg.name());
    }
    Ok(())
}

/// `sweep`: pooled multi-trial sweep over seeded random connected
/// instances, reporting mean sizes and per-phase wall times.
///
/// Trials fan out over the worker pool (`--threads`); the sizes — and the
/// optional `--out` CSV — are bit-identical at any width because every
/// trial derives its RNG from a per-trial stream of the master seed (the
/// `mcds-pool` determinism contract).  Only the wall times change.
pub fn sweep(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "alg",
            "n",
            "side",
            "trials",
            "seed",
            "threads",
            "out",
            "m",
            "weights",
            "weight-seed",
        ],
        &["biconnect"],
    )?;
    let n: usize = args.parsed_or("n", 200)?;
    let side: f64 = args.parsed_or("side", 8.0)?;
    let trials: usize = args.parsed_or("trials", 10)?;
    let seed: u64 = args.parsed_or("seed", 1)?;
    if n == 0 || trials == 0 {
        return Err(CliError::Usage(
            "sweep needs --n >= 1 and --trials >= 1".into(),
        ));
    }
    let m = parse_m(&args)?;
    let biconnect = args.switch("biconnect");
    let weights = parse_weights(&args)?;
    let threads = configure_pool(&args)?;
    let algs = algorithms_for(args.value("alg").unwrap_or("all"))?;
    let cell = Cell {
        n,
        side,
        instances: trials,
    };
    println!("sweep: {trials} trial(s) of n={n}, side={side}, seed={seed} on {threads} thread(s)");
    let mut rows: Vec<String> = vec!["alg,trial,n,size".into()];
    for alg in algs {
        let ts = if m == 1 && !biconnect && weights == WeightScheme::Unit {
            timed_trials(alg, cell, seed)
        } else {
            timed_family_trials(alg, cell, seed, m, biconnect, weights)
        };
        if ts.is_empty() {
            println!("{:<8} no usable instances in this cell", alg.name());
            continue;
        }
        if biconnect && ts.len() < trials {
            println!(
                "{:<8} {} of {trials} instance(s) skipped (not 2-connectable)",
                alg.name(),
                trials - ts.len()
            );
        }
        let mean_size = ts.iter().map(|t| t.solution.len() as f64).sum::<f64>() / ts.len() as f64;
        let t = mean_timings(&ts);
        println!(
            "{:<8} mean |CDS| {:>7.2}  gen {:>8} ms  phase1 {:>8} ms  phase2 {:>8} ms  augment {:>8} ms  verify {:>8} ms",
            alg.name(),
            mean_size,
            ms(t.build),
            ms(t.phase1),
            ms(t.phase2),
            ms(t.augment),
            ms(t.verify)
        );
        for (i, trial) in ts.iter().enumerate() {
            rows.push(format!(
                "{},{},{},{}",
                alg.name(),
                i,
                trial.n,
                trial.solution.len()
            ));
        }
    }
    if let Some(path) = args.value("out") {
        std::fs::write(path, rows.join("\n") + "\n")
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
        println!("wrote {path} ({} rows)", rows.len() - 1);
    }
    Ok(())
}

/// `exact`: optimal alpha / gamma / gamma_c with a step budget.
pub fn exact(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["budget"], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    let budget: u64 = args.parsed_or("budget", mcds_exact::DEFAULT_BUDGET)?;
    if g.num_nodes() > 128 {
        return Err(CliError::Runtime(
            "exact solvers support at most 128 nodes".into(),
        ));
    }
    match mcds_exact::try_max_independent_set(g, budget) {
        Some(mis) => println!("alpha    = {}", mis.len()),
        None => println!("alpha    = ? (budget exhausted)"),
    }
    match mcds_exact::try_min_dominating_set(g, budget) {
        Some(ds) => println!("gamma    = {}", ds.len()),
        None => println!("gamma    = ? (budget exhausted)"),
    }
    match mcds_exact::try_min_connected_dominating_set(g, budget) {
        Ok(Some(cds)) => {
            println!("gamma_c  = {}", cds.len());
            println!("optimum  = {cds:?}");
        }
        Ok(None) => println!("gamma_c  = infinity (graph disconnected)"),
        Err(()) => println!("gamma_c  = ? (budget exhausted)"),
    }
    Ok(())
}

/// `verify`: check a node list against the instance.
pub fn verify(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["nodes"], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    let spec = args
        .value("nodes")
        .ok_or_else(|| CliError::Usage("verify needs --nodes a,b,c".into()))?;
    let nodes: Vec<usize> = spec
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("bad node id `{s}`")))
        })
        .collect::<Result<_, _>>()?;
    for &v in &nodes {
        if v >= g.num_nodes() {
            return Err(CliError::Runtime(format!(
                "node {v} out of range (instance has {} nodes)",
                g.num_nodes()
            )));
        }
    }
    println!(
        "dominating        : {}",
        properties::is_dominating_set(g, &nodes)
    );
    println!(
        "independent       : {}",
        properties::is_independent_set(g, &nodes)
    );
    match properties::check_cds(g, &nodes) {
        Ok(()) => {
            println!("connected dom. set: true");
            Ok(())
        }
        Err(why) => {
            println!("connected dom. set: false ({why})");
            Err(CliError::Runtime("not a valid CDS".into()))
        }
    }
}

/// `dist`: run the distributed WAF pipeline.
pub fn dist(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &[], &[])?;
    let udg = load(&args)?;
    let run = mcds_distsim::pipeline::run_waf_distributed(udg.graph())
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    println!("leader          node {}", run.root);
    println!(
        "flooding        {} rounds, {} tx",
        run.flood.rounds, run.flood.transmissions
    );
    println!(
        "mis election    {} rounds, {} tx",
        run.mis.rounds, run.mis.transmissions
    );
    println!(
        "waf connectors  {} rounds, {} tx",
        run.connect.rounds, run.connect.transmissions
    );
    println!(
        "cds             {} nodes ({} dominators + {} connectors)",
        run.cds.len(),
        run.cds.dominators().len(),
        run.cds.connectors().len()
    );
    Ok(())
}

/// `analyze`: deeper instance analysis than `stats`.
pub fn analyze(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &[], &[])?;
    let udg = load(&args)?;
    let s = mcds_udg::analysis::instance_stats(&udg);
    println!("nodes            {}", s.nodes);
    println!("edges            {}", s.edges);
    println!("avg degree       {:.2}", s.avg_degree);
    println!("max degree       {}", s.max_degree);
    println!("isolated         {}", s.isolated);
    println!("components       {}", s.components);
    println!("giant fraction   {:.2}", s.giant_fraction);
    match s.diameter {
        Some(d) => println!("diameter         {d}"),
        None => println!("diameter         - (disconnected)"),
    }
    if let Some(c) = mcds_udg::analysis::mean_clustering(&udg) {
        println!("mean clustering  {c:.3}");
    }
    let g = udg.graph();
    println!(
        "cut vertices     {}",
        traversal::articulation_points(g).len()
    );
    println!("bridges          {}", traversal::bridges(g).len());
    let hist = mcds_udg::analysis::degree_histogram(&udg);
    let peak = hist.iter().copied().max().unwrap_or(1).max(1);
    println!("degree histogram:");
    for (d, &count) in hist.iter().enumerate() {
        if count > 0 {
            let bar = "#".repeat((count * 40).div_ceil(peak));
            println!("  {d:>3} | {bar} {count}");
        }
    }
    Ok(())
}

/// `route`: backbone-constrained route between two nodes.
pub fn route(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["from", "to", "alg"], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    let from: usize = args.parsed_or("from", 0)?;
    let to: usize = args.parsed_or("to", g.num_nodes().saturating_sub(1))?;
    if from >= g.num_nodes() || to >= g.num_nodes() {
        return Err(CliError::Runtime("endpoint out of range".into()));
    }
    let algs = algorithms_for(args.value("alg").unwrap_or("greedy"))?;
    let true_dist = traversal::bfs_distances(g, from)[to];
    if true_dist == usize::MAX {
        return Err(CliError::Runtime(format!(
            "{from} and {to} are disconnected"
        )));
    }
    println!("shortest path {from} -> {to}: {true_dist} hops");
    for alg in algs {
        let cds = Solver::new(alg)
            .solve(g)
            .map(mcds_cds::Solution::into_cds)
            .map_err(|e| CliError::Runtime(format!("{}: {e}", alg.name())))?;
        let via = mcds_cds::routing::backbone_route_length(g, cds.nodes(), from, to)
            .ok_or_else(|| CliError::Runtime("backbone does not route this pair".into()))?;
        let stretch = if true_dist == 0 {
            1.0
        } else {
            via as f64 / true_dist as f64
        };
        println!(
            "{:<8} backbone ({} nodes): {via} hops (stretch {stretch:.2})",
            alg.name(),
            cds.len(),
        );
    }
    Ok(())
}

/// `broadcast`: flooding vs backbone relay cost.
pub fn broadcast(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["source", "alg"], &[])?;
    let udg = load(&args)?;
    let g = udg.graph();
    let source: usize = args.parsed_or("source", 0)?;
    if source >= g.num_nodes() {
        return Err(CliError::Runtime("source out of range".into()));
    }
    let all: Vec<usize> = (0..g.num_nodes()).collect();
    let flood = mcds_distsim::protocols::run_broadcast(g, source, &all)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    println!(
        "flooding : {} transmissions, {} rounds, reached {}/{}",
        flood.stats.transmissions,
        flood.stats.rounds,
        flood.reached,
        g.num_nodes()
    );
    for alg in algorithms_for(args.value("alg").unwrap_or("greedy"))? {
        let cds = Solver::new(alg)
            .solve(g)
            .map(mcds_cds::Solution::into_cds)
            .map_err(|e| CliError::Runtime(format!("{}: {e}", alg.name())))?;
        let out = mcds_distsim::protocols::run_broadcast(g, source, cds.nodes())
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        println!(
            "{:<8} : {} transmissions, {} rounds, reached {}/{} (saved {:.0}%)",
            alg.name(),
            out.stats.transmissions,
            out.stats.rounds,
            out.reached,
            g.num_nodes(),
            100.0 * (1.0 - out.stats.transmissions as f64 / flood.stats.transmissions as f64)
        );
    }
    Ok(())
}

/// `construct`: build one of the paper's tightness constructions, verify
/// it, print its certificate, and optionally save the (set ∪ independent)
/// point set as an instance file.
pub fn construct(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv, &["n", "eps"], &[])?;
    let which = args
        .positional(0)
        .ok_or_else(|| CliError::Usage("construct needs two-star|three-star|chain".into()))?;
    let eps: f64 = args.parsed_or("eps", 0.02)?;
    let c = match which {
        "two-star" => mcds_mis::constructions::fig1_two_star(eps),
        "three-star" => mcds_mis::constructions::fig1_three_star(eps),
        "chain" => {
            let n: usize = args.parsed_or("n", 6)?;
            if n < 3 {
                return Err(CliError::Usage("chain needs --n >= 3".into()));
            }
            mcds_mis::constructions::fig2_chain(n, eps)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown construction `{other}` (want two-star|three-star|chain)"
            )))
        }
    };
    c.verify()
        .map_err(|e| CliError::Runtime(format!("construction failed verification: {e}")))?;
    println!(
        "{which}: {} set points, {} independent points (advertised {}), margin {:.2e} — verified",
        c.set.len(),
        c.independent.len(),
        c.advertised,
        c.margin()
    );
    if let Some(path) = args.value("o") {
        let mut pts = c.set.clone();
        pts.extend(c.independent.iter().copied());
        let udg = Udg::build(pts);
        io::save_instance(&udg, path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
        println!(
            "wrote {path} ({} points: indices 0..{} are the set, the rest the packing)",
            udg.len(),
            c.set.len()
        );
    }
    Ok(())
}

/// `churn`: drive the dynamic maintenance engine through a seeded event
/// stream and report stability.
pub fn churn(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "n",
            "side",
            "seed",
            "events",
            "p-join",
            "p-leave",
            "move-radius",
            "drift",
            "speed-min",
            "speed-max",
            "pause",
            "dt",
            "threads",
            "m",
            "fault-every",
            "fault-radius",
            "fault-kill",
        ],
        &["waypoint", "verbose"],
    )?;
    let n: usize = args.parsed_or("n", 100)?;
    let side: f64 = args.parsed_or("side", 6.0)?;
    let seed: u64 = args.parsed_or("seed", 1)?;
    let events: usize = args.parsed_or("events", 200)?;
    configure_pool(&args)?;
    let drift: f64 = args.parsed_or("drift", 1.75)?;
    let verbose = args.switch("verbose");
    let m = parse_m(&args)?;
    let fault_every: usize = args.parsed_or("fault-every", 0)?;
    let fault_radius: f64 = args.parsed_or("fault-radius", 1.5)?;
    let fault_kill: usize = args.parsed_or("fault-kill", 3)?;
    if fault_every > 0 && args.switch("waypoint") {
        return Err(CliError::Usage(
            "fault injection needs the synthetic churn mode (drop --waypoint)".into(),
        ));
    }
    if args.value("fault-radius").is_some() && !(fault_radius.is_finite() && fault_radius > 0.0) {
        return Err(CliError::Usage(
            "--fault-radius must be positive and finite".into(),
        ));
    }
    if args.value("fault-kill").is_some() && fault_kill == 0 {
        return Err(CliError::Usage("--fault-kill must be at least 1".into()));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let region = mcds_geom::Aabb::square(side);
    let maintain_cfg = MaintainConfig {
        drift_threshold: drift,
        m,
        ..MaintainConfig::default()
    };
    let mut metrics = StabilityMetrics::new();

    let mut engine;
    if args.switch("waypoint") {
        // Random-waypoint mode: a fixed population moves; each epoch of
        // length --dt becomes a batch of move events.
        let speed_min: f64 = args.parsed_or("speed-min", 0.5)?;
        let speed_max: f64 = args.parsed_or("speed-max", 1.5)?;
        let pause: f64 = args.parsed_or("pause", 0.2)?;
        let dt: f64 = args.parsed_or("dt", 0.25)?;
        let mut walk = RandomWaypoint::new(&mut rng, n, region, (speed_min, speed_max), pause);
        engine = Maintainer::with_population(maintain_cfg, walk.positions().to_vec());
        let ids: Vec<usize> = (0..n).collect();
        let mut applied = 0;
        let mut epochs = 0usize;
        // A long --pause can make whole epochs eventless; bound the number
        // of epochs so the loop terminates regardless.
        let max_epochs = events.saturating_mul(50).max(1000);
        while applied < events && epochs < max_epochs {
            epochs += 1;
            let epoch = waypoint_epoch(&mut walk, &mut rng, dt, &ids);
            for event in epoch {
                if applied == events {
                    break;
                }
                let report = engine.apply(event);
                if verbose {
                    print_report(&report);
                }
                metrics.record(&report);
                applied += 1;
            }
        }
    } else {
        // Synthetic churn mode: joins, leaves and moves mixed by rate.
        let churn_cfg = ChurnConfig {
            region,
            p_join: args.parsed_or("p-join", 0.1)?,
            p_leave: args.parsed_or("p-leave", 0.1)?,
            move_radius: args.parsed_or("move-radius", 0.5)?,
            min_population: 4,
        };
        let mut source = ChurnGen::new(churn_cfg);
        let mut faults = (fault_every > 0).then(|| {
            FaultGen::new(FaultConfig {
                radius: fault_radius,
                batch: fault_kill,
                min_population: 4,
            })
        });
        let pts = gen::uniform_in_square(&mut rng, n, side);
        engine = Maintainer::with_population(maintain_cfg, pts);
        let mut applied = 0usize;
        let mut slot = 0usize;
        // Alternate the two failure models on successive fault slots so a
        // single run exercises both correlated and independent deaths.
        let mut regional = true;
        while applied < events {
            slot += 1;
            let mut burst: Vec<TopologyEvent> = Vec::new();
            if let Some(f) = faults.as_mut() {
                if slot.is_multiple_of(fault_every) {
                    let alive = engine.alive();
                    burst = if regional {
                        f.regional_kill(&mut rng, &alive)
                    } else {
                        f.batch_kill(&mut rng, &alive)
                    };
                    regional = !regional;
                }
            }
            if burst.is_empty() {
                // Ordinary churn slot (or a fault burst suppressed by the
                // population floor — fall back to churn so the loop always
                // makes progress).
                burst.push(source.next_event(&mut rng, &engine.alive()));
            }
            for event in burst {
                if applied == events {
                    break;
                }
                let report = engine.apply(event);
                if verbose {
                    print_report(&report);
                }
                metrics.record(&report);
                applied += 1;
            }
        }
    }

    println!("events            {}", metrics.events);
    println!(
        "repaired          {} ({:.1}%)",
        metrics.repaired,
        100.0 * metrics.repair_rate()
    );
    println!(
        "recomputed        {} (cold {}, stalled {}, invalid {}, drift {})",
        metrics.recompute_total(),
        metrics.recomputed[0],
        metrics.recomputed[1],
        metrics.recomputed[2],
        metrics.recomputed[3]
    );
    println!(
        "survival          mean {:.3}, min {:.3}",
        metrics.mean_survival(),
        metrics.survival_min
    );
    println!(
        "violations        {} undominated node(s) across {} event(s)",
        metrics.violations_sum, metrics.violated_events
    );
    println!(
        "locality          ≤10% {}, ≤25% {}, ≤50% {}, >50% {}",
        metrics.locality_hist[0],
        metrics.locality_hist[1],
        metrics.locality_hist[2],
        metrics.locality_hist[3]
    );
    println!(
        "size vs baseline  mean {:.3}×, worst {:.3}×",
        metrics.mean_ratio(),
        metrics.ratio_max
    );
    println!(
        "wall per event    mean {:?}, max {:?}",
        metrics.mean_wall(),
        metrics.wall_max
    );
    println!("population        {} alive", engine.population());
    if metrics.invalid_events > 0 {
        return Err(CliError::Runtime(format!(
            "{} events left an invalid CDS",
            metrics.invalid_events
        )));
    }
    Ok(())
}

/// `serve`: the backbone-as-a-service daemon plus its client modes.
///
/// * `serve FILE [--addr H:P] [--m M] [--threads T]` — hold FILE's
///   topology resident behind a JSONL-over-TCP endpoint and serve
///   solve/churn/query/metrics requests until a client sends
///   `{"op":"shutdown"}`.  The bound address is printed first (use port
///   0 to let the OS pick), so scripts can read the ephemeral port.
/// * `serve --connect H:P` — interactive client: one request line in on
///   stdin, one response line out on stdout.
/// * `serve --bench H:P [--clients C] [--requests R] [--churn-every K]`
///   — the in-tree load generator (E21's measuring side).
pub fn serve(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "addr",
            "m",
            "threads",
            "connect",
            "bench",
            "clients",
            "requests",
            "churn-every",
            "side",
        ],
        &[],
    )?;
    if let Some(addr) = args.value("connect") {
        return serve_connect(addr);
    }
    if let Some(addr) = args.value("bench") {
        return serve_bench(addr, &args);
    }
    let udg = load(&args)?;
    let m = parse_m(&args)?;
    let threads: usize = args.parsed_or("threads", mcds_pool::default_parallelism())?;
    if threads == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    let addr = args.value("addr").unwrap_or("127.0.0.1:0");
    let cfg = mcds_serve::ServeConfig {
        radius: udg.radius(),
        m,
        threads,
        ..mcds_serve::ServeConfig::default()
    };
    let server = mcds_serve::Server::bind(addr, cfg, udg.points().to_vec())
        .map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
    let bound = server
        .local_addr()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    // Scripts parse this exact line to learn the ephemeral port; flush
    // it before blocking in the accept loop.
    println!("listening on {bound}");
    use std::io::Write as _;
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    server
        .run()
        .map_err(|e| CliError::Runtime(format!("serve: {e}")))?;
    println!("shutdown complete");
    Ok(())
}

/// The `serve --connect` client loop: stdin request lines to `addr`,
/// response lines to stdout, until EOF or a shutdown acknowledgement.
fn serve_connect(addr: &str) -> Result<(), CliError> {
    let mut client =
        mcds_serve::Client::connect(addr).map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        let n = std::io::BufRead::read_line(&mut stdin.lock(), &mut line)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        if n == 0 {
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = client
            .request(trimmed)
            .map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
        println!("{response}");
        if response == mcds_serve::proto::render_shutdown() {
            return Ok(());
        }
    }
}

/// The `serve --bench` load generator.
fn serve_bench(addr: &str, args: &Args) -> Result<(), CliError> {
    let cfg = mcds_serve::LoadConfig {
        clients: args.parsed_or("clients", 8)?,
        requests: args.parsed_or("requests", 200)?,
        churn_every: args.parsed_or("churn-every", 10)?,
    };
    if cfg.clients == 0 || cfg.requests == 0 {
        return Err(CliError::Usage(
            "serve --bench needs --clients >= 1 and --requests >= 1".into(),
        ));
    }
    let side: f64 = args.parsed_or("side", 6.0)?;
    let report = mcds_serve::run_load(addr, cfg, side)
        .map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
    println!(
        "{} clients x {} requests: {} ok, {} errors",
        cfg.clients,
        cfg.requests,
        report.requests - report.errors,
        report.errors
    );
    println!(
        "wall {:?}  throughput {:.0} req/s  p50 {} us  p99 {} us",
        report.wall,
        report.throughput(),
        report.p50_us,
        report.p99_us
    );
    if report.errors > 0 {
        return Err(CliError::Runtime(format!(
            "{} request(s) failed",
            report.errors
        )));
    }
    Ok(())
}

/// `trace`: inspect a JSONL trace produced by the global `--trace` flag.
///
/// * `trace check FILE` — validate every line against the `mcds-obs`
///   schema (the checker `scripts/verify.sh` runs in CI).
/// * `trace summarize FILE` — aggregate span records by nesting path and
///   print the per-span wall-time breakdown.
pub fn trace(argv: &[String]) -> Result<(), CliError> {
    let verb = argv
        .first()
        .ok_or_else(|| CliError::Usage("trace needs summarize|check FILE.jsonl".into()))?;
    let path = argv
        .get(1)
        .ok_or_else(|| CliError::Usage(format!("trace {verb} needs a FILE.jsonl")))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    let stats = mcds_obs::schema::validate_trace(&text)
        .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    match verb.as_str() {
        "check" => {
            println!(
                "{path}: valid trace ({} spans, {} logs, {} counters, {} gauges, {} hists)",
                stats.spans, stats.logs, stats.counters, stats.gauges, stats.hists
            );
            Ok(())
        }
        "summarize" => {
            let (spans, root_ns) = mcds_obs::schema::summarize_spans(&text)
                .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
            if spans.is_empty() {
                println!("{path}: no span records (was the traced run instrumented?)");
                return Ok(());
            }
            let mut table =
                mcds_bench::Table::new(&["span", "count", "total ms", "mean µs", "share"]);
            let label_width = spans
                .iter()
                .map(|s| 2 * s.depth + last_segment(&s.path).len())
                .max()
                .unwrap_or(0);
            for s in &spans {
                let label = format!(
                    "{:<label_width$}",
                    format!("{}{}", "  ".repeat(s.depth), last_segment(&s.path))
                );
                let share = if root_ns == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}%", 100.0 * s.total_ns as f64 / root_ns as f64)
                };
                table.row(&[
                    label,
                    s.count.to_string(),
                    format!("{:.3}", s.total_ns as f64 / 1e6),
                    format!("{:.1}", s.total_ns as f64 / 1e3 / s.count as f64),
                    share,
                ]);
            }
            // Left-align the span column by padding labels to equal width
            // before the table right-aligns them.
            println!("{path}: span breakdown (share = of root-span wall time)");
            table.print();
            let child_ns: u64 = spans
                .iter()
                .filter(|s| s.depth == 1)
                .map(|s| s.total_ns)
                .sum();
            if root_ns > 0 {
                println!(
                    "root spans total {:.3} ms; depth-1 children cover {:.1}%",
                    root_ns as f64 / 1e6,
                    100.0 * child_ns as f64 / root_ns as f64
                );
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown trace verb `{other}` (want summarize|check)"
        ))),
    }
}

/// The final `/`-separated segment of a span path.
fn last_segment(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn print_report(r: &mcds_maintain::RepairReport) {
    println!(
        "event {:>4}  {:<28} alive {:>4}  cds {:>3} ({:.2}x)  touched {:>3}  {}",
        r.seq,
        format!("{:?}", r.event),
        r.alive,
        r.cds_size,
        r.size_ratio(),
        r.nodes_touched,
        match r.decision {
            mcds_maintain::RepairDecision::Repaired => "repaired".to_string(),
            mcds_maintain::RepairDecision::Recomputed(reason) => format!("recomputed ({reason:?})"),
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mcds_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_stats_solve_roundtrip() {
        let f = tmp("inst1.udg");
        gen(&sv(&[
            "--n",
            "60",
            "--side",
            "4",
            "--seed",
            "3",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        stats(&sv(&[&f])).unwrap();
        solve(&sv(&[&f, "--alg", "all", "--prune"])).unwrap();
        dist(&sv(&[&f])).unwrap();
    }

    #[test]
    fn gen_kinds() {
        for kind in ["uniform", "clustered", "grid", "chain"] {
            let f = tmp(&format!("kind_{kind}.udg"));
            gen(&sv(&["--n", "30", "--side", "5", "--kind", kind, "-o", &f])).unwrap();
        }
        let f = tmp("bad.udg");
        assert!(matches!(
            gen(&sv(&["--kind", "nope", "-o", &f])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn exact_and_verify() {
        let f = tmp("inst2.udg");
        gen(&sv(&[
            "--n",
            "14",
            "--side",
            "2",
            "--seed",
            "5",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        exact(&sv(&[&f])).unwrap();
        // The whole vertex set is always a CDS of a connected instance.
        let all: String = (0..14).map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        verify(&sv(&[&f, "--nodes", &all])).unwrap();
        // A single far node is generally not.
        let r = verify(&sv(&[&f, "--nodes", "0"]));
        // Either it happens to dominate (tiny dense instance) or we get
        // a runtime error; both are legal outcomes of the command.
        if let Err(e) = r {
            assert!(matches!(e, CliError::Runtime(_)));
        }
    }

    #[test]
    fn solve_writes_dot_and_svg() {
        let f = tmp("inst3.udg");
        let d = tmp("inst3.dot");
        let svg = tmp("inst3.svg");
        gen(&sv(&[
            "--n",
            "40",
            "--side",
            "3.5",
            "--seed",
            "9",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        solve(&sv(&[&f, "--dot", &d, "--svg", &svg])).unwrap();
        let dot_text = std::fs::read_to_string(&d).unwrap();
        assert!(dot_text.contains("graph cds"));
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
        assert!(svg_text.contains("#111111")); // dominators present
    }

    #[test]
    fn construct_variants() {
        construct(&sv(&["two-star"])).unwrap();
        construct(&sv(&["three-star", "--eps", "0.01"])).unwrap();
        let f = tmp("chain.udg");
        construct(&sv(&["chain", "--n", "5", "-o", &f])).unwrap();
        let udg = io::load_instance(&f).unwrap();
        assert_eq!(udg.len(), 5 + 18); // set + 3(n+1) packing
        assert!(matches!(
            construct(&sv(&["chain", "--n", "2"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(construct(&sv(&["wat"])), Err(CliError::Usage(_))));
        assert!(matches!(construct(&sv(&[])), Err(CliError::Usage(_))));
    }

    #[test]
    fn analyze_route_broadcast() {
        let f = tmp("inst4.udg");
        gen(&sv(&[
            "--n",
            "50",
            "--side",
            "4",
            "--seed",
            "11",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        analyze(&sv(&[&f])).unwrap();
        route(&sv(&[&f, "--from", "0", "--to", "10", "--alg", "all"])).unwrap();
        broadcast(&sv(&[&f, "--source", "3"])).unwrap();
        assert!(matches!(
            route(&sv(&[&f, "--from", "999"])),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            broadcast(&sv(&[&f, "--source", "999"])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn sweep_csv_identical_across_thread_widths() {
        let f1 = tmp("sweep_t1.csv");
        let f4 = tmp("sweep_t4.csv");
        let base = ["--n", "40", "--side", "4", "--trials", "4", "--seed", "7"];
        let mut a1 = sv(&base);
        a1.extend(sv(&["--threads", "1", "--out", &f1]));
        let mut a4 = sv(&base);
        a4.extend(sv(&["--threads", "4", "--out", &f4]));
        sweep(&a1).unwrap();
        sweep(&a4).unwrap();
        let c1 = std::fs::read_to_string(&f1).unwrap();
        let c4 = std::fs::read_to_string(&f4).unwrap();
        assert!(c1.lines().count() > 1, "sweep produced no rows");
        assert_eq!(c1, c4, "sweep CSV must be byte-identical at any width");
        assert!(matches!(
            sweep(&sv(&["--alg", "nope"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            sweep(&sv(&["--trials", "0"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn solve_fault_tolerant_family_flags() {
        let f = tmp("inst_family.udg");
        gen(&sv(&[
            "--n",
            "50",
            "--side",
            "3.5",
            "--seed",
            "21",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        solve(&sv(&[&f, "--m", "2", "--timings"])).unwrap();
        // --biconnect on an instance with an unavoidable cut vertex is a
        // runtime error, not a crash; on a 2-connected one it succeeds.
        // Either way the command must not panic.
        match solve(&sv(&[&f, "--m", "2", "--biconnect"])) {
            Ok(()) | Err(CliError::Runtime(_)) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(matches!(
            solve(&sv(&[&f, "--m", "5"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            solve(&sv(&[&f, "--m", "0"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn sweep_family_flags() {
        let out = tmp("sweep_family.csv");
        sweep(&sv(&[
            "--alg",
            "greedy",
            "--n",
            "30",
            "--side",
            "3",
            "--trials",
            "3",
            "--seed",
            "7",
            "--m",
            "2",
            "--biconnect",
            "--out",
            &out,
        ]))
        .unwrap();
        let csv = std::fs::read_to_string(&out).unwrap();
        assert!(csv.starts_with("alg,trial,n,size"));
        assert!(matches!(sweep(&sv(&["--m", "4"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn churn_with_fault_injection() {
        churn(&sv(&[
            "--n",
            "60",
            "--side",
            "4",
            "--seed",
            "3",
            "--events",
            "40",
            "--m",
            "2",
            "--fault-every",
            "5",
            "--fault-kill",
            "2",
            "--fault-radius",
            "1.0",
        ]))
        .unwrap();
        assert!(matches!(
            churn(&sv(&["--waypoint", "--fault-every", "2"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            churn(&sv(&["--fault-every", "2", "--fault-kill", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            churn(&sv(&["--fault-every", "2", "--fault-radius", "-1"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn solve_weighted_and_json_flags() {
        let f = tmp("inst_weighted.udg");
        gen(&sv(&[
            "--n",
            "40",
            "--side",
            "3.5",
            "--seed",
            "23",
            "--connected",
            "-o",
            &f,
        ]))
        .unwrap();
        solve(&sv(&[&f, "--weights", "degree"])).unwrap();
        solve(&sv(&[
            &f,
            "--weights",
            "random",
            "--weight-seed",
            "5",
            "--json",
        ]))
        .unwrap();
        solve(&sv(&[&f, "--json", "--alg", "all"])).unwrap();
        assert!(matches!(
            solve(&sv(&[&f, "--weights", "lucky"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn sweep_weighted_runs_and_unit_matches_classic() {
        let f_unit = tmp("sweep_w_unit.csv");
        let f_deg = tmp("sweep_w_deg.csv");
        let base = [
            "--alg", "greedy", "--n", "30", "--side", "3", "--trials", "3", "--seed", "7",
        ];
        let mut a = sv(&base);
        a.extend(sv(&["--weights", "unit", "--out", &f_unit]));
        let mut b = sv(&base);
        b.extend(sv(&["--weights", "degree", "--out", &f_deg]));
        sweep(&a).unwrap();
        sweep(&b).unwrap();
        // An explicit unit scheme must reproduce the classic path's CSV.
        let f_classic = tmp("sweep_w_classic.csv");
        let mut c = sv(&base);
        c.extend(sv(&["--out", &f_classic]));
        sweep(&c).unwrap();
        assert_eq!(
            std::fs::read_to_string(&f_unit).unwrap(),
            std::fs::read_to_string(&f_classic).unwrap()
        );
        assert!(matches!(
            sweep(&sv(&["--weights", "nope"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_client_modes_reject_bad_input() {
        assert!(matches!(
            serve(&sv(&["--bench", "127.0.0.1:1", "--clients", "0"])),
            Err(CliError::Usage(_))
        ));
        // Nothing listens on a fresh ephemeral-range port we never bound.
        assert!(matches!(
            serve(&sv(&["--connect", "127.0.0.1:9"])),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(serve(&sv(&[])), Err(CliError::Usage(_))));
    }

    #[test]
    fn solve_unknown_alg_is_usage_error() {
        let f = tmp("inst_unknown_alg.udg");
        gen(&sv(&["--n", "20", "--side", "3", "--seed", "2", "-o", &f])).unwrap();
        match solve(&sv(&[&f, "--alg", "bogus"])) {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("bogus"));
                assert!(
                    msg.contains("greedy"),
                    "message should list valid names: {msg}"
                );
            }
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_runtime_error() {
        assert!(matches!(
            stats(&sv(&["/nonexistent/x.udg"])),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(stats(&sv(&[])), Err(CliError::Usage(_))));
    }
}
