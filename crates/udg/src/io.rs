//! Plain-text instance format.
//!
//! ```text
//! # optional comment lines
//! udg <n> <radius>
//! <x_0> <y_0>
//! …
//! <x_{n-1}> <y_{n-1}>
//! ```
//!
//! Coordinates round-trip exactly (written with `{:?}`, the shortest
//! representation that parses back to the same `f64`).

use mcds_geom::Point;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use crate::Udg;

/// Error parsing an instance file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseInstanceError {
    line: usize,
    kind: String,
}

impl ParseInstanceError {
    fn new(line: usize, kind: impl Into<String>) -> Self {
        ParseInstanceError {
            line,
            kind: kind.into(),
        }
    }

    /// 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseInstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl Error for ParseInstanceError {}

/// Serializes an instance to the text format.
///
/// ```
/// use mcds_geom::Point;
/// use mcds_udg::{io, Udg};
/// let udg = Udg::build(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.25)]);
/// let text = io::write_instance(&udg);
/// let back = io::parse_instance(&text).unwrap();
/// assert_eq!(back.points(), udg.points());
/// ```
pub fn write_instance(udg: &Udg) -> String {
    let mut out = String::new();
    out.push_str("# mcds unit-disk-graph instance\n");
    out.push_str(&format!("udg {} {:?}\n", udg.len(), udg.radius()));
    for p in udg.points() {
        out.push_str(&format!("{:?} {:?}\n", p.x, p.y));
    }
    out
}

/// Parses the text format back into a [`Udg`] (the graph is rebuilt).
///
/// # Errors
///
/// Returns [`ParseInstanceError`] on malformed headers, non-numeric
/// coordinates, node-count mismatches, or non-finite values.
pub fn parse_instance(text: &str) -> Result<Udg, ParseInstanceError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (hline, header) = lines
        .next()
        .ok_or_else(|| ParseInstanceError::new(0, "empty instance"))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("udg") {
        return Err(ParseInstanceError::new(
            hline,
            "expected `udg <n> <radius>` header",
        ));
    }
    let n: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseInstanceError::new(hline, "bad node count"))?;
    let radius: f64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|r: &f64| r.is_finite() && *r > 0.0)
        .ok_or_else(|| ParseInstanceError::new(hline, "bad radius"))?;
    if parts.next().is_some() {
        return Err(ParseInstanceError::new(hline, "trailing tokens in header"));
    }

    let mut pts = Vec::with_capacity(n);
    for (lno, line) in lines {
        if pts.len() == n {
            return Err(ParseInstanceError::new(lno, "more points than declared"));
        }
        let mut nums = line.split_whitespace();
        let x: f64 = nums
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseInstanceError::new(lno, "bad x coordinate"))?;
        let y: f64 = nums
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseInstanceError::new(lno, "bad y coordinate"))?;
        if nums.next().is_some() {
            return Err(ParseInstanceError::new(
                lno,
                "trailing tokens after coordinates",
            ));
        }
        if !x.is_finite() || !y.is_finite() {
            return Err(ParseInstanceError::new(lno, "non-finite coordinate"));
        }
        pts.push(Point::new(x, y));
    }
    if pts.len() != n {
        return Err(ParseInstanceError::new(
            0,
            format!("declared {n} points but found {}", pts.len()),
        ));
    }
    Ok(Udg::with_radius(pts, radius))
}

/// Writes an instance to a file.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn save_instance<P: AsRef<Path>>(udg: &Udg, path: P) -> std::io::Result<()> {
    fs::write(path, write_instance(udg))
}

/// Loads an instance from a file.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read, or a boxed
/// [`ParseInstanceError`] if its contents are malformed.
pub fn load_instance<P: AsRef<Path>>(path: P) -> Result<Udg, Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    Ok(parse_instance(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Udg {
        Udg::with_radius(
            vec![
                Point::new(0.1, 0.2),
                Point::new(0.30000000000000004, -1.5),
                Point::new(2.0, 2.0),
            ],
            1.25,
        )
    }

    #[test]
    fn roundtrip_exact() {
        let udg = sample();
        let text = write_instance(&udg);
        let back = parse_instance(&text).unwrap();
        assert_eq!(back.points(), udg.points());
        assert_eq!(back.radius(), udg.radius());
        assert_eq!(back.graph(), udg.graph());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hi\n\nudg 1 1.0\n# mid comment\n 0.5 0.5 \n";
        let udg = parse_instance(text).unwrap();
        assert_eq!(udg.len(), 1);
        assert_eq!(udg.points()[0], Point::new(0.5, 0.5));
    }

    #[test]
    fn header_errors() {
        assert!(parse_instance("").is_err());
        assert!(parse_instance("nope 3 1.0").is_err());
        assert!(parse_instance("udg x 1.0").is_err());
        assert!(parse_instance("udg 1 0.0\n0 0").is_err());
        assert!(parse_instance("udg 1 1.0 extra\n0 0").is_err());
    }

    #[test]
    fn body_errors_carry_line_numbers() {
        let e = parse_instance("udg 2 1.0\n0 0\nfoo 1").unwrap_err();
        assert_eq!(e.line(), 3);
        assert!(e.to_string().contains("bad x"));
        let e2 = parse_instance("udg 2 1.0\n0 0").unwrap_err();
        assert!(e2.to_string().contains("declared 2"));
        let e3 = parse_instance("udg 1 1.0\n0 0\n1 1").unwrap_err();
        assert!(e3.to_string().contains("more points"));
        let e4 = parse_instance("udg 1 1.0\n0 0 0").unwrap_err();
        assert!(e4.to_string().contains("trailing"));
        let e5 = parse_instance("udg 1 1.0\ninf 0").unwrap_err();
        assert!(e5.to_string().contains("non-finite"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mcds_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.udg");
        let udg = sample();
        save_instance(&udg, &path).unwrap();
        let back = load_instance(&path).unwrap();
        assert_eq!(back.points(), udg.points());
        fs::remove_file(path).ok();
    }
}
