//! The [`Udg`] type: points plus their induced unit-disk graph.

use mcds_geom::{grid::GridIndex, Point};
use mcds_graph::Graph;
use mcds_pool::ThreadPool;
use std::fmt;

/// Below this node count the parallel bucket pass is not worth the
/// fan-out overhead; construction stays on the calling thread.
const PARALLEL_BUILD_THRESHOLD: usize = 4096;

/// A unit-disk-graph instance: a planar point set and the undirected graph
/// it induces under a fixed communication radius.
///
/// The paper normalizes the transmission radius to one; [`Udg::build`] uses
/// that convention, and [`Udg::with_radius`] supports other radii (the
/// instance is equivalent to a unit-radius instance with coordinates
/// scaled by `1/r`).
///
/// The point set and graph are immutable after construction, so node `i`
/// of the graph always corresponds to `points()[i]`.
#[derive(Clone)]
pub struct Udg {
    points: Vec<Point>,
    radius: f64,
    graph: Graph,
}

impl Udg {
    /// Builds the unit-radius UDG over `points` in expected `O(n + m)`
    /// using a spatial grid.
    ///
    /// # Panics
    ///
    /// Panics if any point has non-finite coordinates.
    pub fn build(points: Vec<Point>) -> Self {
        Udg::with_radius(points, 1.0)
    }

    /// Builds the disk graph with communication radius `radius`.
    ///
    /// Large instances use a parallel bucket pass over the process-wide
    /// pool ([`mcds_pool::global`]); since that pool defaults to one
    /// thread, library users get sequential construction unless a front
    /// end opted in with `--threads`.  The produced graph is identical
    /// either way (see [`Udg::with_radius_pooled`]).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite, or if any
    /// point has non-finite coordinates.
    pub fn with_radius(points: Vec<Point>, radius: f64) -> Self {
        let pool = mcds_pool::global::pool();
        Udg::with_radius_pooled(points, radius, &pool)
    }

    /// Builds the disk graph with communication radius `radius`, running
    /// the edge pass on `pool`.
    ///
    /// Points are hashed into a uniform grid of cell side `radius`, so
    /// each node tests only the 3×3 block of cells around it — expected
    /// `O(n + m)` instead of the naive `Θ(n²)`.  When `pool` is wider
    /// than one thread and the instance is large enough to amortize the
    /// fan-out, node ranges are scanned concurrently; each range reports
    /// only its *forward* pairs `(i, j), i < j`, and ranges are collected
    /// in index order, so the edge set — and therefore the normalized
    /// [`Graph`] — is identical to the sequential build.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite, or if any
    /// point has non-finite coordinates.
    pub fn with_radius_pooled(points: Vec<Point>, radius: f64, pool: &ThreadPool) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "communication radius must be positive and finite, got {radius}"
        );
        let graph = if points.is_empty() {
            Graph::empty(0)
        } else {
            let index = GridIndex::build(&points, radius);
            if pool.threads() > 1 && points.len() >= PARALLEL_BUILD_THRESHOLD {
                Graph::from_edges(
                    points.len(),
                    parallel_close_pairs(&points, &index, radius, pool),
                )
            } else {
                Graph::from_edges(points.len(), index.close_pairs(radius))
            }
        };
        Udg {
            points,
            radius,
            graph,
        }
    }

    /// Builds the UDG by brute force (`O(n²)`), as a reference for tests.
    pub fn build_naive(points: Vec<Point>, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "communication radius must be positive and finite, got {radius}"
        );
        let r_sq = radius * radius + mcds_geom::EPS;
        let mut edges = Vec::new();
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if points[i].dist_sq(points[j]) <= r_sq {
                    edges.push((i, j));
                }
            }
        }
        let graph = Graph::from_edges(points.len(), edges);
        Udg {
            points,
            radius,
            graph,
        }
    }

    /// The node coordinates; node `i` of [`Udg::graph`] sits at index `i`.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The communication radius used to build the graph.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The induced communication topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the instance has no nodes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sub-instance restricted to `keep` (sorted, deduplicated), with
    /// the graph rebuilt over the surviving points.
    ///
    /// Used to extract giant components and to shrink instances for exact
    /// solvers.
    pub fn restricted_to(&self, keep: &[usize]) -> Udg {
        let keep = mcds_graph::node_set(keep.iter().copied());
        let pts: Vec<Point> = keep.iter().map(|&i| self.points[i]).collect();
        Udg::with_radius(pts, self.radius)
    }

    /// Consumes the instance, returning its points.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

/// The disk-graph edge set via concurrent scans of node ranges.
///
/// Every node `i` queries its 3×3 grid neighborhood and keeps the forward
/// pairs `(i, j), i < j`, so each edge is reported exactly once and no
/// cross-range coordination is needed.  `parallel_map` returns the ranges
/// in index order, making the concatenated edge list a pure function of
/// the input — independent of thread count and scheduling.
fn parallel_close_pairs(
    points: &[Point],
    index: &GridIndex,
    radius: f64,
    pool: &ThreadPool,
) -> Vec<(usize, usize)> {
    // ~4 ranges per worker so stolen ranges rebalance skewed densities.
    let chunk = points
        .len()
        .div_ceil(pool.threads() * 4)
        .max(PARALLEL_BUILD_THRESHOLD / 8);
    let ranges: Vec<std::ops::Range<usize>> = (0..points.len())
        .step_by(chunk)
        .map(|lo| lo..(lo + chunk).min(points.len()))
        .collect();
    pool.parallel_map(ranges, |_, range| {
        let mut pairs = Vec::new();
        for i in range {
            index.for_each_within(points[i], radius, |j| {
                if j > i {
                    pairs.push((i, j));
                }
            });
        }
        pairs
    })
    .into_iter()
    .flatten()
    .collect()
}

impl fmt::Debug for Udg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Udg(n={}, m={}, r={})",
            self.points.len(),
            self.graph.num_edges(),
            self.radius
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * side, next() * side))
            .collect()
    }

    #[test]
    fn grid_matches_naive_construction() {
        for seed in [3u64, 11, 42] {
            let pts = pseudo_points(180, 4.5, seed);
            let fast = Udg::build(pts.clone());
            let slow = Udg::build_naive(pts, 1.0);
            assert_eq!(fast.graph(), slow.graph(), "seed {seed}");
        }
    }

    #[test]
    fn radius_scaling_equivalence() {
        // Scaling coordinates by r and using radius r yields the same graph.
        let pts = pseudo_points(100, 3.0, 7);
        let unit = Udg::build(pts.clone());
        let scaled: Vec<Point> = pts.iter().map(|&p| p * 2.5).collect();
        let big = Udg::with_radius(scaled, 2.5);
        assert_eq!(unit.graph(), big.graph());
    }

    #[test]
    fn empty_and_singleton() {
        let e = Udg::build(Vec::new());
        assert!(e.is_empty());
        assert_eq!(e.graph().num_nodes(), 0);
        let s = Udg::build(vec![Point::ORIGIN]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.graph().num_edges(), 0);
    }

    #[test]
    fn boundary_distance_is_adjacent() {
        // Distance exactly 1 is an edge (closed disk semantics).
        let udg = Udg::build(vec![Point::ORIGIN, Point::new(1.0, 0.0)]);
        assert_eq!(udg.graph().num_edges(), 1);
        let udg2 = Udg::build(vec![Point::ORIGIN, Point::new(1.0 + 1e-6, 0.0)]);
        assert_eq!(udg2.graph().num_edges(), 0);
    }

    #[test]
    fn restriction_keeps_geometry() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(5.0, 5.0),
        ];
        let udg = Udg::build(pts);
        let sub = udg.restricted_to(&[0, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.graph().num_edges(), 1);
        let sub2 = udg.restricted_to(&[2]);
        assert_eq!(sub2.len(), 1);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn zero_radius_rejected() {
        let _ = Udg::with_radius(vec![Point::ORIGIN], 0.0);
    }

    #[test]
    fn debug_contains_sizes() {
        let udg = Udg::build(vec![Point::ORIGIN, Point::new(0.5, 0.0)]);
        let s = format!("{udg:?}");
        assert!(s.contains("n=2"));
        assert!(s.contains("m=1"));
    }
}
