//! Seedable instance generators.
//!
//! All generators take an explicit `&mut impl Rng`, so experiments are
//! reproducible from a seed.  The conventional experimental setup in the
//! CDS literature — and the one our harness uses — scatters `n` nodes
//! uniformly in an `L × L` square and keeps connected instances.

use mcds_geom::{Aabb, Point};
use mcds_graph::traversal::largest_component;
use mcds_rng::Rng;

use crate::Udg;

/// `n` points uniform in the axis-aligned box `region`.
pub fn uniform_in_box<R: Rng + ?Sized>(rng: &mut R, n: usize, region: Aabb) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(region.min().x..=region.max().x),
                rng.gen_range(region.min().y..=region.max().y),
            )
        })
        .collect()
}

/// `n` points uniform in the `side × side` square anchored at the origin.
pub fn uniform_in_square<R: Rng + ?Sized>(rng: &mut R, n: usize, side: f64) -> Vec<Point> {
    uniform_in_box(rng, n, Aabb::square(side))
}

/// `n` points uniform in the disk of radius `r` centered at `center`
/// (by rejection from the bounding square; ≈ 27% overhead).
pub fn uniform_in_disk<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    center: Point,
    r: f64,
) -> Vec<Point> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let p = Point::new(rng.gen_range(-r..=r), rng.gen_range(-r..=r));
        if p.norm_sq() <= r * r {
            out.push(center + p);
        }
    }
    out
}

/// Clustered deployment: `clusters` cluster centers uniform in the square,
/// each with `per_cluster` members Gaussian-ish scattered (sum of two
/// uniforms) at scale `spread`.
///
/// Models the "hotspot" topologies common in sensor-network evaluations;
/// clustered instances have small MISs relative to `n` and stress the
/// connector phase.
pub fn clustered<R: Rng + ?Sized>(
    rng: &mut R,
    clusters: usize,
    per_cluster: usize,
    side: f64,
    spread: f64,
) -> Vec<Point> {
    let centers = uniform_in_square(rng, clusters, side);
    let mut out = Vec::with_capacity(clusters * per_cluster);
    for &c in &centers {
        for _ in 0..per_cluster {
            let dx = (rng.gen_range(-1.0..=1.0) + rng.gen_range(-1.0..=1.0)) * spread / 2.0;
            let dy = (rng.gen_range(-1.0..=1.0) + rng.gen_range(-1.0..=1.0)) * spread / 2.0;
            out.push(c + Point::new(dx, dy));
        }
    }
    out
}

/// A `rows × cols` grid with spacing `pitch`, each point jittered uniformly
/// by up to `jitter` in each coordinate.
///
/// With `pitch ≤ 1` and small jitter the instance is connected by
/// construction; it models engineered (mesh) deployments.
pub fn perturbed_grid<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    pitch: f64,
    jitter: f64,
) -> Vec<Point> {
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let base = Point::new(c as f64 * pitch, r as f64 * pitch);
            let j = Point::new(
                rng.gen_range(-jitter..=jitter),
                rng.gen_range(-jitter..=jitter),
            );
            out.push(base + j);
        }
    }
    out
}

/// `n` collinear points with consecutive spacing `spacing` along the
/// x-axis — the backbone of the paper's Fig.-2 construction and the
/// worst-known family for independence packing.
pub fn linear_chain(n: usize, spacing: f64) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(i as f64 * spacing, 0.0))
        .collect()
}

/// `n` points uniform in the annulus between radii `r_in` and `r_out`
/// around `center` — a "hole" topology that stretches hop distances and
/// stresses the connector phase (backbones must route around the void).
///
/// # Panics
///
/// Panics unless `0 ≤ r_in < r_out` and both are finite.
pub fn uniform_in_annulus<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    center: Point,
    r_in: f64,
    r_out: f64,
) -> Vec<Point> {
    assert!(
        r_in.is_finite() && r_out.is_finite() && 0.0 <= r_in && r_in < r_out,
        "need 0 <= r_in < r_out, got {r_in}..{r_out}"
    );
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let p = Point::new(rng.gen_range(-r_out..=r_out), rng.gen_range(-r_out..=r_out));
        let d2 = p.norm_sq();
        if d2 <= r_out * r_out && d2 >= r_in * r_in {
            out.push(center + p);
        }
    }
    out
}

/// `n` points uniform in a `length × width` corridor — the
/// maximum-diameter deployment at a given area, the regime where the
/// paper's worst-case chain family lives.
pub fn corridor<R: Rng + ?Sized>(rng: &mut R, n: usize, length: f64, width: f64) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..=length), rng.gen_range(0.0..=width)))
        .collect()
}

/// Generates connected uniform instances: samples up to `max_tries` point
/// sets of `n` uniform points in a `side × side` square and returns the
/// first whose UDG is connected.
///
/// Returns `None` if no try produced a connected instance — callers should
/// either increase density or fall back to [`giant_component_instance`].
pub fn connected_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    side: f64,
    max_tries: usize,
) -> Option<Udg> {
    for _ in 0..max_tries {
        let udg = Udg::build(uniform_in_square(rng, n, side));
        if udg.graph().is_connected() && !udg.is_empty() {
            return Some(udg);
        }
    }
    None
}

/// Samples one uniform instance and restricts it to its largest connected
/// component.
///
/// Unlike [`connected_uniform`] this always succeeds (for `n ≥ 1`), at the
/// cost of a variable final node count; the standard trick for sparse
/// regimes.
pub fn giant_component_instance<R: Rng + ?Sized>(rng: &mut R, n: usize, side: f64) -> Udg {
    let udg = Udg::build(uniform_in_square(rng, n, side));
    let giant = largest_component(udg.graph());
    udg.restricted_to(&giant)
}

/// The side length of the square in which `n` uniform nodes have expected
/// average degree ≈ `target_degree` (ignoring boundary effects):
/// `E[deg] ≈ (n−1)·π / side²`.
pub fn side_for_avg_degree(n: usize, target_degree: f64) -> f64 {
    assert!(target_degree > 0.0, "target degree must be positive");
    assert!(n >= 2, "need at least two nodes for a meaningful degree");
    (((n - 1) as f64) * std::f64::consts::PI / target_degree).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_rng::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_points_stay_in_region() {
        let mut rng = StdRng::seed_from_u64(1);
        let region = Aabb::square(7.0);
        for p in uniform_in_box(&mut rng, 500, region) {
            assert!(region.contains(p));
        }
    }

    #[test]
    fn disk_points_stay_in_disk() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Point::new(3.0, -1.0);
        for p in uniform_in_disk(&mut rng, 300, c, 2.0) {
            assert!(p.dist(c) <= 2.0 + 1e-12);
        }
    }

    #[test]
    fn generators_are_deterministic_by_seed() {
        let a = uniform_in_square(&mut StdRng::seed_from_u64(9), 50, 5.0);
        let b = uniform_in_square(&mut StdRng::seed_from_u64(9), 50, 5.0);
        assert_eq!(a, b);
        let c = uniform_in_square(&mut StdRng::seed_from_u64(10), 50, 5.0);
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = clustered(&mut rng, 4, 10, 10.0, 0.5);
        assert_eq!(pts.len(), 40);
    }

    #[test]
    fn perturbed_grid_is_connected_at_tight_pitch() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = perturbed_grid(&mut rng, 6, 6, 0.7, 0.05);
        assert_eq!(pts.len(), 36);
        assert!(Udg::build(pts).graph().is_connected());
    }

    #[test]
    fn linear_chain_shape() {
        let pts = linear_chain(5, 1.0);
        assert_eq!(pts.len(), 5);
        let udg = Udg::build(pts);
        // Consecutive spacing exactly 1: a path graph.
        assert_eq!(udg.graph().num_edges(), 4);
        assert_eq!(udg.graph().max_degree(), 2);
        assert!(linear_chain(0, 1.0).is_empty());
    }

    #[test]
    fn connected_uniform_dense_succeeds() {
        let mut rng = StdRng::seed_from_u64(5);
        let udg = connected_uniform(&mut rng, 60, 3.0, 50).expect("dense instance");
        assert!(udg.graph().is_connected());
        assert_eq!(udg.len(), 60);
    }

    #[test]
    fn connected_uniform_impossible_returns_none() {
        let mut rng = StdRng::seed_from_u64(6);
        // 2 nodes in a huge square: essentially never connected.
        assert!(connected_uniform(&mut rng, 2, 1000.0, 5).is_none());
    }

    #[test]
    fn giant_component_is_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        let udg = giant_component_instance(&mut rng, 100, 12.0);
        assert!(udg.graph().is_connected());
        assert!(!udg.is_empty());
        assert!(udg.len() <= 100);
    }

    #[test]
    fn annulus_points_respect_radii() {
        let mut rng = StdRng::seed_from_u64(21);
        let c = Point::new(1.0, -2.0);
        for p in uniform_in_annulus(&mut rng, 200, c, 2.0, 4.0) {
            let d = p.dist(c);
            assert!((2.0..=4.0 + 1e-12).contains(&d), "distance {d}");
        }
    }

    #[test]
    #[should_panic(expected = "r_in < r_out")]
    fn annulus_rejects_bad_radii() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = uniform_in_annulus(&mut rng, 1, Point::ORIGIN, 3.0, 2.0);
    }

    #[test]
    fn corridor_is_long_and_thin() {
        let mut rng = StdRng::seed_from_u64(22);
        let pts = corridor(&mut rng, 300, 30.0, 1.5);
        for p in &pts {
            assert!((0.0..=30.0).contains(&p.x));
            assert!((0.0..=1.5).contains(&p.y));
        }
        // Dense corridors connect and have large diameter.
        let udg = Udg::build(pts);
        let giant = mcds_graph::traversal::largest_component(udg.graph());
        let sub = udg.restricted_to(&giant);
        let diam = mcds_graph::traversal::diameter(sub.graph()).unwrap();
        assert!(diam >= 15, "corridor diameter {diam} too small");
    }

    #[test]
    fn side_for_avg_degree_hits_target_roughly() {
        let n = 400;
        let target = 10.0;
        let side = side_for_avg_degree(n, target);
        let mut rng = StdRng::seed_from_u64(8);
        let udg = Udg::build(uniform_in_square(&mut rng, n, side));
        let avg = udg.graph().avg_degree();
        // Boundary effects push the realized degree below the target;
        // accept a generous band.
        assert!(avg > target * 0.5 && avg < target * 1.5, "avg degree {avg}");
    }
}
