//! Node mobility — the "ad hoc" in wireless ad hoc networks.
//!
//! The literature the paper builds on (\[1\] is titled *"Message-Optimal
//! Connected Dominating Sets in **Mobile** Ad Hoc Networks"*) cares about
//! topologies that change as nodes move.  This module provides the
//! standard **random-waypoint** model: each node picks a waypoint
//! uniformly in the region, travels toward it at its speed, pauses, and
//! repeats.  Backbone-maintenance experiments sample the walk at epochs
//! and measure how much of the CDS survives each step.

use mcds_geom::{Aabb, Point};
use mcds_rng::Rng;

use crate::Udg;

/// A random-waypoint mobility simulation over a fixed node population.
///
/// ```
/// use mcds_geom::Aabb;
/// use mcds_udg::mobility::RandomWaypoint;
/// use mcds_rng::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut walk = RandomWaypoint::new(&mut rng, 40, Aabb::square(6.0), (0.5, 1.5), 0.2);
/// walk.step(&mut rng, 1.0);
/// let topology = walk.snapshot();      // rebuild the UDG after motion
/// assert_eq!(topology.len(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    region: Aabb,
    positions: Vec<Point>,
    waypoints: Vec<Point>,
    speeds: Vec<f64>,
    speed_range: (f64, f64),
    pause_left: Vec<f64>,
    pause: f64,
}

impl RandomWaypoint {
    /// Starts a walk with `n` nodes uniform in `region`, speeds uniform
    /// in `speed_range`, and `pause` time units of rest at each waypoint.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty/non-positive or `pause` is
    /// negative.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        n: usize,
        region: Aabb,
        speed_range: (f64, f64),
        pause: f64,
    ) -> Self {
        let (lo, hi) = speed_range;
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi,
            "need 0 < min_speed <= max_speed, got {lo}..{hi}"
        );
        assert!(pause >= 0.0 && pause.is_finite(), "pause must be ≥ 0");
        let positions: Vec<Point> = (0..n).map(|_| Self::sample_point(rng, &region)).collect();
        let waypoints: Vec<Point> = (0..n).map(|_| Self::sample_point(rng, &region)).collect();
        let speeds: Vec<f64> = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
        RandomWaypoint {
            region,
            positions,
            waypoints,
            speeds,
            speed_range,
            pause_left: vec![0.0; n],
            pause,
        }
    }

    fn sample_point<R: Rng + ?Sized>(rng: &mut R, region: &Aabb) -> Point {
        Point::new(
            rng.gen_range(region.min().x..=region.max().x),
            rng.gen_range(region.min().y..=region.max().y),
        )
    }

    /// Current node positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The deployment region.
    pub fn region(&self) -> Aabb {
        self.region
    }

    /// Advances the walk by `dt` time units.
    ///
    /// Each node moves toward its waypoint at its current leg speed; on
    /// arrival it pauses, then draws a fresh waypoint *and a fresh speed*
    /// (the standard random-waypoint model resamples speed per leg — a
    /// node is not stuck with its deployment-time draw forever).
    /// Movement within one `dt` is resolved exactly, including waypoint
    /// arrivals mid-step, and `pause_left` never goes negative however
    /// the step boundaries land relative to pause expiries.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "dt must be ≥ 0");
        for i in 0..self.positions.len() {
            let mut budget = dt;
            while budget > 0.0 {
                if self.pause_left[i] > 0.0 {
                    let rest = self.pause_left[i].min(budget);
                    // Clamp: `a - min(a, b)` can leave negative dust in
                    // floating point, which would freeze the node (the
                    // `> 0.0` gate above would keep failing while the
                    // pause never finishes draining).
                    self.pause_left[i] = (self.pause_left[i] - rest).max(0.0);
                    budget -= rest;
                    continue;
                }
                let to_go = self.positions[i].dist(self.waypoints[i]);
                let reach = self.speeds[i] * budget;
                if reach < to_go {
                    let dir = (self.waypoints[i] - self.positions[i])
                        .normalized()
                        .expect("to_go > 0");
                    self.positions[i] += dir * reach;
                    budget = 0.0;
                } else {
                    // Arrive, start pause, pick the next leg's waypoint
                    // and speed.
                    self.positions[i] = self.waypoints[i];
                    budget -= to_go / self.speeds[i];
                    self.pause_left[i] = self.pause;
                    self.waypoints[i] = Self::sample_point(rng, &self.region);
                    let (lo, hi) = self.speed_range;
                    self.speeds[i] = rng.gen_range(lo..=hi);
                    // A zero-length leg (degenerate region: the fresh
                    // waypoint is where the node already stands) with
                    // zero pause would consume no budget and spin this
                    // loop forever; the node has nowhere to go, so the
                    // rest of the step is a no-op.
                    if self.pause == 0.0 && self.positions[i] == self.waypoints[i] {
                        break;
                    }
                }
            }
        }
    }

    /// Snapshot of the current communication topology (unit radius).
    pub fn snapshot(&self) -> Udg {
        Udg::build(self.positions.clone())
    }
}

/// The fraction of `old` nodes that survive into `new` — the backbone
/// *stability* between epochs (1.0 = unchanged).
pub fn survival_fraction(old: &[usize], new: &[usize]) -> f64 {
    if old.is_empty() {
        return 1.0;
    }
    let new_set: std::collections::BTreeSet<usize> = new.iter().copied().collect();
    old.iter().filter(|v| new_set.contains(v)).count() as f64 / old.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_rng::rngs::StdRng;
    use mcds_rng::SeedableRng;

    #[test]
    fn nodes_stay_in_region() {
        let mut rng = StdRng::seed_from_u64(1);
        let region = Aabb::square(8.0);
        let mut walk = RandomWaypoint::new(&mut rng, 60, region, (0.5, 2.0), 0.3);
        for _ in 0..50 {
            walk.step(&mut rng, 0.7);
            for p in walk.positions() {
                assert!(region.contains(*p), "{p} escaped the region");
            }
        }
    }

    #[test]
    fn movement_is_bounded_by_speed() {
        let mut rng = StdRng::seed_from_u64(2);
        let region = Aabb::square(20.0);
        let mut walk = RandomWaypoint::new(&mut rng, 30, region, (1.0, 1.5), 0.0);
        let before = walk.positions().to_vec();
        let dt = 0.5;
        walk.step(&mut rng, dt);
        for (a, b) in before.iter().zip(walk.positions()) {
            // Max distance = max_speed * dt (waypoint turns shorten it).
            assert!(a.dist(*b) <= 1.5 * dt + 1e-9);
        }
    }

    #[test]
    fn pause_holds_nodes_still() {
        let mut rng = StdRng::seed_from_u64(3);
        let region = Aabb::square(2.0);
        // Speed so high every node reaches its waypoint immediately, then
        // pauses for a long time.
        let mut walk = RandomWaypoint::new(&mut rng, 10, region, (1000.0, 1000.0), 100.0);
        walk.step(&mut rng, 1.0); // everyone arrives and starts pausing
        let frozen = walk.positions().to_vec();
        walk.step(&mut rng, 1.0);
        assert_eq!(frozen, walk.positions());
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut walk = RandomWaypoint::new(&mut rng, 20, Aabb::square(5.0), (1.0, 2.0), 0.1);
        let before = walk.positions().to_vec();
        walk.step(&mut rng, 0.0);
        assert_eq!(before, walk.positions());
    }

    #[test]
    fn snapshot_matches_positions() {
        let mut rng = StdRng::seed_from_u64(5);
        let walk = RandomWaypoint::new(&mut rng, 15, Aabb::square(4.0), (1.0, 1.0), 0.0);
        let udg = walk.snapshot();
        assert_eq!(udg.points(), walk.positions());
    }

    #[test]
    fn survival_fraction_cases() {
        assert_eq!(survival_fraction(&[], &[1, 2]), 1.0);
        assert_eq!(survival_fraction(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(survival_fraction(&[1, 2], &[]), 0.0);
        assert!((survival_fraction(&[1, 2, 3, 4], &[2, 4, 9]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speeds_are_redrawn_per_leg() {
        let mut rng = StdRng::seed_from_u64(7);
        // Tiny region + high speeds: every step crosses many waypoints.
        let mut walk = RandomWaypoint::new(&mut rng, 5, Aabb::square(1.0), (5.0, 50.0), 0.0);
        let initial = walk.speeds.clone();
        walk.step(&mut rng, 10.0);
        assert_ne!(
            initial, walk.speeds,
            "arrivals must resample leg speeds, not reuse the deployment draw"
        );
        let (lo, hi) = walk.speed_range;
        for s in &walk.speeds {
            assert!((lo..=hi).contains(s), "leg speed {s} outside {lo}..={hi}");
        }
    }

    #[test]
    fn degenerate_region_with_zero_pause_terminates() {
        let mut rng = StdRng::seed_from_u64(8);
        // A zero-area region: every waypoint equals every position, so a
        // leg consumes no time; step() must still return.
        let point_region = Aabb::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        let mut walk = RandomWaypoint::new(&mut rng, 3, point_region, (1.0, 1.0), 0.0);
        walk.step(&mut rng, 5.0);
        for p in walk.positions() {
            assert_eq!(*p, Point::new(1.0, 1.0));
        }
    }

    #[test]
    fn pause_left_never_goes_negative() {
        let mut rng = StdRng::seed_from_u64(9);
        // Fractional pause drained by many ragged step boundaries; the
        // remaining pause must stay in [0, pause] throughout.
        let mut walk = RandomWaypoint::new(&mut rng, 8, Aabb::square(3.0), (0.5, 2.0), 0.1);
        for _ in 0..400 {
            walk.step(&mut rng, 0.037);
            for (i, left) in walk.pause_left.iter().enumerate() {
                assert!(
                    (0.0..=walk.pause).contains(left),
                    "node {i}: pause_left = {left} outside [0, {}]",
                    walk.pause
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "min_speed")]
    fn bad_speed_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = RandomWaypoint::new(&mut rng, 1, Aabb::square(1.0), (2.0, 1.0), 0.0);
    }
}
