//! Node mobility — the "ad hoc" in wireless ad hoc networks.
//!
//! The literature the paper builds on (\[1\] is titled *"Message-Optimal
//! Connected Dominating Sets in **Mobile** Ad Hoc Networks"*) cares about
//! topologies that change as nodes move.  This module provides the
//! standard **random-waypoint** model: each node picks a waypoint
//! uniformly in the region, travels toward it at its speed, pauses, and
//! repeats.  Backbone-maintenance experiments sample the walk at epochs
//! and measure how much of the CDS survives each step.

use mcds_geom::{Aabb, Point};
use rand::Rng;

use crate::Udg;

/// A random-waypoint mobility simulation over a fixed node population.
///
/// ```
/// use mcds_geom::Aabb;
/// use mcds_udg::mobility::RandomWaypoint;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut walk = RandomWaypoint::new(&mut rng, 40, Aabb::square(6.0), (0.5, 1.5), 0.2);
/// walk.step(&mut rng, 1.0);
/// let topology = walk.snapshot();      // rebuild the UDG after motion
/// assert_eq!(topology.len(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    region: Aabb,
    positions: Vec<Point>,
    waypoints: Vec<Point>,
    speeds: Vec<f64>,
    pause_left: Vec<f64>,
    pause: f64,
}

impl RandomWaypoint {
    /// Starts a walk with `n` nodes uniform in `region`, speeds uniform
    /// in `speed_range`, and `pause` time units of rest at each waypoint.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty/non-positive or `pause` is
    /// negative.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        n: usize,
        region: Aabb,
        speed_range: (f64, f64),
        pause: f64,
    ) -> Self {
        let (lo, hi) = speed_range;
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi,
            "need 0 < min_speed <= max_speed, got {lo}..{hi}"
        );
        assert!(pause >= 0.0 && pause.is_finite(), "pause must be ≥ 0");
        let positions: Vec<Point> = (0..n).map(|_| Self::sample_point(rng, &region)).collect();
        let waypoints: Vec<Point> = (0..n).map(|_| Self::sample_point(rng, &region)).collect();
        let speeds: Vec<f64> = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
        RandomWaypoint {
            region,
            positions,
            waypoints,
            speeds,
            pause_left: vec![0.0; n],
            pause,
        }
    }

    fn sample_point<R: Rng + ?Sized>(rng: &mut R, region: &Aabb) -> Point {
        Point::new(
            rng.gen_range(region.min().x..=region.max().x),
            rng.gen_range(region.min().y..=region.max().y),
        )
    }

    /// Current node positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The deployment region.
    pub fn region(&self) -> Aabb {
        self.region
    }

    /// Advances the walk by `dt` time units.
    ///
    /// Each node moves toward its waypoint at its speed; on arrival it
    /// pauses, then draws a fresh waypoint.  Movement within one `dt` is
    /// resolved exactly (including waypoint arrivals mid-step).
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "dt must be ≥ 0");
        for i in 0..self.positions.len() {
            let mut budget = dt;
            while budget > 0.0 {
                if self.pause_left[i] > 0.0 {
                    let rest = self.pause_left[i].min(budget);
                    self.pause_left[i] -= rest;
                    budget -= rest;
                    continue;
                }
                let to_go = self.positions[i].dist(self.waypoints[i]);
                let reach = self.speeds[i] * budget;
                if reach < to_go {
                    let dir = (self.waypoints[i] - self.positions[i])
                        .normalized()
                        .expect("to_go > 0");
                    self.positions[i] += dir * reach;
                    budget = 0.0;
                } else {
                    // Arrive, start pause, pick the next waypoint.
                    self.positions[i] = self.waypoints[i];
                    budget -= if self.speeds[i] > 0.0 {
                        to_go / self.speeds[i]
                    } else {
                        0.0
                    };
                    self.pause_left[i] = self.pause;
                    self.waypoints[i] = Self::sample_point(rng, &self.region);
                }
            }
        }
    }

    /// Snapshot of the current communication topology (unit radius).
    pub fn snapshot(&self) -> Udg {
        Udg::build(self.positions.clone())
    }
}

/// The fraction of `old` nodes that survive into `new` — the backbone
/// *stability* between epochs (1.0 = unchanged).
pub fn survival_fraction(old: &[usize], new: &[usize]) -> f64 {
    if old.is_empty() {
        return 1.0;
    }
    let new_set: std::collections::BTreeSet<usize> = new.iter().copied().collect();
    old.iter().filter(|v| new_set.contains(v)).count() as f64 / old.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nodes_stay_in_region() {
        let mut rng = StdRng::seed_from_u64(1);
        let region = Aabb::square(8.0);
        let mut walk = RandomWaypoint::new(&mut rng, 60, region, (0.5, 2.0), 0.3);
        for _ in 0..50 {
            walk.step(&mut rng, 0.7);
            for p in walk.positions() {
                assert!(region.contains(*p), "{p} escaped the region");
            }
        }
    }

    #[test]
    fn movement_is_bounded_by_speed() {
        let mut rng = StdRng::seed_from_u64(2);
        let region = Aabb::square(20.0);
        let mut walk = RandomWaypoint::new(&mut rng, 30, region, (1.0, 1.5), 0.0);
        let before = walk.positions().to_vec();
        let dt = 0.5;
        walk.step(&mut rng, dt);
        for (a, b) in before.iter().zip(walk.positions()) {
            // Max distance = max_speed * dt (waypoint turns shorten it).
            assert!(a.dist(*b) <= 1.5 * dt + 1e-9);
        }
    }

    #[test]
    fn pause_holds_nodes_still() {
        let mut rng = StdRng::seed_from_u64(3);
        let region = Aabb::square(2.0);
        // Speed so high every node reaches its waypoint immediately, then
        // pauses for a long time.
        let mut walk = RandomWaypoint::new(&mut rng, 10, region, (1000.0, 1000.0), 100.0);
        walk.step(&mut rng, 1.0); // everyone arrives and starts pausing
        let frozen = walk.positions().to_vec();
        walk.step(&mut rng, 1.0);
        assert_eq!(frozen, walk.positions());
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut walk = RandomWaypoint::new(&mut rng, 20, Aabb::square(5.0), (1.0, 2.0), 0.1);
        let before = walk.positions().to_vec();
        walk.step(&mut rng, 0.0);
        assert_eq!(before, walk.positions());
    }

    #[test]
    fn snapshot_matches_positions() {
        let mut rng = StdRng::seed_from_u64(5);
        let walk = RandomWaypoint::new(&mut rng, 15, Aabb::square(4.0), (1.0, 1.0), 0.0);
        let udg = walk.snapshot();
        assert_eq!(udg.points(), walk.positions());
    }

    #[test]
    fn survival_fraction_cases() {
        assert_eq!(survival_fraction(&[], &[1, 2]), 1.0);
        assert_eq!(survival_fraction(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(survival_fraction(&[1, 2], &[]), 0.0);
        assert!((survival_fraction(&[1, 2, 3, 4], &[2, 4, 9]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "min_speed")]
    fn bad_speed_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = RandomWaypoint::new(&mut rng, 1, Aabb::square(1.0), (2.0, 1.0), 0.0);
    }
}
