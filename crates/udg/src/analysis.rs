//! Instance statistics and deployment-quality metrics.
//!
//! The experiment harness and CLI summarize instances with these
//! functions; they are also useful for sanity-checking generated
//! deployments (e.g. "is the realized density near the target?").

use mcds_graph::traversal;

use crate::Udg;

/// Summary statistics of a UDG instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of links.
    pub edges: usize,
    /// Average degree `2m/n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated nodes (degree 0).
    pub isolated: usize,
    /// Number of connected components.
    pub components: usize,
    /// Fraction of nodes in the largest component.
    pub giant_fraction: f64,
    /// Hop diameter, if connected.
    pub diameter: Option<usize>,
}

/// Computes [`InstanceStats`] for an instance.
///
/// ```
/// use mcds_geom::Point;
/// use mcds_udg::{analysis::instance_stats, Udg};
///
/// let udg = Udg::build(vec![Point::new(0.0, 0.0), Point::new(0.9, 0.0)]);
/// let s = instance_stats(&udg);
/// assert_eq!((s.nodes, s.edges, s.components, s.diameter), (2, 1, 1, Some(1)));
/// ```
///
/// The diameter costs `O(n·m)`; for large disconnected instances it is
/// skipped (`None`) without extra work.
pub fn instance_stats(udg: &Udg) -> InstanceStats {
    let g = udg.graph();
    let n = g.num_nodes();
    let comps = traversal::connected_components(g);
    let giant = comps.iter().map(|c| c.len()).max().unwrap_or(0);
    let connected = comps.len() <= 1;
    InstanceStats {
        nodes: n,
        edges: g.num_edges(),
        avg_degree: g.avg_degree(),
        max_degree: g.max_degree(),
        isolated: (0..n).filter(|&v| g.degree(v) == 0).count(),
        components: comps.len(),
        giant_fraction: if n == 0 { 0.0 } else { giant as f64 / n as f64 },
        diameter: if connected && n > 0 {
            traversal::diameter(g)
        } else {
            None
        },
    }
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(udg: &Udg) -> Vec<usize> {
    let g = udg.graph();
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_nodes() {
        hist[g.degree(v)] += 1;
    }
    if udg.is_empty() {
        hist.clear();
    }
    hist
}

/// Empirical clustering coefficient of node `v`: the fraction of its
/// neighbor pairs that are themselves adjacent (UDGs are famously highly
/// clustered — geometrically ≥ some constant for interior nodes).
///
/// Returns `None` for nodes of degree < 2 (no neighbor pairs).
pub fn local_clustering(udg: &Udg, v: usize) -> Option<f64> {
    let g = udg.graph();
    let nbrs: Vec<usize> = g.neighbors_iter(v).collect();
    if nbrs.len() < 2 {
        return None;
    }
    let mut closed = 0usize;
    let mut total = 0usize;
    for i in 0..nbrs.len() {
        for j in (i + 1)..nbrs.len() {
            total += 1;
            if g.has_edge(nbrs[i], nbrs[j]) {
                closed += 1;
            }
        }
    }
    Some(closed as f64 / total as f64)
}

/// Mean local clustering over nodes of degree ≥ 2, or `None` if no such
/// node exists.
pub fn mean_clustering(udg: &Udg) -> Option<f64> {
    let vals: Vec<f64> = (0..udg.len())
        .filter_map(|v| local_clustering(udg, v))
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_geom::Point;

    fn chain(n: usize) -> Udg {
        Udg::build((0..n).map(|i| Point::new(i as f64 * 0.9, 0.0)).collect())
    }

    #[test]
    fn stats_of_chain() {
        let s = instance_stats(&chain(6));
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 5);
        assert_eq!(s.components, 1);
        assert_eq!(s.diameter, Some(5));
        assert_eq!(s.isolated, 0);
        assert_eq!(s.giant_fraction, 1.0);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn stats_of_disconnected() {
        let udg = Udg::build(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(9.0, 9.0),
        ]);
        let s = instance_stats(&udg);
        assert_eq!(s.components, 2);
        assert_eq!(s.diameter, None);
        assert_eq!(s.isolated, 1);
        assert!((s.giant_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let s = instance_stats(&Udg::build(Vec::new()));
        assert_eq!(s.nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.giant_fraction, 0.0);
        assert_eq!(s.diameter, None);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let udg = chain(7);
        let hist = degree_histogram(&udg);
        assert_eq!(hist.iter().sum::<usize>(), 7);
        assert_eq!(hist[1], 2); // endpoints
        assert_eq!(hist[2], 5); // interior
        assert!(degree_histogram(&Udg::build(Vec::new())).is_empty());
    }

    #[test]
    fn clustering_triangle_vs_chain() {
        // Equilateral-ish triangle: clustering 1 at every node.
        let tri = Udg::build(vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(0.45, 0.7),
        ]);
        for v in 0..3 {
            assert_eq!(local_clustering(&tri, v), Some(1.0));
        }
        assert_eq!(mean_clustering(&tri), Some(1.0));
        // Chain interior nodes: neighbors at distance 1.8 apart — open.
        let ch = chain(5);
        assert_eq!(local_clustering(&ch, 2), Some(0.0));
        assert_eq!(local_clustering(&ch, 0), None); // degree 1
        assert_eq!(mean_clustering(&Udg::build(vec![Point::ORIGIN])), None);
    }
}
