//! Unit-disk-graph model of wireless ad hoc networks.
//!
//! The paper models a wireless ad hoc network whose nodes lie in a plane
//! with equal maximum transmission radii (normalized to one) as a
//! **unit-disk graph** (UDG): nodes `u, v` are adjacent iff their Euclidean
//! distance is at most one.  This crate binds the geometric substrate
//! ([`mcds_geom`]) to the graph substrate ([`mcds_graph`]):
//!
//! * [`Udg`] — a point set together with its induced unit-disk graph,
//!   built in expected `O(n + m)` via a spatial grid (with a naive
//!   `O(n²)` reference used in tests),
//! * [`gen`] — deterministic, seedable instance generators: uniform in a
//!   square/disk, clustered, perturbed grid, linear chains, plus
//!   connected-instance helpers (resampling and giant-component
//!   extraction),
//! * [`stream`] — a grid-sweep streaming builder that relabels nodes in
//!   sweep order and feeds adjacencies straight into the gap-compressed
//!   [`mcds_graph::CompactGraph`] backend (million-node instances),
//! * [`io`] — a minimal plain-text instance format for persisting and
//!   sharing instances,
//! * [`analysis`] — instance statistics (degree histograms, clustering,
//!   component structure),
//! * [`mobility`] — random-waypoint node mobility for
//!   backbone-maintenance studies.
//!
//! # Example
//!
//! ```
//! use mcds_geom::Point;
//! use mcds_udg::Udg;
//!
//! let pts = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(0.8, 0.0),
//!     Point::new(1.6, 0.0),
//! ];
//! let udg = Udg::build(pts);
//! assert_eq!(udg.graph().num_edges(), 2);   // 0-1 and 1-2; 0-2 too far
//! assert!(udg.graph().is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod model;

pub mod analysis;
pub mod gen;
pub mod io;
pub mod mobility;
pub mod stream;

pub use model::Udg;
pub use stream::{stream_build, stream_build_unit, StreamedUdg};
