//! Streaming construction of huge unit-disk graphs directly into the
//! gap-compressed [`CompactGraph`] backend.
//!
//! [`Udg::build`](crate::Udg::build) materializes the whole edge list as
//! `Vec<(usize, usize)>` before normalizing it into CSR — fine up to a few
//! hundred thousand nodes, wasteful at millions.  [`stream_build`] avoids
//! the intermediate entirely:
//!
//! 1. points are bucketed into the same radius-sized grid cells the
//!    [`GridIndex`](mcds_geom::grid::GridIndex) uses, and nodes are
//!    **relabeled in grid-sweep order** — sorted by `(cell_y, cell_x,
//!    original index)` — so each grid row occupies a contiguous id range
//!    and geometric neighbors get nearby ids;
//! 2. the sweep walks rows top to bottom keeping a **three-row sliding
//!    window** of per-row cell tables resident, emits each node's full
//!    sorted adjacency from the 3×3 cell block around it, and feeds it
//!    straight into the [`CompactGraphBuilder`] varint encoder.
//!
//! No `Vec<(u32, u32)>` of edges ever exists; peak transient state is the
//! reordered points plus three rows of cell ranges.  The relabeling is
//! also what makes the gap compression effective: consecutive neighbors
//! within a row differ by small deltas, so most arcs cost one byte
//! instead of the four a CSR target occupies (measured in experiment E23).
//!
//! Edge semantics are identical to [`Udg`](crate::Udg): closed-ball
//! adjacency `dist² ≤ r² + EPS` with the same grid-cell keying, so
//! rebuilding a CSR [`Udg`] over [`StreamedUdg::points`] yields exactly
//! the same graph (asserted by this module's tests and gated end-to-end
//! by `scripts/verify.sh`).

use std::collections::VecDeque;
use std::ops::Range;

use mcds_geom::Point;
use mcds_graph::{CompactGraph, CompactGraphBuilder};

/// Per-row cell table: ascending `(cell_x, id-range)` runs within a row.
type CellTable = Vec<(i64, Range<usize>)>;

/// A unit-disk instance built by [`stream_build`]: the gap-compressed
/// graph, the grid-sweep-reordered points, and the relabeling that maps
/// new node ids back to the caller's original indices.
///
/// Node `i` of [`StreamedUdg::graph`] sits at [`StreamedUdg::points`]`[i]`,
/// which is the caller's point `permutation()[i]`.
#[derive(Clone)]
pub struct StreamedUdg {
    graph: CompactGraph,
    points: Vec<Point>,
    perm: Vec<usize>,
    radius: f64,
}

impl StreamedUdg {
    /// The compressed communication topology.
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }

    /// Node coordinates in grid-sweep order; node `i` sits at index `i`.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Maps new node id `i` to the index of the same point in the input
    /// of [`stream_build`] (a bijection on `0..n`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The communication radius used to build the graph.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the instance has no nodes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Consumes the instance, returning `(graph, points, permutation)`.
    pub fn into_parts(self) -> (CompactGraph, Vec<Point>, Vec<usize>) {
        (self.graph, self.points, self.perm)
    }
}

impl std::fmt::Debug for StreamedUdg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StreamedUdg(n={}, m={}, r={})",
            self.points.len(),
            self.graph.num_edges(),
            self.radius
        )
    }
}

/// Builds the unit-radius disk graph over `points` straight into the
/// compressed backend; see the [module docs](self) for the construction.
///
/// # Panics
///
/// Panics if any point has non-finite coordinates.
pub fn stream_build_unit(points: Vec<Point>) -> StreamedUdg {
    stream_build(points, 1.0)
}

/// Builds the radius-`radius` disk graph over `points` straight into the
/// compressed backend; see the [module docs](self) for the construction.
///
/// # Panics
///
/// Panics if `radius` is not strictly positive and finite, or if any
/// point has non-finite coordinates.
pub fn stream_build(points: Vec<Point>, radius: f64) -> StreamedUdg {
    assert!(
        radius.is_finite() && radius > 0.0,
        "communication radius must be positive and finite, got {radius}"
    );
    let n = points.len();
    // Same cell keying as GridIndex: coordinates floored at cell side
    // `radius`, so the 3×3 block around a node covers its closed disk.
    let key = |p: Point| -> (i64, i64) {
        assert!(
            p.x.is_finite() && p.y.is_finite(),
            "point has non-finite coordinates: {p:?}"
        );
        ((p.x / radius).floor() as i64, (p.y / radius).floor() as i64)
    };
    let keys: Vec<(i64, i64)> = points.iter().map(|&p| key(p)).collect();

    // Grid-sweep relabeling: sort node ids by (cell_y, cell_x, id).  Rows
    // become contiguous id ranges, which both bounds the sliding window
    // and keeps adjacency gaps small for the varint encoder.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let (cx, cy) = keys[i as usize];
        (cy, cx, i)
    });
    let pts: Vec<Point> = order.iter().map(|&i| points[i as usize]).collect();
    let ks: Vec<(i64, i64)> = order.iter().map(|&i| keys[i as usize]).collect();
    drop(points);
    drop(keys);

    // Row boundaries: maximal runs of equal cell_y in the new order.
    let mut rows: Vec<(i64, Range<usize>)> = Vec::new();
    let mut start = 0usize;
    for v in 1..=n {
        if v == n || ks[v].1 != ks[start].1 {
            rows.push((ks[start].1, start..v));
            start = v;
        }
    }

    // Per-row cell table: maximal runs of equal cell_x, sorted by cell_x
    // (the sweep order guarantees it).  Built lazily, three rows resident.
    let cells_of = |row: &Range<usize>| -> CellTable {
        let mut cells = Vec::new();
        let mut s = row.start;
        for v in (row.start + 1)..=row.end {
            if v == row.end || ks[v].0 != ks[s].0 {
                cells.push((ks[s].0, s..v));
                s = v;
            }
        }
        cells
    };
    let mut window: VecDeque<(usize, CellTable)> = VecDeque::new();

    let mut b = CompactGraphBuilder::new(n);
    let r_sq = radius * radius + mcds_geom::EPS;
    let mut nbrs: Vec<u32> = Vec::new();
    for ri in 0..rows.len() {
        // Slide the window to rows ri−1 ..= ri+1.
        while window.front().is_some_and(|&(i, _)| i + 1 < ri) {
            window.pop_front();
        }
        let lo = ri.saturating_sub(1);
        let hi = (ri + 1).min(rows.len() - 1);
        for (i, row) in rows.iter().enumerate().take(hi + 1).skip(lo) {
            if window.iter().all(|&(j, _)| j != i) {
                window.push_back((i, cells_of(&row.1)));
            }
        }

        let row_cy = rows[ri].0;
        for v in rows[ri].1.clone() {
            let (cx, _) = ks[v];
            nbrs.clear();
            // Window rows ascend in id range and cells ascend in cell_x,
            // so pushing in this order yields a sorted adjacency — no
            // per-node sort needed.
            for &(rj, ref cells) in &window {
                if (rows[rj].0 - row_cy).abs() > 1 {
                    continue; // adjacent row index, but an empty band skipped ≥ 2 cells
                }
                for target in cx - 1..=cx + 1 {
                    if let Ok(pos) = cells.binary_search_by_key(&target, |c| c.0) {
                        for u in cells[pos].1.clone() {
                            if u != v && pts[u].dist_sq(pts[v]) <= r_sq {
                                nbrs.push(u as u32);
                            }
                        }
                    }
                }
            }
            b.push_adjacency(&nbrs);
        }
    }

    let perm: Vec<usize> = order.into_iter().map(|i| i as usize).collect();
    StreamedUdg {
        graph: b.finish(),
        points: pts,
        perm,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Udg;
    use mcds_graph::RandomAccessGraph;

    fn pseudo_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * side, next() * side))
            .collect()
    }

    #[test]
    fn streamed_graph_matches_csr_rebuild_over_its_points() {
        for seed in [3u64, 11, 42] {
            let pts = pseudo_points(250, 5.0, seed);
            let streamed = stream_build(pts, 1.0);
            let csr = Udg::with_radius(streamed.points().to_vec(), 1.0);
            assert_eq!(
                &streamed.graph().to_graph(),
                csr.graph(),
                "seed {seed}: streamed compact != CSR over the same points"
            );
        }
    }

    #[test]
    fn relabeling_is_a_bijection_preserving_geometry() {
        let pts = pseudo_points(120, 4.0, 7);
        let streamed = stream_build(pts.clone(), 1.0);
        let mut seen = vec![false; pts.len()];
        for (new_id, &orig) in streamed.permutation().iter().enumerate() {
            assert!(!seen[orig], "original index {orig} mapped twice");
            seen[orig] = true;
            assert_eq!(streamed.points()[new_id], pts[orig]);
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn streamed_graph_is_isomorphic_to_direct_build() {
        // Relabeling permutes node ids, so compare label-free invariants
        // against the direct CSR build over the original ordering.
        let pts = pseudo_points(300, 5.5, 13);
        let direct = Udg::with_radius(pts.clone(), 1.0);
        let streamed = stream_build(pts, 1.0);
        assert_eq!(streamed.graph().num_nodes(), direct.graph().num_nodes());
        assert_eq!(streamed.graph().num_edges(), direct.graph().num_edges());
        let mut a: Vec<usize> = (0..direct.graph().num_nodes())
            .map(|v| direct.graph().degree(v))
            .collect();
        let mut b: Vec<usize> = (0..streamed.graph().num_nodes())
            .map(|v| streamed.graph().degree(v))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "degree multisets differ");
        assert_eq!(
            direct.graph().is_connected(),
            streamed.graph().is_connected()
        );
    }

    #[test]
    fn closed_ball_boundary_semantics_match_udg() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0 + 1e-6, 0.0),
        ];
        let streamed = stream_build(pts, 1.0);
        // Distance exactly 1 is an edge; 1 + 1e-6 is not.
        assert_eq!(streamed.graph().num_edges(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let e = stream_build(Vec::new(), 1.0);
        assert!(e.is_empty());
        assert_eq!(e.graph().num_nodes(), 0);
        let s = stream_build_unit(vec![Point::ORIGIN]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.graph().num_edges(), 0);
        assert_eq!(s.permutation(), &[0]);
    }

    #[test]
    fn negative_coordinates_and_sparse_rows() {
        // Points straddling cell (0,0) with an empty row band in between:
        // the window must not bridge rows two cells apart.
        let pts = vec![
            Point::new(-0.5, -0.5),
            Point::new(0.5, 0.5),
            Point::new(0.5, 3.5), // isolated: empty rows 1 and 2 in between
        ];
        let streamed = stream_build(pts, 1.0);
        let csr = Udg::with_radius(streamed.points().to_vec(), 1.0);
        assert_eq!(&streamed.graph().to_graph(), csr.graph());
        assert_eq!(streamed.graph().degree(2), 0);
    }

    #[test]
    fn custom_radius_matches_udg() {
        let pts = pseudo_points(150, 12.0, 21);
        let streamed = stream_build(pts, 2.5);
        let csr = Udg::with_radius(streamed.points().to_vec(), 2.5);
        assert_eq!(&streamed.graph().to_graph(), csr.graph());
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn zero_radius_rejected() {
        let _ = stream_build(vec![Point::ORIGIN], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_point_rejected() {
        let _ = stream_build(vec![Point::new(f64::NAN, 0.0)], 1.0);
    }
}
