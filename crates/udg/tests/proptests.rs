//! Property-based tests for the UDG crate: generator invariants and
//! parser robustness.
//!
//! SUPERSEDED: these properties have been ported to the in-tree
//! `mcds-check` engine in `crates/udg/tests/check_properties.rs`,
//! which runs in the default `cargo test -q`.  This proptest variant
//! is kept compiling behind `ext-tests` for cross-validation against
//! an external shrinker, but is no longer the suite of record.

// Property tests need the external `proptest` crate, which is not
// available in hermetic (offline) builds; enable with
// `cargo test --features ext-tests` after restoring the dependency in
// the workspace manifest.
#![cfg(feature = "ext-tests")]

use mcds_geom::{Aabb, Point};
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;
use mcds_udg::{gen, io, Udg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in ".{0,300}") {
        // Robustness: any input either parses or returns Err — no panic.
        let _ = io::parse_instance(&text);
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        n in 0usize..20,
        radius in -2.0f64..3.0,
        rows in proptest::collection::vec("[-0-9eE. xyz]{0,20}", 0..25),
    ) {
        let mut text = format!("udg {n} {radius}\n");
        for r in rows {
            text.push_str(&r);
            text.push('\n');
        }
        let _ = io::parse_instance(&text);
    }

    #[test]
    fn roundtrip_through_text_is_exact(
        seed in 0u64..10_000,
        n in 0usize..60,
        side in 0.5f64..12.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let udg = Udg::build(gen::uniform_in_square(&mut rng, n, side));
        let back = io::parse_instance(&io::write_instance(&udg)).expect("own output parses");
        prop_assert_eq!(back.points(), udg.points());
        prop_assert_eq!(back.graph(), udg.graph());
    }

    #[test]
    fn generators_respect_their_regions(seed in 0u64..10_000, n in 1usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 6.0;
        for p in gen::uniform_in_square(&mut rng, n, side) {
            prop_assert!(Aabb::square(side).contains(p));
        }
        let c = Point::new(1.0, 2.0);
        for p in gen::uniform_in_disk(&mut rng, n, c, 2.5) {
            prop_assert!(p.dist(c) <= 2.5 + 1e-12);
        }
        for p in gen::uniform_in_annulus(&mut rng, n, c, 1.0, 3.0) {
            let d = p.dist(c);
            prop_assert!((1.0..=3.0 + 1e-12).contains(&d));
        }
        for p in gen::corridor(&mut rng, n, 15.0, 2.0) {
            prop_assert!((0.0..=15.0).contains(&p.x) && (0.0..=2.0).contains(&p.y));
        }
    }

    #[test]
    fn giant_component_instances_are_connected(seed in 0u64..5_000, n in 1usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let udg = gen::giant_component_instance(&mut rng, n, 6.0);
        prop_assert!(udg.graph().is_connected());
        prop_assert!(!udg.is_empty() && udg.len() <= n);
    }

    #[test]
    fn mobility_preserves_population_and_region(seed in 0u64..3_000, steps in 1usize..8) {
        use mcds_udg::mobility::RandomWaypoint;
        let mut rng = StdRng::seed_from_u64(seed);
        let region = Aabb::square(5.0);
        let mut walk = RandomWaypoint::new(&mut rng, 25, region, (0.5, 1.5), 0.2);
        for _ in 0..steps {
            walk.step(&mut rng, 0.8);
        }
        prop_assert_eq!(walk.positions().len(), 25);
        for p in walk.positions() {
            prop_assert!(region.contains(*p));
        }
    }
}
