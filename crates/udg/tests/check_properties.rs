//! Property tests for the UDG crate on the in-tree `mcds-check` engine.
//!
//! This suite ports `crates/udg/tests/proptests.rs` (the proptest-based
//! variant, gated behind `ext-tests`) onto `mcds-check` so it runs in
//! the default `cargo test -q` with deterministic seeds and shrinking.

use mcds_check::gen::{strings, u64s, usizes, vecs};
use mcds_check::{prop_assert, prop_assert_eq, Property, TestResult};
use mcds_geom::{Aabb, Point};
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;
use mcds_udg::{gen, io, Udg};

#[test]
fn parser_never_panics_on_arbitrary_text() {
    Property::new("parser_never_panics_on_arbitrary_text")
        .cases(64)
        .run(&strings(0..=300), |text| {
            // Robustness: any input either parses or returns Err — no panic.
            let _ = io::parse_instance(text);
            TestResult::Pass
        });
}

#[test]
fn parser_never_panics_on_structured_garbage() {
    let gen = (
        usizes(0..=19),
        u64s(0..=5_000),
        vecs(strings(0..=20), 0..=24),
    );
    Property::new("parser_never_panics_on_structured_garbage")
        .cases(64)
        .run(&gen, |(n, radius_millis, rows)| {
            // Radius sweeps [-2, 3) in millistep increments, covering the
            // negative/zero/degenerate band the proptest variant hit.
            let radius = *radius_millis as f64 / 1000.0 - 2.0;
            let mut text = format!("udg {n} {radius}\n");
            for r in rows {
                text.push_str(r);
                text.push('\n');
            }
            let _ = io::parse_instance(&text);
            TestResult::Pass
        });
}

#[test]
fn roundtrip_through_text_is_exact() {
    let gen = (u64s(0..=10_000), usizes(0..=59), usizes(0..=115));
    Property::new("roundtrip_through_text_is_exact")
        .cases(64)
        .run(&gen, |(seed, n, side_decis)| {
            let side = 0.5 + *side_decis as f64 / 10.0;
            let mut rng = StdRng::seed_from_u64(*seed);
            let udg = Udg::build(gen::uniform_in_square(&mut rng, *n, side));
            let back = io::parse_instance(&io::write_instance(&udg)).expect("own output parses");
            prop_assert_eq!(back.points(), udg.points());
            prop_assert_eq!(back.graph(), udg.graph());
            TestResult::Pass
        });
}

#[test]
fn generators_respect_their_regions() {
    Property::new("generators_respect_their_regions")
        .cases(64)
        .run(&(u64s(0..=10_000), usizes(1..=80)), |(seed, n)| {
            let mut rng = StdRng::seed_from_u64(*seed);
            let n = *n;
            let side = 6.0;
            for p in gen::uniform_in_square(&mut rng, n, side) {
                prop_assert!(Aabb::square(side).contains(p));
            }
            let c = Point::new(1.0, 2.0);
            for p in gen::uniform_in_disk(&mut rng, n, c, 2.5) {
                prop_assert!(p.dist(c) <= 2.5 + 1e-12);
            }
            for p in gen::uniform_in_annulus(&mut rng, n, c, 1.0, 3.0) {
                let d = p.dist(c);
                prop_assert!((1.0..=3.0 + 1e-12).contains(&d));
            }
            for p in gen::corridor(&mut rng, n, 15.0, 2.0) {
                prop_assert!((0.0..=15.0).contains(&p.x) && (0.0..=2.0).contains(&p.y));
            }
            TestResult::Pass
        });
}

#[test]
fn giant_component_instances_are_connected() {
    Property::new("giant_component_instances_are_connected")
        .cases(64)
        .run(&(u64s(0..=5_000), usizes(1..=60)), |(seed, n)| {
            let mut rng = StdRng::seed_from_u64(*seed);
            let udg = gen::giant_component_instance(&mut rng, *n, 6.0);
            prop_assert!(udg.graph().is_connected());
            prop_assert!(!udg.is_empty() && udg.len() <= *n);
            TestResult::Pass
        });
}

#[test]
fn mobility_preserves_population_and_region() {
    Property::new("mobility_preserves_population_and_region")
        .cases(64)
        .run(&(u64s(0..=3_000), usizes(1..=7)), |(seed, steps)| {
            use mcds_udg::mobility::RandomWaypoint;
            let mut rng = StdRng::seed_from_u64(*seed);
            let region = Aabb::square(5.0);
            let mut walk = RandomWaypoint::new(&mut rng, 25, region, (0.5, 1.5), 0.2);
            for _ in 0..*steps {
                walk.step(&mut rng, 0.8);
            }
            prop_assert_eq!(walk.positions().len(), 25);
            for p in walk.positions() {
                prop_assert!(region.contains(*p));
            }
            TestResult::Pass
        });
}
