//! Grid-bucketed UDG construction must agree exactly with the naive
//! `Θ(n²)` reference, and the pooled parallel bucket pass must agree
//! exactly with the sequential one — on every deployment family the
//! experiments use.
//!
//! These are the load-bearing guarantees behind `Udg::build`: the grid
//! index is a pure accelerator (no geometric approximation), and the
//! worker pool is pure wall-clock (the determinism contract of
//! `mcds-pool`).

use mcds_geom::Point;
use mcds_pool::ThreadPool;
use mcds_rng::rngs::StdRng;
use mcds_rng::{Rng, SeedableRng};
use mcds_udg::{gen, Udg};

/// One seeded point set per (family, seed) pair.
fn family_points(family: &str, seed: u64, n: usize, side: f64) -> Vec<Point> {
    let mut rng = StdRng::from_stream(seed, 0x9d5);
    match family {
        "uniform" => gen::uniform_in_square(&mut rng, n, side),
        "clustered" => {
            let clusters = (n / 15).max(2);
            gen::clustered(&mut rng, clusters, n / clusters, side, 0.8)
        }
        "corridor" => gen::corridor(&mut rng, n, 4.0 * side, side / 3.0),
        "annulus" => gen::uniform_in_annulus(&mut rng, n, Point::new(0.0, 0.0), side / 3.0, side),
        other => panic!("unknown family {other}"),
    }
}

const FAMILIES: [&str; 4] = ["uniform", "clustered", "corridor", "annulus"];

/// Grid-bucketed construction equals the naive all-pairs reference on
/// ≥200 seeded instances across all four deployment families, at several
/// sizes and radii (including radii near the instance scale, which
/// stress the 3×3-block boundary cases).
#[test]
fn grid_equals_naive_on_200_instances() {
    let mut checked = 0usize;
    for &family in &FAMILIES {
        for seed in 0..50u64 {
            // Vary size and radius with the seed so the sweep covers
            // sparse, dense, and near-degenerate cells.
            let n = 30 + (seed as usize % 5) * 25; // 30..130
            let side = 3.0 + (seed % 4) as f64; // 3..6
            let radius = [0.6, 1.0, 1.7][seed as usize % 3];
            let pts = family_points(family, seed, n, side);
            let grid = Udg::with_radius(pts.clone(), radius);
            let naive = Udg::build_naive(pts, radius);
            assert_eq!(
                grid.graph(),
                naive.graph(),
                "family {family}, seed {seed}, n {n}, radius {radius}: \
                 grid and naive graphs differ"
            );
            checked += 1;
        }
    }
    assert!(checked >= 200, "only {checked} instances checked");
}

/// The pooled bucket pass produces a bit-identical graph at any pool
/// width, including above the parallel-build threshold where the fan-out
/// actually engages.
#[test]
fn pooled_build_equals_sequential() {
    let seq = ThreadPool::new(1);
    let four = ThreadPool::new(4);
    // Small instances (below the threshold: exercises the inline path).
    for &family in &FAMILIES {
        let pts = family_points(family, 99, 120, 5.0);
        let a = Udg::with_radius_pooled(pts.clone(), 1.0, &seq);
        let b = Udg::with_radius_pooled(pts, 1.0, &four);
        assert_eq!(a.graph(), b.graph(), "family {family}");
    }
    // A large instance (above the threshold: exercises the parallel
    // range scan and index-ordered collection).
    let mut rng = StdRng::seed_from_u64(4242);
    let pts = gen::uniform_in_square(&mut rng, 5000, 25.0);
    let a = Udg::with_radius_pooled(pts.clone(), 1.0, &seq);
    let b = Udg::with_radius_pooled(pts, 1.0, &four);
    assert_eq!(a.graph(), b.graph());
    assert!(a.graph().num_edges() > 0, "degenerate instance");
}

/// Radius boundary: points exactly at distance `radius` must be adjacent
/// in both constructions (the naive reference uses an epsilon-padded
/// comparison; the grid path must match it).
#[test]
fn boundary_distances_agree() {
    let mut pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..60 {
        pts.push(Point::new(
            rng.gen_range(-1.5..=2.5),
            rng.gen_range(-1.5..=1.5),
        ));
    }
    let grid = Udg::with_radius(pts.clone(), 1.0);
    let naive = Udg::build_naive(pts, 1.0);
    assert_eq!(grid.graph(), naive.graph());
    assert!(grid.graph().has_edge(0, 1), "exact-radius pair must touch");
}

/// Smoke check that the grid build actually beats the naive build by a
/// wide margin at scale.  Wall-clock dependent, so ignored by default;
/// CI runs it in release via `cargo test --release -- --ignored`.
#[test]
#[ignore = "wall-clock comparison; run in release"]
fn grid_beats_naive_5x_at_20k() {
    // Same density as the old 10k/35.0 smoke; the doubled n widens the
    // O(n^2)-vs-O(n) gap well past the threshold even on slow boxes.
    let mut rng = StdRng::seed_from_u64(1);
    let pts = gen::uniform_in_square(&mut rng, 20_000, 49.5);

    // Warm-up + correctness on the same input.
    let grid_udg = Udg::with_radius(pts.clone(), 1.0);
    let naive_udg = Udg::build_naive(pts.clone(), 1.0);
    assert_eq!(grid_udg.graph(), naive_udg.graph());

    // Best-of-reps on each side: the minimum is the least
    // noise-contaminated estimate, so one scheduler hiccup in a grid
    // rep cannot sink the ratio on a loaded box.
    let reps = 3;
    let best = |build: &dyn Fn() -> Udg| {
        (0..reps)
            .map(|_| {
                let t = std::time::Instant::now();
                std::hint::black_box(build());
                t.elapsed()
            })
            .min()
            .expect("reps >= 1")
    };
    let grid = best(&|| Udg::with_radius(pts.clone(), 1.0));
    let naive = best(&|| Udg::build_naive(pts.clone(), 1.0));
    let speedup = naive.as_secs_f64() / grid.as_secs_f64().max(1e-9);
    eprintln!("n=20000: grid {grid:?}, naive {naive:?}, speedup {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "grid build should beat naive by >=5x at n=20k, got {speedup:.1}x \
         (grid {grid:?}, naive {naive:?})"
    );
}
