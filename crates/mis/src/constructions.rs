//! The tightness constructions of the paper's Section V (Figures 1 and 2).
//!
//! * [`fig1_two_star`] — 8 independent points in the neighborhood of a
//!   2-star (matching `φ(2) = 8`),
//! * [`fig1_three_star`] — 12 independent points in the neighborhood of a
//!   3-star (matching `φ(3) = 12`),
//! * [`fig2_chain`] — `3(n+1)` independent points in the neighborhood of
//!   `n ≥ 3` collinear points with consecutive distance one (the paper's
//!   conjectured worst case).
//!
//! The paper's constructions are tight *in the limit*: they depend on "a
//! very small positive parameter ε", and several pairwise distances exceed
//! one only by `Θ(ε²)` or `Θ(ε⁴)` terms.  We therefore use a two-level
//! parameter hierarchy — a boundary-nudge angle `ν = ε²/4` subordinate to
//! the main offset `ε` — chosen so that every pairwise distance exceeds
//! one by a margin representable in `f64` for `ε ∈ (0, 0.05]`.  Tests
//! verify all constraints exactly (strict independence, neighborhood
//! membership, advertised cardinality) across a range of ε.
//!
//! Geometry of the arc groups (both figures): around an *end* point `e` of
//! the set, four independent points sit on the boundary circle `∂D_e` at
//! angles `±(90° + ν)` and `±(30° + ν/3)` from the outward direction —
//! consecutive angular gaps of `60° + 2ν/3`, whose chords `2·sin(30° +
//! ν/3)` exceed one.  The extreme points lean `ν` past the vertical
//! diameter (the paper: "p₁ lies on the proper left side of the vertical
//! diameter of D₁"), which is what keeps them independent from the
//! near-top interior points at height `1 − Θ(ε)`.

use mcds_geom::packing::{is_independent, min_pairwise_distance};
use mcds_geom::{neighborhood_contains, Point};
use mcds_udg::Udg;

/// A tightness instance: the structured set `V` (star or chain) and the
/// independent points packed into its neighborhood.
#[derive(Debug, Clone, PartialEq)]
pub struct Construction {
    /// The structured point set (`S` or `V` in the paper).
    pub set: Vec<Point>,
    /// The independent points packed in the neighborhood of `set`.
    pub independent: Vec<Point>,
    /// The count the construction advertises (`φ(n)` or `3(n+1)`).
    pub advertised: usize,
}

impl Construction {
    /// Verifies every claim of the construction:
    ///
    /// 1. `set` induces a connected UDG,
    /// 2. `independent` is strictly independent (pairwise distance > 1),
    /// 3. every independent point lies in the unit-disk neighborhood of
    ///    `set`,
    /// 4. the number of independent points equals the advertised count.
    ///
    /// # Errors
    ///
    /// Returns a message identifying the first violated claim.
    pub fn verify(&self) -> Result<(), String> {
        if !Udg::build(self.set.clone()).graph().is_connected() {
            return Err("construction set is not connected".into());
        }
        if !is_independent(&self.independent, 0.0) {
            let d = min_pairwise_distance(&self.independent).unwrap_or(f64::INFINITY);
            return Err(format!(
                "points are not strictly independent (min pairwise distance {d})"
            ));
        }
        for (i, &p) in self.independent.iter().enumerate() {
            if !neighborhood_contains(&self.set, p) {
                return Err(format!(
                    "independent point {i} ({p}) escapes the neighborhood"
                ));
            }
        }
        if self.independent.len() != self.advertised {
            return Err(format!(
                "advertised {} independent points but constructed {}",
                self.advertised,
                self.independent.len()
            ));
        }
        Ok(())
    }

    /// Smallest pairwise distance among the independent points (the
    /// tightness margin is this value minus one).
    pub fn margin(&self) -> f64 {
        min_pairwise_distance(&self.independent).unwrap_or(f64::INFINITY) - 1.0
    }
}

fn check_eps(eps: f64) {
    assert!(
        eps > 0.0 && eps <= 0.05,
        "construction parameter eps must lie in (0, 0.05], got {eps}"
    );
}

/// The four arc points around an end point `e`, facing direction `dir`
/// (`+1.0` for rightward, `-1.0` for leftward), with nudge angle `nu`.
fn end_arc(e: Point, dir: f64, nu: f64) -> Vec<Point> {
    let base = if dir >= 0.0 {
        0.0
    } else {
        std::f64::consts::PI
    };
    let sign = if dir >= 0.0 { 1.0 } else { -1.0 };
    // Angles relative to the outward direction: ±(90° + ν), ±(30° + ν/3).
    let half = std::f64::consts::FRAC_PI_2 + nu;
    let third = std::f64::consts::FRAC_PI_6 + nu / 3.0;
    [half, third, -third, -half]
        .iter()
        .map(|&a| Point::polar(e, 1.0, base + sign * a))
        .collect()
}

/// The central group of Fig. 1: `I₀ = {v₁, w₁, v₂, w₂}` around the origin.
fn fig1_center_group(eps: f64) -> Vec<Point> {
    vec![
        Point::new(0.5, eps),          // v₁
        Point::new(0.0, 1.0 - eps),    // w₁
        Point::new(-0.5, -eps),        // v₂
        Point::new(0.0, -(1.0 - eps)), // w₂
    ]
}

/// Fig. 1 (left): 8 independent points in the neighborhood of the 2-star
/// `{o, u₁}` with `o = (0,0)`, `u₁ = (1,0)`.
///
/// # Panics
///
/// Panics if `eps ∉ (0, 0.05]`.
///
/// ```
/// let c = mcds_mis::constructions::fig1_two_star(0.02);
/// c.verify().unwrap();
/// assert_eq!(c.independent.len(), 8); // φ(2) = 8 is achievable
/// ```
pub fn fig1_two_star(eps: f64) -> Construction {
    check_eps(eps);
    let nu = eps * eps / 4.0;
    let o = Point::ORIGIN;
    let u1 = Point::new(1.0, 0.0);
    let mut independent = fig1_center_group(eps);
    independent.extend(end_arc(u1, 1.0, nu));
    Construction {
        set: vec![o, u1],
        independent,
        advertised: 8,
    }
}

/// Fig. 1 (right): 12 independent points in the neighborhood of the
/// 3-star `{o, u₁, u₂}` with `u₁ = (1,0)`, `u₂ = (−1,0)`.
///
/// # Panics
///
/// Panics if `eps ∉ (0, 0.05]`.
///
/// ```
/// let c = mcds_mis::constructions::fig1_three_star(0.02);
/// c.verify().unwrap();
/// assert_eq!(c.independent.len(), 12); // φ(3) = 12 is achievable
/// ```
pub fn fig1_three_star(eps: f64) -> Construction {
    check_eps(eps);
    let nu = eps * eps / 4.0;
    let o = Point::ORIGIN;
    let u1 = Point::new(1.0, 0.0);
    let u2 = Point::new(-1.0, 0.0);
    let mut independent = fig1_center_group(eps);
    independent.extend(end_arc(u1, 1.0, nu));
    independent.extend(end_arc(u2, -1.0, nu));
    Construction {
        set: vec![o, u1, u2],
        independent,
        advertised: 12,
    }
}

/// Fig. 2: `3(n+1)` independent points in the neighborhood of the chain
/// `u_i = (i, 0)`, `i = 0..n`, of `n ≥ 3` unit-spaced collinear points.
///
/// Layout (all margins verified by [`Construction::verify`]):
/// * `n − 1` zig-zag points at edge midpoints `(i + ½, ±ε)`,
/// * `n − 2` "top" points `(i, 1 − ε(1 + iε))` over interior vertices —
///   the strictly decreasing heights make consecutive tops more than one
///   apart (`√(1 + ε⁴)`),
/// * `n − 2` mirrored "bottom" points,
/// * 4 + 4 arc points around the two end vertices.
///
/// Total `(n−1) + 2(n−2) + 8 = 3n + 3 = 3(n+1)`.
///
/// # Panics
///
/// Panics if `n < 3` (the paper's Fig. 2 starts at `n = 3`; for `n = 2`
/// the right object is [`fig1_two_star`]) or if `eps ∉ (0, 0.05]`.
///
/// ```
/// let c = mcds_mis::constructions::fig2_chain(7, 0.02);
/// c.verify().unwrap();
/// assert_eq!(c.independent.len(), 24); // 3(7+1)
/// ```
pub fn fig2_chain(n: usize, eps: f64) -> Construction {
    assert!(n >= 3, "fig2_chain requires n >= 3, got {n}");
    check_eps(eps);
    let nu = eps * eps / 4.0;
    let set: Vec<Point> = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
    let mut independent = Vec::with_capacity(3 * n + 3);
    // Zig-zag midpoints.
    for i in 0..(n - 1) {
        let sigma = if i % 2 == 0 { 1.0 } else { -1.0 };
        independent.push(Point::new(i as f64 + 0.5, sigma * eps));
    }
    // Interior tops and bottoms at strictly distinct heights.
    for i in 1..(n - 1) {
        let h = 1.0 - eps * (1.0 + i as f64 * eps);
        independent.push(Point::new(i as f64, h));
        independent.push(Point::new(i as f64, -h));
    }
    // End arcs.
    independent.extend(end_arc(set[n - 1], 1.0, nu));
    independent.extend(end_arc(set[0], -1.0, nu));
    Construction {
        set,
        independent,
        advertised: 3 * (n + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_geom::packing::{connected_set_bound, phi};

    const EPS_GRID: [f64; 4] = [0.005, 0.01, 0.02, 0.05];

    #[test]
    fn two_star_achieves_phi_2() {
        for &e in &EPS_GRID {
            let c = fig1_two_star(e);
            c.verify().unwrap_or_else(|msg| panic!("eps={e}: {msg}"));
            assert_eq!(c.independent.len(), phi(2));
            assert!(c.margin() > 0.0);
        }
    }

    #[test]
    fn three_star_achieves_phi_3() {
        for &e in &EPS_GRID {
            let c = fig1_three_star(e);
            c.verify().unwrap_or_else(|msg| panic!("eps={e}: {msg}"));
            assert_eq!(c.independent.len(), phi(3));
        }
    }

    #[test]
    fn chains_achieve_three_n_plus_three() {
        for n in 3..32 {
            let c = fig2_chain(n, 0.02);
            c.verify().unwrap_or_else(|msg| panic!("n={n}: {msg}"));
            assert_eq!(c.independent.len(), 3 * (n + 1));
            // Theorem 6 upper bound is respected but nearly met:
            // 3n + 3 ≤ 11n/3 + 1 with slack (2n/3 − 2)/1.
            assert!(c.independent.len() as f64 <= connected_set_bound(n));
        }
    }

    #[test]
    fn chain_margin_shrinks_with_eps() {
        // The construction is tight in the limit: the margin above 1 must
        // shrink as eps shrinks.
        let big = fig2_chain(6, 0.05).margin();
        let small = fig2_chain(6, 0.005).margin();
        assert!(
            big > small,
            "margins: eps=0.05 -> {big}, eps=0.005 -> {small}"
        );
        assert!(small > 0.0);
    }

    #[test]
    fn constructions_sit_tight_against_theorem3() {
        // φ(2) and φ(3) are achieved exactly; adding ANY extra unit-disk
        // worth of slack would violate Theorem 3, so the counts match phi.
        let c2 = fig1_two_star(0.02);
        let c3 = fig1_three_star(0.02);
        assert_eq!(c2.independent.len(), phi(c2.set.len()));
        assert_eq!(c3.independent.len(), phi(c3.set.len()));
    }

    #[test]
    fn theorem3_oracle_agrees_with_constructions() {
        let c = fig1_three_star(0.02);
        let check = crate::packing::check_theorem3(c.set[0], &c.set, &c.independent, 0.0).unwrap();
        assert_eq!(check.count, 12);
        assert!(check.holds);
        assert_eq!(check.bound, 12.0);
    }

    #[test]
    fn theorem6_oracle_agrees_with_chain() {
        let c = fig2_chain(9, 0.02);
        let check = crate::packing::check_theorem6(&c.set, &c.independent, 0.0).unwrap();
        assert_eq!(check.count, 30);
        assert!(check.holds);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn eps_out_of_range_panics() {
        let _ = fig1_two_star(0.2);
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn short_chain_panics() {
        let _ = fig2_chain(2, 0.02);
    }

    #[test]
    fn verify_catches_tampering() {
        let mut c = fig1_two_star(0.02);
        c.independent.push(Point::new(0.55, eps_tamper()));
        assert!(c.verify().is_err()); // cardinality + independence break
        let mut c2 = fig1_two_star(0.02);
        c2.advertised = 9;
        assert!(c2.verify().unwrap_err().contains("advertised"));
        let mut c3 = fig1_two_star(0.02);
        c3.independent[0] = Point::new(50.0, 50.0);
        assert!(c3.verify().unwrap_err().contains("escapes"));
    }

    fn eps_tamper() -> f64 {
        0.021
    }
}
