//! The BFS-ordered first-fit MIS of the paper's phase 1.

use mcds_graph::{traversal::BfsTree, RandomAccessGraph};

/// Runs the first-fit MIS scan over `order`: a node joins the MIS iff none
/// of its earlier-scanned neighbors already joined.
///
/// The output is always an independent set; it is *maximal* (and hence
/// dominating) iff `order` covers every node of the graph.
///
/// ```
/// use mcds_graph::Graph;
/// use mcds_mis::first_fit;
/// let g = Graph::path(5);
/// assert_eq!(first_fit(&g, &[0, 1, 2, 3, 4]), vec![0, 2, 4]);
/// assert_eq!(first_fit(&g, &[2, 0, 1, 3, 4]), vec![0, 2, 4]);
/// ```
pub fn first_fit<G: RandomAccessGraph>(g: &G, order: &[usize]) -> Vec<usize> {
    let n = g.num_nodes();
    let mut in_mis = vec![false; n];
    let mut blocked = vec![false; n];
    let mut mis = Vec::new();
    for &v in order {
        assert!(v < n, "order contains node {v} out of range");
        if blocked[v] || in_mis[v] {
            continue;
        }
        in_mis[v] = true;
        mis.push(v);
        for u in g.successors(v) {
            blocked[u] = true;
        }
    }
    mis.sort_unstable();
    mis
}

/// Phase-1 output of the paper's algorithms: the BFS spanning tree `T`
/// rooted at the leader, and the MIS `I` selected first-fit in the
/// `(level, id)` rank order of `T`.
///
/// Properties guaranteed on a connected graph (and asserted by this
/// crate's tests):
///
/// * `I` is a maximal independent set, hence a dominating set;
/// * the root belongs to `I` (it is scanned first);
/// * `I` has the 2-hop separation property the paper's Lemma 9 needs;
/// * every non-root member of `I` has a BFS parent adjacent to an
///   earlier-ranked member — the fact that makes the WAF connector set
///   work.
#[derive(Debug, Clone)]
pub struct BfsMis {
    tree: BfsTree,
    mis: Vec<usize>,
    rank: Vec<usize>,
}

impl BfsMis {
    /// Computes the BFS tree from `root` and the first-fit MIS in its
    /// `(level, id)` rank order.
    ///
    /// On a disconnected graph only the root's component is processed
    /// (matching the distributed protocol, which cannot reach other
    /// components); the MIS is maximal within that component.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn compute<G: RandomAccessGraph>(g: &G, root: usize) -> Self {
        let tree = BfsTree::rooted_at(g, root);
        let order = tree.rank_order();
        let mis = first_fit(g, &order);
        let mut rank = vec![usize::MAX; g.num_nodes()];
        for (r, &v) in order.iter().enumerate() {
            rank[v] = r;
        }
        BfsMis { tree, mis, rank }
    }

    /// The selected maximal independent set (sorted).  The paper calls
    /// these nodes *dominators*.
    pub fn mis(&self) -> &[usize] {
        &self.mis
    }

    /// The rooted BFS spanning tree `T`.
    pub fn tree(&self) -> &BfsTree {
        &self.tree
    }

    /// The scan rank of node `v` (position in the `(level, id)` order), or
    /// `None` if `v` was unreachable from the root.
    pub fn rank(&self, v: usize) -> Option<usize> {
        if self.rank[v] == usize::MAX {
            None
        } else {
            Some(self.rank[v])
        }
    }

    /// Number of dominators.
    pub fn len(&self) -> usize {
        self.mis.len()
    }

    /// Returns `true` if the MIS is empty (only possible on an empty
    /// scan).
    pub fn is_empty(&self) -> bool {
        self.mis.is_empty()
    }

    /// Returns `true` if `v` is a dominator.
    pub fn contains(&self, v: usize) -> bool {
        self.mis.binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::{properties, Graph};

    #[test]
    fn path_first_fit_takes_alternating_nodes() {
        let g = Graph::path(6);
        let r = BfsMis::compute(&g, 0);
        assert_eq!(r.mis(), &[0, 2, 4]);
        assert!(r.contains(0));
        assert!(!r.contains(1));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn root_is_always_selected() {
        for root in 0..5 {
            let g = Graph::cycle(5);
            let r = BfsMis::compute(&g, root);
            assert!(r.contains(root), "root {root}");
        }
    }

    #[test]
    fn mis_is_maximal_and_two_hop_separated_on_connected_graphs() {
        let graphs = [
            Graph::path(12),
            Graph::cycle(9),
            Graph::star(8),
            Graph::complete(6),
            Graph::from_edges(
                8,
                [
                    (0, 1),
                    (0, 2),
                    (1, 3),
                    (2, 4),
                    (3, 5),
                    (4, 6),
                    (5, 7),
                    (6, 7),
                ],
            ),
        ];
        for g in &graphs {
            let r = BfsMis::compute(g, 0);
            assert!(properties::is_maximal_independent_set(g, r.mis()), "{g:?}");
            assert!(properties::has_two_hop_separation(g, r.mis()), "{g:?}");
        }
    }

    #[test]
    fn parents_of_dominators_touch_earlier_dominators() {
        // The structural fact behind the WAF connectors: for each
        // dominator u (other than the root), its BFS parent is adjacent to
        // some dominator ranked before u.
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 4),
                (3, 5),
                (4, 6),
                (5, 7),
                (6, 8),
                (7, 9),
                (8, 9),
            ],
        );
        let r = BfsMis::compute(&g, 0);
        for &u in r.mis() {
            if u == r.tree().root() {
                continue;
            }
            let p = r.tree().parent(u).expect("non-root dominator has parent");
            let ok = g
                .neighbors_iter(p)
                .any(|w| r.contains(w) && r.rank(w).unwrap() < r.rank(u).unwrap());
            assert!(ok, "parent {p} of dominator {u} sees no earlier dominator");
        }
    }

    #[test]
    fn disconnected_graph_covers_root_component_only() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
        let r = BfsMis::compute(&g, 0);
        assert_eq!(r.mis(), &[0]);
        assert_eq!(r.rank(2), None);
        assert_eq!(r.rank(0), Some(0));
    }

    #[test]
    fn first_fit_empty_order_gives_empty_set() {
        let g = Graph::path(3);
        assert!(first_fit(&g, &[]).is_empty());
        let r = BfsMis::compute(&Graph::empty(1), 0);
        assert_eq!(r.mis(), &[0]);
        assert!(!r.is_empty());
    }

    #[test]
    fn duplicate_order_entries_are_harmless() {
        let g = Graph::path(4);
        assert_eq!(first_fit(&g, &[0, 0, 1, 2, 2, 3]), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn order_out_of_range_panics() {
        let g = Graph::path(2);
        let _ = first_fit(&g, &[5]);
    }
}
