//! Stars and the constructive star-decomposition of Lemma 4.
//!
//! A finite planar set `S` is a *star* if some point `v ∈ S` (the center)
//! has all of `S` inside its unit disk `D_v`.  Lemma 4 of the paper states
//! that any connected planar set of at least two points can be partitioned
//! into non-singleton stars, and its inductive proof is constructive —
//! [`star_decomposition`] is that construction, executable on real point
//! sets.  The decomposition drives the lifting of the star bound
//! (Theorem 3) to arbitrary connected sets (Theorem 6), and our E8
//! experiment uses it to evaluate the per-star packing slack.

use mcds_geom::{Point, EPS};
use mcds_udg::Udg;

/// A star within a point set, stored as indices into the original slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Star {
    center: usize,
    members: Vec<usize>,
}

impl Star {
    fn new(center: usize, mut members: Vec<usize>) -> Self {
        if !members.contains(&center) {
            members.push(center);
        }
        members.sort_unstable();
        Star { center, members }
    }

    /// The index of the center point (always a member).
    pub fn center(&self) -> usize {
        self.center
    }

    /// Member indices, sorted ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of points in the star.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always `false`: a star contains at least its center (present for
    /// the `len`/`is_empty` API convention).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` if the star has exactly one point.
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }

    /// Returns `true` if, in `points`, every member lies in the unit disk
    /// of the center.
    pub fn is_valid(&self, points: &[Point]) -> bool {
        let c = points[self.center];
        self.members.iter().all(|&m| points[m].dist(c) <= 1.0 + EPS)
    }
}

/// Computes a non-trivial star decomposition of a connected planar set of
/// `n ≥ 2` points, following the inductive construction in the proof of
/// Lemma 4.
///
/// Properties of the output (see [`verify_decomposition`]):
/// * the stars partition `0..points.len()`,
/// * every star is geometrically valid (members within the center's unit
///   disk),
/// * no star is a singleton.
///
/// # Errors
///
/// Returns an error if the points do not induce a connected UDG or if
/// `n < 2` (Lemma 4's hypotheses).
pub fn star_decomposition(points: &[Point]) -> Result<Vec<Star>, String> {
    if points.len() < 2 {
        return Err(format!(
            "star decomposition needs at least 2 points, got {}",
            points.len()
        ));
    }
    let udg = Udg::build(points.to_vec());
    if !udg.graph().is_connected() {
        return Err("point set does not induce a connected unit-disk graph".into());
    }
    let all: Vec<usize> = (0..points.len()).collect();
    Ok(decompose(points, &all))
}

/// Recursive body of Lemma 4's proof.  `active` is a connected subset with
/// `|active| ≥ 2`.
fn decompose(points: &[Point], active: &[usize]) -> Vec<Star> {
    debug_assert!(active.len() >= 2);
    if active.len() == 2 {
        // Two connected points form a 2-star centered at either.
        return vec![Star::new(active[0], active.to_vec())];
    }
    // Pick an arbitrary node v (the first) and split the rest into
    // connected components of the induced UDG.
    let v = active[0];
    let rest: Vec<usize> = active[1..].to_vec();
    let comps = components_of(points, &rest);

    let (singles, multis): (Vec<_>, Vec<_>) = comps.into_iter().partition(|c| c.len() == 1);

    let mut stars: Vec<Star> = Vec::new();
    for comp in &multis {
        stars.extend(decompose(points, comp));
    }

    if !singles.is_empty() {
        // Case 1: every singleton component is adjacent to v (otherwise
        // the original set was disconnected); they form a star around v.
        let mut members: Vec<usize> = singles.iter().map(|c| c[0]).collect();
        for &s in &members {
            debug_assert!(points[s].dist(points[v]) <= 1.0 + EPS);
        }
        members.push(v);
        stars.push(Star::new(v, members));
        return stars;
    }

    // Case 2: no singleton components.  Let u be a neighbor of v; find the
    // star S containing u in the decomposition built so far.
    let u = *rest
        .iter()
        .find(|&&u| points[u].dist(points[v]) <= 1.0 + EPS)
        .expect("connected set: v has a neighbor");
    let si = stars
        .iter()
        .position(|s| s.members().contains(&u))
        .expect("u belongs to some star");

    let s_in_du = stars[si]
        .members()
        .iter()
        .all(|&m| points[m].dist(points[u]) <= 1.0 + EPS);
    if s_in_du {
        // S ⊂ D_u: re-center at u and absorb v (v ∈ D_u since uv ≤ 1).
        let mut members = stars[si].members().to_vec();
        members.push(v);
        stars[si] = Star::new(u, members);
    } else {
        // S ⊄ D_u, hence |S| ≥ 3 and the center is not u: split off
        // {u, v} as a 2-star and shrink S.
        debug_assert!(stars[si].len() >= 3);
        debug_assert_ne!(stars[si].center(), u);
        let center = stars[si].center();
        let members: Vec<usize> = stars[si]
            .members()
            .iter()
            .copied()
            .filter(|&m| m != u)
            .collect();
        stars[si] = Star::new(center, members);
        stars.push(Star::new(u, vec![u, v]));
    }
    stars
}

/// Connected components (by unit-disk adjacency) of the subset `subset`.
fn components_of(points: &[Point], subset: &[usize]) -> Vec<Vec<usize>> {
    let sub_points: Vec<Point> = subset.iter().map(|&i| points[i]).collect();
    let udg = Udg::build(sub_points);
    mcds_graph::traversal::connected_components(udg.graph())
        .into_iter()
        .map(|comp| comp.into_iter().map(|local| subset[local]).collect())
        .collect()
}

/// Verifies the three Lemma-4 properties of a decomposition; returns the
/// first violation as an error message.
pub fn verify_decomposition(points: &[Point], stars: &[Star]) -> Result<(), String> {
    let mut seen = vec![false; points.len()];
    for (k, s) in stars.iter().enumerate() {
        if s.is_singleton() && points.len() >= 2 {
            return Err(format!("star {k} is a singleton"));
        }
        if !s.is_valid(points) {
            return Err(format!(
                "star {k} (center {}) has a member outside the center's unit disk",
                s.center()
            ));
        }
        for &m in s.members() {
            if m >= points.len() {
                return Err(format!("star {k} references out-of-range point {m}"));
            }
            if seen[m] {
                return Err(format!("point {m} appears in more than one star"));
            }
            seen[m] = true;
        }
    }
    if let Some(missing) = seen.iter().position(|&x| !x) {
        return Err(format!("point {missing} is not covered by any star"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn two_points_single_star() {
        let pts = chain(2, 0.9);
        let stars = star_decomposition(&pts).unwrap();
        assert_eq!(stars.len(), 1);
        assert_eq!(stars[0].len(), 2);
        verify_decomposition(&pts, &stars).unwrap();
    }

    #[test]
    fn chains_of_many_lengths_decompose() {
        for n in 2..40 {
            let pts = chain(n, 1.0);
            let stars = star_decomposition(&pts).unwrap();
            verify_decomposition(&pts, &stars).unwrap_or_else(|e| panic!("n={n}: {e}"));
            // Unit-spaced chain stars can hold at most 3 points
            // (center ± 1), so at least ⌈n/3⌉ stars.
            assert!(stars.len() >= n.div_ceil(3), "n={n}");
        }
    }

    #[test]
    fn dense_cluster_is_one_star_or_few() {
        // All points within 0.4 of the origin: everything fits one star.
        let pts: Vec<Point> = (0..10)
            .map(|i| Point::polar(Point::ORIGIN, 0.4, i as f64))
            .collect();
        let stars = star_decomposition(&pts).unwrap();
        verify_decomposition(&pts, &stars).unwrap();
        // Not necessarily a single star (the construction is greedy), but
        // every star must be big enough to be nontrivial.
        assert!(stars.iter().all(|s| s.len() >= 2));
    }

    #[test]
    fn t_shape_with_singleton_branches() {
        // A hub at origin with three leaves at distance 1 (removing the
        // hub leaves 3 singletons -> Case 1).
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let stars = star_decomposition(&pts).unwrap();
        verify_decomposition(&pts, &stars).unwrap();
        assert_eq!(stars.len(), 1);
        assert_eq!(stars[0].center(), 0);
        assert_eq!(stars[0].len(), 4);
    }

    #[test]
    fn disconnected_input_rejected() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        assert!(star_decomposition(&pts).is_err());
        assert!(star_decomposition(&[Point::ORIGIN]).is_err());
        assert!(star_decomposition(&[]).is_err());
    }

    #[test]
    fn grid_cluster_decomposes_validly() {
        let mut pts = Vec::new();
        for r in 0..5 {
            for c in 0..5 {
                pts.push(Point::new(c as f64 * 0.8, r as f64 * 0.8));
            }
        }
        let stars = star_decomposition(&pts).unwrap();
        verify_decomposition(&pts, &stars).unwrap();
        let covered: usize = stars.iter().map(|s| s.len()).sum();
        assert_eq!(covered, 25);
    }

    #[test]
    fn verify_catches_bad_decompositions() {
        let pts = chain(4, 1.0);
        // Missing point.
        let partial = vec![Star::new(0, vec![0, 1])];
        assert!(verify_decomposition(&pts, &partial).is_err());
        // Overlapping stars (both geometrically valid).
        let overlap = vec![Star::new(0, vec![0, 1]), Star::new(1, vec![1, 2])];
        assert!(verify_decomposition(&pts, &overlap)
            .unwrap_err()
            .contains("more than one"));
        // Geometrically invalid star (0 and 3 are 3 apart).
        let invalid = vec![Star::new(0, vec![0, 3]), Star::new(1, vec![1, 2])];
        assert!(verify_decomposition(&pts, &invalid)
            .unwrap_err()
            .contains("unit disk"));
        // Singleton star.
        let single = vec![
            Star::new(0, vec![0]),
            Star::new(1, vec![1, 2]),
            Star::new(3, vec![3]),
        ];
        assert!(verify_decomposition(&pts, &single)
            .unwrap_err()
            .contains("singleton"));
    }

    #[test]
    fn star_accessors() {
        let s = Star::new(2, vec![1, 3]);
        assert_eq!(s.center(), 2);
        assert_eq!(s.members(), &[1, 2, 3]); // center auto-included
        assert_eq!(s.len(), 3);
        assert!(!s.is_singleton());
    }
}
