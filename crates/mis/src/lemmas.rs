//! Empirical checkers for the appendix lemmas (Lemma 1 and Lemma 2).
//!
//! The paper's improved bounds rest on two geometric packing facts proved
//! in its appendix:
//!
//! * **Lemma 1** — if `ou ≤ 1` then `|I(o) △ I(u)| ≤ 7` for any
//!   independent `I` (the trivial argument only gives 8),
//! * **Lemma 2** — if `{u₁,u₂,u₃} ⊂ D_o` and some independent point of
//!   `I(o) \ {o}` escapes all three `I(u_j)`, then
//!   `|⋃ I(u_j) \ I(o)| ≤ 11` (the trivial bound is 12).
//!
//! These are theorems, not conjectures; the checkers here *stress* them
//! with randomized packings (experiment E9) — a reproduction cannot
//! re-prove geometry, but it can hammer the inequality with millions of
//! adversarial candidates and measure how close the extremes come.

use mcds_geom::packing::greedy_pack;
use mcds_geom::{Disk, Point};

/// Outcome of one randomized stress run against a lemma.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LemmaStress {
    /// Largest value of the bounded quantity observed.
    pub observed_max: usize,
    /// The lemma's bound.
    pub bound: usize,
    /// Number of packings tried.
    pub trials: usize,
}

impl LemmaStress {
    /// Whether every trial respected the bound.
    pub fn holds(&self) -> bool {
        self.observed_max <= self.bound
    }
}

/// `|I(o) △ I(u)|` for a concrete independent set.
pub fn symmetric_difference_count(o: Point, u: Point, independent: &[Point]) -> usize {
    let do_ = Disk::unit(o);
    let du = Disk::unit(u);
    independent
        .iter()
        .filter(|&&p| do_.contains(p) != du.contains(p))
        .count()
}

/// Stresses Lemma 1: for `trials` random center distances and candidate
/// shuffles (driven by `rand01`, a uniform-[0,1) source), packs an
/// independent set around the pair `o = (0,0)`, `u = (d, 0)` and measures
/// the symmetric difference.
///
/// `rand01` keeps this crate RNG-free; pass a closure over your seeded
/// generator.
pub fn stress_lemma1<F: FnMut() -> f64>(trials: usize, mut rand01: F) -> LemmaStress {
    let mut observed_max = 0usize;
    for _ in 0..trials {
        let d = 0.05 + 0.95 * rand01();
        let o = Point::ORIGIN;
        let u = Point::new(d, 0.0);
        // Candidates concentrated in D_o ∪ D_u, where the symmetric
        // difference lives; bias toward the lens boundaries.
        let mut candidates = Vec::with_capacity(260);
        for _ in 0..260 {
            let around = if rand01() < 0.5 { o } else { u };
            let r = (rand01()).sqrt(); // area-uniform radius in the disk
            let theta = rand01() * std::f64::consts::TAU;
            candidates.push(Point::polar(around, r, theta));
        }
        let independent = greedy_pack(&candidates);
        observed_max = observed_max.max(symmetric_difference_count(o, u, &independent));
    }
    LemmaStress {
        observed_max,
        bound: 7,
        trials,
    }
}

/// `|⋃_j I(u_j) \ I(o)|` for a concrete configuration.
pub fn union_minus_center_count(o: Point, us: &[Point; 3], independent: &[Point]) -> usize {
    let do_ = Disk::unit(o);
    independent
        .iter()
        .filter(|&&p| !do_.contains(p) && us.iter().any(|&u| Disk::unit(u).contains(p)))
        .count()
}

/// Whether Lemma 2's hypothesis holds: some independent point other than
/// `o` lies in `D_o` but escapes every `D_{u_j}`.
pub fn lemma2_hypothesis(o: Point, us: &[Point; 3], independent: &[Point]) -> bool {
    let do_ = Disk::unit(o);
    independent.iter().any(|&p| {
        p.dist(o) > 1e-12 && do_.contains(p) && us.iter().all(|&u| !Disk::unit(u).contains(p))
    })
}

/// Stresses Lemma 2 with random star configurations and packings.
///
/// Only trials satisfying the lemma's hypothesis count toward the
/// maximum; the returned `trials` is the number of *qualifying* trials.
pub fn stress_lemma2<F: FnMut() -> f64>(trials: usize, mut rand01: F) -> LemmaStress {
    let mut observed_max = 0usize;
    let mut qualifying = 0usize;
    for _ in 0..trials {
        let o = Point::ORIGIN;
        let mut us = [Point::ORIGIN; 3];
        for slot in &mut us {
            let r = 0.3 + 0.7 * rand01();
            let theta = rand01() * std::f64::consts::TAU;
            *slot = Point::polar(o, r, theta);
        }
        let mut candidates = Vec::with_capacity(360);
        for _ in 0..360 {
            let pick = (rand01() * 4.0) as usize;
            let around = if pick == 0 { o } else { us[pick.min(3) - 1] };
            let r = (rand01()).sqrt();
            let theta = rand01() * std::f64::consts::TAU;
            candidates.push(Point::polar(around, r, theta));
        }
        let independent = greedy_pack(&candidates);
        if lemma2_hypothesis(o, &us, &independent) {
            qualifying += 1;
            observed_max = observed_max.max(union_minus_center_count(o, &us, &independent));
        }
    }
    LemmaStress {
        observed_max,
        bound: 11,
        trials: qualifying,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift01(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn symmetric_difference_basics() {
        let o = Point::ORIGIN;
        let u = Point::new(0.8, 0.0);
        // One point near o only, one in the lens (both), one near u only.
        let ind = [
            Point::new(-0.9, 0.0),
            Point::new(0.4, 0.0),
            Point::new(1.7, 0.0),
        ];
        assert_eq!(symmetric_difference_count(o, u, &ind), 2);
        assert_eq!(symmetric_difference_count(o, u, &[]), 0);
    }

    #[test]
    fn lemma1_stress_holds() {
        let s = stress_lemma1(300, xorshift01(42));
        assert!(s.holds(), "observed {} > 7", s.observed_max);
        // The search is strong enough to find at least moderately large
        // symmetric differences.
        assert!(s.observed_max >= 4, "search too weak: {}", s.observed_max);
    }

    #[test]
    fn lemma2_stress_holds() {
        let s = stress_lemma2(300, xorshift01(43));
        assert!(s.holds(), "observed {} > 11", s.observed_max);
        assert!(s.trials > 0, "hypothesis never satisfied — search broken");
    }

    #[test]
    fn lemma2_hypothesis_detection() {
        let o = Point::ORIGIN;
        let us = [
            Point::new(0.5, 0.0),
            Point::new(0.0, 0.5),
            Point::new(-0.5, 0.0),
        ];
        // A point in D_o at distance > 1 from all three u_j: (0, -0.99)
        // has dist 1.11 to (0.5,0), 1.49 to (0,0.5)... wait (0,-0.99) to
        // (0,0.5) is 1.49, to (-0.5,0) is 1.11 — qualifies.
        let ind = [Point::new(0.0, -0.99)];
        assert!(lemma2_hypothesis(o, &us, &ind));
        // A lens point covered by u_1 does not qualify.
        let ind2 = [Point::new(0.6, 0.0)];
        assert!(!lemma2_hypothesis(o, &us, &ind2));
        assert!(!lemma2_hypothesis(o, &us, &[]));
    }
}
