//! `I(u)`, `I(S)` and the Section-II bound oracles over point sets.
//!
//! Given an independent point set `I` and a planar set `U`, the paper
//! writes `I(u) = I ∩ D_u` and `I(U) = ⋃_{u∈U} I(u)`.  These functions
//! compute those objects and check the paper's bounds on them — the
//! machinery behind experiments E1, E2 and E8.

use mcds_geom::packing::{connected_set_bound, is_independent, phi};
use mcds_geom::{Disk, Point};
use mcds_udg::Udg;

/// Indices of `independent` lying in the unit disk of `u` — the paper's
/// `I(u)`.
pub fn covered_by_point(u: Point, independent: &[Point]) -> Vec<usize> {
    Disk::unit(u).covered_indices(independent)
}

/// Indices of `independent` lying in the unit-disk neighborhood of `set` —
/// the paper's `I(U)`.
pub fn covered_by_set(set: &[Point], independent: &[Point]) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for &u in set {
        out.extend(covered_by_point(u, independent));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Outcome of checking one of the paper's packing bounds on a concrete
/// instance.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCheck {
    /// Number of independent points found in the neighborhood.
    pub count: usize,
    /// The bound the theorem allows.
    pub bound: f64,
    /// Whether the instance respects the bound.
    pub holds: bool,
}

/// Checks Theorem 3 on a star given by `(center, members)`: the number of
/// points of `independent` in the neighborhood of the star must be at most
/// `φ(n)`.
///
/// # Errors
///
/// Returns an error if `star` is not geometrically a star around `center`
/// (some member outside the center's unit disk) or if `independent` is not
/// an independent set (with `tol` slack as in
/// [`mcds_geom::packing::is_independent`]).
pub fn check_theorem3(
    center: Point,
    star: &[Point],
    independent: &[Point],
    tol: f64,
) -> Result<BoundCheck, String> {
    if !star.iter().all(|&m| center.dist(m) <= 1.0 + mcds_geom::EPS) {
        return Err("not a star: some member lies outside the center's unit disk".into());
    }
    if !is_independent(independent, tol) {
        return Err("candidate point set is not independent".into());
    }
    let count = covered_by_set(star, independent).len();
    let bound = phi(star.len()) as f64;
    Ok(BoundCheck {
        count,
        bound,
        holds: count as f64 <= bound,
    })
}

/// Checks the *refined* clause of Theorem 3: if `n ≤ 4` and every star
/// member `v` has `|I(v)| ≤ 4`, then the bound tightens to `φ(n) − 1`.
///
/// Returns the refined [`BoundCheck`] when the hypothesis applies, and
/// `Ok(None)` when it does not (star too big, or some member covers 5
/// independent points).
///
/// # Errors
///
/// Same contract as [`check_theorem3`].
pub fn check_theorem3_refined(
    center: Point,
    star: &[Point],
    independent: &[Point],
    tol: f64,
) -> Result<Option<BoundCheck>, String> {
    // Validate inputs exactly as the base oracle does.
    let base = check_theorem3(center, star, independent, tol)?;
    if star.len() > 4 {
        return Ok(None);
    }
    let max_cover = star
        .iter()
        .map(|&v| covered_by_point(v, independent).len())
        .max()
        .unwrap_or(0);
    if max_cover > 4 {
        return Ok(None);
    }
    let bound = base.bound - 1.0;
    Ok(Some(BoundCheck {
        count: base.count,
        bound,
        holds: base.count as f64 <= bound,
    }))
}

/// Checks Theorem 6 on a connected planar set: the number of points of
/// `independent` in its neighborhood must be at most `11n/3 + 1`.
///
/// # Errors
///
/// Returns an error if `set` has fewer than 2 points or does not induce a
/// connected UDG, or if `independent` is not independent (with `tol`
/// slack).
pub fn check_theorem6(
    set: &[Point],
    independent: &[Point],
    tol: f64,
) -> Result<BoundCheck, String> {
    if set.len() < 2 {
        return Err("Theorem 6 requires at least two points".into());
    }
    if !Udg::build(set.to_vec()).graph().is_connected() {
        return Err("set does not induce a connected unit-disk graph".into());
    }
    if !is_independent(independent, tol) {
        return Err("candidate point set is not independent".into());
    }
    let count = covered_by_set(set, independent).len();
    let bound = connected_set_bound(set.len());
    Ok(BoundCheck {
        count,
        bound,
        holds: count as f64 <= bound,
    })
}

/// Checks Lemma 5's telescoping inequality on a concrete decomposition:
/// for a star `S` of the decomposition of `V` (with no singleton star
/// elsewhere), `|I(V) \ I(S)| ≤ 11/3·|V \ S|`.
///
/// The lemma is what lifts the per-star bound (Theorem 3) to whole
/// connected sets (Theorem 6); this oracle lets tests and E8 hammer it
/// on real decompositions.
///
/// # Errors
///
/// Returns an error if `star_members` is not a subset of `0..set.len()`
/// or `independent` is not an independent set (with `tol` slack).
pub fn check_lemma5(
    set: &[Point],
    star_members: &[usize],
    independent: &[Point],
    tol: f64,
) -> Result<BoundCheck, String> {
    if star_members.iter().any(|&m| m >= set.len()) {
        return Err("star member index out of range".into());
    }
    if !is_independent(independent, tol) {
        return Err("candidate point set is not independent".into());
    }
    let star_points: Vec<Point> = star_members.iter().map(|&m| set[m]).collect();
    let in_star = covered_by_set(&star_points, independent);
    let in_all = covered_by_set(set, independent);
    let outside: usize = in_all
        .iter()
        .filter(|i| in_star.binary_search(i).is_err())
        .count();
    let bound = 11.0 / 3.0 * (set.len() - star_members.len()) as f64;
    Ok(BoundCheck {
        count: outside,
        bound,
        holds: outside as f64 <= bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covered_by_point_matches_disk() {
        let ind = [
            Point::new(0.5, 0.0),
            Point::new(2.0, 0.0),
            Point::new(-0.6, 0.5),
        ];
        assert_eq!(covered_by_point(Point::ORIGIN, &ind), vec![0, 2]);
    }

    #[test]
    fn covered_by_set_dedups() {
        let set = [Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        let ind = [Point::new(0.2, 0.0), Point::new(1.4, 0.0)];
        // 0.2 is covered by both set points; 1.4 only by the second.
        assert_eq!(covered_by_set(&set, &ind), vec![0, 1]);
    }

    #[test]
    fn theorem3_on_simple_star() {
        // 1-star at the origin with a pentagon of independent points.
        let ind: Vec<Point> = (0..5)
            .map(|k| Point::from_angle(k as f64 * std::f64::consts::TAU / 5.0))
            .collect();
        let check = check_theorem3(Point::ORIGIN, &[Point::ORIGIN], &ind, 0.0).unwrap();
        assert_eq!(check.count, 5);
        assert_eq!(check.bound, 5.0);
        assert!(check.holds);
    }

    #[test]
    fn theorem3_rejects_non_star_and_non_independent() {
        let far = [Point::ORIGIN, Point::new(2.0, 0.0)];
        assert!(check_theorem3(Point::ORIGIN, &far, &[], 0.0).is_err());
        let crowded = [Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        assert!(check_theorem3(Point::ORIGIN, &[Point::ORIGIN], &crowded, 0.0).is_err());
    }

    #[test]
    fn refined_theorem3_applies_and_tightens() {
        // Star {o} alone; 4 independent points in its disk -> refined
        // bound phi(1) - 1 = 4 applies and holds exactly.
        let ind: Vec<Point> = (0..4)
            .map(|k| Point::from_angle(k as f64 * std::f64::consts::TAU / 4.0 + 0.05))
            .collect();
        let refined = check_theorem3_refined(Point::ORIGIN, &[Point::ORIGIN], &ind, 0.0)
            .unwrap()
            .expect("hypothesis applies");
        assert_eq!(refined.count, 4);
        assert_eq!(refined.bound, 4.0);
        assert!(refined.holds);
        // With 5 independent points the hypothesis fails (some member
        // covers 5): refined oracle declines.
        let ind5: Vec<Point> = (0..5)
            .map(|k| Point::from_angle(k as f64 * std::f64::consts::TAU / 5.0))
            .collect();
        assert!(
            check_theorem3_refined(Point::ORIGIN, &[Point::ORIGIN], &ind5, 0.0)
                .unwrap()
                .is_none()
        );
        // A 5-star is outside the refined clause regardless.
        let big_star: Vec<Point> = (0..5)
            .map(|k| Point::polar(Point::ORIGIN, 0.5, k as f64))
            .collect();
        assert!(check_theorem3_refined(Point::ORIGIN, &big_star, &ind, 0.0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn theorem6_on_unit_chain() {
        let chain: Vec<Point> = (0..4).map(|i| Point::new(i as f64, 0.0)).collect();
        // A sparse independent set in the neighborhood.
        let ind = [
            Point::new(-1.0, 0.0),
            Point::new(0.5, 0.8),
            Point::new(2.0, -0.9),
            Point::new(4.0, 0.0),
        ];
        let check = check_theorem6(&chain, &ind, 0.0).unwrap();
        assert_eq!(check.count, 4);
        assert!(check.holds);
    }

    #[test]
    fn lemma5_on_chain_with_fig2_packing() {
        // Whole Fig. 2 instance; star = first two chain points.
        let c = crate::constructions::fig2_chain(6, 0.02);
        let chk = check_lemma5(&c.set, &[0, 1], &c.independent, 0.0).unwrap();
        assert!(chk.holds, "outside {} > bound {}", chk.count, chk.bound);
        // Degenerate star = whole set: nothing escapes, bound 0.
        let all: Vec<usize> = (0..c.set.len()).collect();
        let chk2 = check_lemma5(&c.set, &all, &c.independent, 0.0).unwrap();
        assert_eq!(chk2.count, 0);
        assert_eq!(chk2.bound, 0.0);
        assert!(chk2.holds);
    }

    #[test]
    fn lemma5_rejects_bad_inputs() {
        let set = [Point::ORIGIN, Point::new(1.0, 0.0)];
        assert!(check_lemma5(&set, &[5], &[], 0.0).is_err());
        let crowded = [Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        assert!(check_lemma5(&set, &[0], &crowded, 0.0).is_err());
    }

    #[test]
    fn theorem6_rejects_bad_inputs() {
        assert!(check_theorem6(&[Point::ORIGIN], &[], 0.0).is_err());
        let disconnected = [Point::ORIGIN, Point::new(9.0, 0.0)];
        assert!(check_theorem6(&disconnected, &[], 0.0).is_err());
    }
}
