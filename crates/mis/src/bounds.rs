//! The paper's numeric bounds, as checkable constants and functions.
//!
//! Everything here is a pure formula; the experiment harness (E3–E5)
//! evaluates them against measured `α`, `γ_c` and CDS sizes.

/// Coefficient of the paper's independence bound: `α(G) ≤ 11/3·γ_c(G) + 1`
/// (Corollary 7).
pub const ALPHA_COEFF: f64 = 11.0 / 3.0;

/// Additive constant of Corollary 7.
pub const ALPHA_CONST: f64 = 1.0;

/// The paper's bound on the WAF algorithm (Theorem 8):
/// `|I ∪ C| ≤ 7⅓·γ_c`.
pub const WAF_RATIO: f64 = 22.0 / 3.0;

/// The paper's bound on the new greedy algorithm (Theorem 10):
/// `|I ∪ C| ≤ 6 7/18·γ_c`.
pub const GREEDY_RATIO: f64 = 115.0 / 18.0;

/// Corollary 7's bound on the independence number given the connected
/// domination number, for connected UDGs with at least 2 nodes.
///
/// ```
/// assert_eq!(mcds_mis::bounds::alpha_upper_bound(3), 12.0);
/// ```
pub fn alpha_upper_bound(gamma_c: usize) -> f64 {
    ALPHA_COEFF * gamma_c as f64 + ALPHA_CONST
}

/// The prior bound `α ≤ 4·γ_c + 1` of Wan–Alzoubi–Frieder \[10\], which
/// Corollary 7 improves.
pub fn alpha_upper_bound_waf2004(gamma_c: usize) -> f64 {
    4.0 * gamma_c as f64 + 1.0
}

/// The prior bound `α ≤ 3.8·γ_c + 1.2` of Wu et al. \[12\], which
/// Corollary 7 improves.
pub fn alpha_upper_bound_wu2006(gamma_c: usize) -> f64 {
    3.8 * gamma_c as f64 + 1.2
}

/// The conjectured bound `α ≤ 3·γ_c + 3` from the paper's Section V
/// (implied by the conjecture that `3(n+1)` is the worst packing for
/// connected sets of `n ≥ 3` points) — *not* a proven result.
pub fn alpha_conjectured_bound(gamma_c: usize) -> f64 {
    3.0 * gamma_c as f64 + 3.0
}

/// The unproven `α ≤ 3.453·γ_c + 8.291` claim of Funke et al. \[7\] that
/// Section V demotes to a conjecture.
pub fn alpha_claimed_funke(gamma_c: usize) -> f64 {
    3.453 * gamma_c as f64 + 8.291
}

/// Theorem 8's guarantee on the WAF CDS size for a given `γ_c`
/// (`γ_c ≥ 1`).  The paper remarks the sharper `7⅓·γ_c − 1` also holds;
/// we report the headline bound.
pub fn waf_size_bound(gamma_c: usize) -> f64 {
    WAF_RATIO * gamma_c as f64
}

/// Theorem 10's guarantee on the greedy CDS size for a given `γ_c`.
pub fn greedy_size_bound(gamma_c: usize) -> f64 {
    GREEDY_RATIO * gamma_c as f64
}

/// The pre-paper WAF bound `|I ∪ C| ≤ 8·γ_c − 1` from \[10\].
pub fn waf_size_bound_2004(gamma_c: usize) -> f64 {
    8.0 * gamma_c as f64 - 1.0
}

/// The intermediate WAF bound `|I ∪ C| ≤ 7.6·γ_c + 1.4` from \[12\].
pub fn waf_size_bound_2006(gamma_c: usize) -> f64 {
    7.6 * gamma_c as f64 + 1.4
}

/// A cheap lower bound on `γ_c` from the hop diameter:
/// `γ_c ≥ diam(G) − 1` (a CDS must contain an internal path between the
/// two endpoints of any diametral pair).
pub fn gamma_lower_bound_from_diameter(diam: usize) -> usize {
    diam.saturating_sub(1)
}

/// The paper's own inverse bound: from `α(G) ≤ 11/3·γ_c + 1` it follows
/// that `γ_c ≥ ⌈3(α − 1)/11⌉`.  Useful as a `γ_c` lower bound on graphs
/// too large for the exact solver, given any independent set of size
/// `alpha` (a lower bound on `α` suffices).
pub fn gamma_lower_bound_from_alpha(alpha: usize) -> usize {
    if alpha <= 1 {
        // A single node can dominate everything.
        usize::from(alpha == 1)
    } else {
        (3 * (alpha - 1)).div_ceil(11)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_improves_prior_bounds() {
        for gc in 1..100 {
            assert!(alpha_upper_bound(gc) < alpha_upper_bound_wu2006(gc));
            assert!(alpha_upper_bound(gc) < alpha_upper_bound_waf2004(gc));
            assert!(waf_size_bound(gc) < waf_size_bound_2006(gc));
            // The 2004 bound is 8γ−1; the paper's 7⅓γ beats it from γ≥2.
            if gc >= 2 {
                assert!(waf_size_bound(gc) < waf_size_bound_2004(gc));
            }
            assert!(greedy_size_bound(gc) < waf_size_bound(gc));
        }
    }

    #[test]
    fn headline_constants() {
        assert!((WAF_RATIO - 7.0 - 1.0 / 3.0).abs() < 1e-12);
        assert!((GREEDY_RATIO - 6.0 - 7.0 / 18.0).abs() < 1e-12);
        assert!((alpha_upper_bound(1) - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_lower_bounds() {
        assert_eq!(gamma_lower_bound_from_diameter(0), 0);
        assert_eq!(gamma_lower_bound_from_diameter(1), 0);
        assert_eq!(gamma_lower_bound_from_diameter(5), 4);
        assert_eq!(gamma_lower_bound_from_alpha(0), 0);
        assert_eq!(gamma_lower_bound_from_alpha(1), 1);
        // α = 12 -> γ_c ≥ ⌈33/11⌉ = 3.
        assert_eq!(gamma_lower_bound_from_alpha(12), 3);
        // Inverse consistency: γ_c from the bound never exceeds the γ
        // that generated α at the bound.
        for gc in 1..50usize {
            let alpha = alpha_upper_bound(gc).floor() as usize;
            assert!(gamma_lower_bound_from_alpha(alpha) <= gc);
        }
    }

    #[test]
    fn conjectured_bounds_are_looser_than_nothing() {
        // The Section-V conjecture matches Corollary 7 at γ_c = 3 and is
        // strictly stronger (smaller) beyond.
        assert_eq!(alpha_conjectured_bound(3), alpha_upper_bound(3));
        for gc in 4..50 {
            assert!(alpha_conjectured_bound(gc) < alpha_upper_bound(gc));
        }
        // Funke et al.'s claim beats Corollary 7 only for large γ_c.
        assert!(alpha_claimed_funke(2) > alpha_upper_bound(2));
        assert!(alpha_claimed_funke(50) < alpha_upper_bound(50));
    }
}
