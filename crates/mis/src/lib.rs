//! Maximal-independent-set machinery for the two-phased CDS algorithms.
//!
//! Phase 1 of both algorithms in the paper (the WAF algorithm of Section
//! III and the new greedy algorithm of Section IV) selects a maximal
//! independent set (MIS) *"in the first-fit manner in the
//! breadth-first-search ordering"* of a rooted spanning tree.  This crate
//! implements that selection ([`first_fit`], [`BfsMis`]) together with the
//! comparison MIS variants used by the baseline algorithms, and the
//! geometric machinery of the paper's Sections II and V:
//!
//! * [`first_fit`] / [`BfsMis`] — the canonical BFS-ordered first-fit MIS
//!   with the 2-hop separation property (used by Lemma 9),
//! * [`variants`] — lexicographic, max-degree-greedy, and caller-ordered
//!   MIS constructions for the baselines of \[1\]/\[9\],
//! * [`stars`] — stars and the constructive star-decomposition of
//!   Lemma 4,
//! * [`packing`] — `I(u)`, `I(S)` and the Theorem 3 / Theorem 6 bound
//!   oracles over point sets,
//! * [`constructions`] — the tightness instances of Figures 1 and 2
//!   (8 points around a 2-star, 12 around a 3-star, `3(n+1)` around an
//!   `n`-chain),
//! * [`bounds`] — the numeric constants of the paper
//!   (`α ≤ 11/3·γ_c + 1`, ratio bounds `7⅓` and `6 7/18`, and the prior
//!   bounds they improve).
//!
//! # Example
//!
//! ```
//! use mcds_graph::{Graph, properties};
//! use mcds_mis::BfsMis;
//!
//! let g = Graph::path(7);
//! let result = BfsMis::compute(&g, 0);
//! assert!(properties::is_maximal_independent_set(&g, result.mis()));
//! assert!(properties::has_two_hop_separation(&g, result.mis()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod firstfit;

pub mod bounds;
pub mod constructions;
pub mod lemmas;
pub mod packing;
pub mod stars;
pub mod variants;

pub use firstfit::{first_fit, BfsMis};
