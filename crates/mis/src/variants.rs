//! Comparison MIS constructions for the baseline algorithms.
//!
//! The algorithms of \[1\] (Alzoubi–Wan–Frieder, Mobihoc 2002) and \[9\]
//! (Stojmenović et al.) select an *arbitrary* MIS rather than the
//! BFS-ordered one; these variants realize the natural arbitrary choices.
//! All of them are thin wrappers over [`crate::first_fit`] with different
//! scan orders, so the independence/maximality invariants are inherited.

use mcds_graph::RandomAccessGraph;

use crate::first_fit;

/// MIS by scanning nodes in increasing id (lexicographic first-fit).
///
/// The canonical "arbitrary" MIS: deterministic but oblivious to the
/// topology.
///
/// ```
/// use mcds_graph::{Graph, properties};
/// use mcds_mis::variants::lexicographic_mis;
/// let g = Graph::cycle(7);
/// let mis = lexicographic_mis(&g);
/// assert!(properties::is_maximal_independent_set(&g, &mis));
/// ```
pub fn lexicographic_mis<G: RandomAccessGraph>(g: &G) -> Vec<usize> {
    let order: Vec<usize> = (0..g.num_nodes()).collect();
    first_fit(g, &order)
}

/// MIS by scanning nodes in decreasing degree (ties toward smaller id).
///
/// Heuristically favors large-coverage dominators; the static analogue of
/// greedy independent domination.
pub fn max_degree_mis<G: RandomAccessGraph>(g: &G) -> Vec<usize> {
    let mut order: Vec<usize> = (0..g.num_nodes()).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    first_fit(g, &order)
}

/// MIS by scanning nodes in increasing degree (ties toward smaller id).
///
/// The adversarially *bad* order for UDGs — tends to pick boundary nodes —
/// used in experiments to show the spread between MIS choices.
pub fn min_degree_mis<G: RandomAccessGraph>(g: &G) -> Vec<usize> {
    let mut order: Vec<usize> = (0..g.num_nodes()).collect();
    order.sort_by_key(|&v| (g.degree(v), v));
    first_fit(g, &order)
}

/// MIS in a caller-supplied scan order (e.g. a random permutation from the
/// experiment harness, keeping this crate free of RNG dependencies).
///
/// # Panics
///
/// Panics if `order` contains an out-of-range node.
pub fn ordered_mis<G: RandomAccessGraph>(g: &G, order: &[usize]) -> Vec<usize> {
    first_fit(g, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::{properties, Graph};

    fn bipartite_double_star() -> Graph {
        // Two hubs (0, 1) joined, each with 4 leaves.
        Graph::from_edges(
            10,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 6),
                (1, 7),
                (1, 8),
                (1, 9),
            ],
        )
    }

    #[test]
    fn all_variants_produce_valid_mis() {
        let graphs = [
            Graph::path(9),
            Graph::cycle(8),
            Graph::complete(5),
            bipartite_double_star(),
            Graph::empty(4),
        ];
        for g in &graphs {
            for (name, mis) in [
                ("lex", lexicographic_mis(g)),
                ("maxdeg", max_degree_mis(g)),
                ("mindeg", min_degree_mis(g)),
            ] {
                assert!(
                    properties::is_maximal_independent_set(g, &mis),
                    "{name} on {g:?}"
                );
            }
        }
    }

    #[test]
    fn degree_orders_differ_on_double_star() {
        let g = bipartite_double_star();
        // Max-degree picks the two hubs... hubs are adjacent, so picks one
        // hub + the other side's leaves.
        let maxd = max_degree_mis(&g);
        assert!(maxd.contains(&0));
        assert!(!maxd.contains(&1));
        assert_eq!(maxd.len(), 5); // hub 0 + leaves 6..=9
                                   // Min-degree picks all 8 leaves.
        let mind = min_degree_mis(&g);
        assert_eq!(mind.len(), 8);
    }

    #[test]
    fn ordered_mis_respects_order() {
        let g = Graph::path(5);
        assert_eq!(ordered_mis(&g, &[4, 3, 2, 1, 0]), vec![0, 2, 4]);
        assert_eq!(ordered_mis(&g, &[1, 0, 2, 3, 4]), vec![1, 3]);
    }

    #[test]
    fn empty_graph_yields_empty_mis() {
        let g = Graph::empty(0);
        assert!(lexicographic_mis(&g).is_empty());
        assert!(max_degree_mis(&g).is_empty());
        assert!(min_degree_mis(&g).is_empty());
    }
}
