//! Property-based tests for the MIS machinery and Section-II geometry.

// Property tests need the external `proptest` crate, which is not
// available in hermetic (offline) builds; enable with
// `cargo test --features ext-tests` after restoring the dependency in
// the workspace manifest.
#![cfg(feature = "ext-tests")]

use mcds_geom::packing::{is_independent, phi};
use mcds_geom::Point;
use mcds_graph::{properties, Graph};
use mcds_mis::packing::{check_theorem3, covered_by_point, covered_by_set};
use mcds_mis::stars::{star_decomposition, verify_decomposition};
use mcds_mis::{first_fit, variants, BfsMis};
use mcds_udg::Udg;
use proptest::prelude::*;

fn points_strategy(max_n: usize, scale: f64) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0i64..1000, 0i64..1000).prop_map(move |(x, y)| {
            Point::new(x as f64 / 1000.0 * scale, y as f64 / 1000.0 * scale)
        }),
        1..max_n,
    )
}

fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 3))
            .prop_map(move |pairs| Graph::from_edges(n, pairs.into_iter().filter(|(u, v)| u != v)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn first_fit_output_is_independent_for_any_order(g in graph_strategy(24), perm_seed in 0u64..1000) {
        // Derive a permutation from the seed.
        let n = g.num_nodes();
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = perm_seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mis = first_fit(&g, &order);
        prop_assert!(properties::is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn mis_variants_agree_on_validity(g in graph_strategy(24)) {
        for mis in [
            variants::lexicographic_mis(&g),
            variants::max_degree_mis(&g),
            variants::min_degree_mis(&g),
        ] {
            prop_assert!(properties::is_maximal_independent_set(&g, &mis));
        }
    }

    #[test]
    fn bfs_mis_two_hop_separation_on_connected(g in graph_strategy(20)) {
        prop_assume!(g.is_connected());
        let r = BfsMis::compute(&g, 0);
        prop_assert!(properties::is_maximal_independent_set(&g, r.mis()));
        prop_assert!(properties::has_two_hop_separation(&g, r.mis()));
    }

    #[test]
    fn star_decomposition_valid_on_connected_point_sets(pts in points_strategy(30, 3.0)) {
        let udg = Udg::build(pts.clone());
        prop_assume!(pts.len() >= 2 && udg.graph().is_connected());
        let stars = star_decomposition(&pts).expect("connected set");
        prop_assert!(verify_decomposition(&pts, &stars).is_ok());
        // Theorem 3 per star: the members of a k-star can themselves be
        // covered by phi(k)... sanity: star sizes in 2..=n.
        for s in &stars {
            prop_assert!(s.len() >= 2);
        }
    }

    #[test]
    fn covered_by_set_is_union_of_covered_by_point(pts in points_strategy(12, 2.0), ind in points_strategy(20, 4.0)) {
        let by_set = covered_by_set(&pts, &ind);
        let mut by_union: Vec<usize> = pts
            .iter()
            .flat_map(|&u| covered_by_point(u, &ind))
            .collect();
        by_union.sort_unstable();
        by_union.dedup();
        prop_assert_eq!(by_set, by_union);
    }

    #[test]
    fn theorem3_holds_on_random_stars(center in (0i64..100, 0i64..100), spokes in proptest::collection::vec((0i64..1000, 0i64..1000), 0..5), cand in points_strategy(60, 4.0)) {
        let c = Point::new(center.0 as f64 / 100.0, center.1 as f64 / 100.0);
        // Star members within the unit disk of c.
        let mut star = vec![c];
        for (r, t) in spokes {
            let radius = r as f64 / 1000.0;
            let theta = t as f64 / 1000.0 * std::f64::consts::TAU;
            star.push(Point::polar(c, radius, theta));
        }
        // Pack an independent set from the candidates.
        let ind = mcds_geom::packing::greedy_pack(&cand);
        prop_assert!(is_independent(&ind, 0.0));
        let chk = check_theorem3(c, &star, &ind, 0.0).expect("valid star & independent set");
        prop_assert!(chk.holds, "Theorem 3 violated: {} > phi({}) = {}",
            chk.count, star.len(), phi(star.len()));
    }
}
