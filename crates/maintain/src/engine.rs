//! The maintenance engine: incremental backbone repair under churn.
//!
//! [`Maintainer`] holds the live population (stable [`NodeId`]s with
//! positions) and the current backbone (dominators + connectors, the
//! two-phased structure of the paper).  Each [`Maintainer::apply`] call
//! mutates the topology by one [`TopologyEvent`] and repairs the backbone:
//!
//! 1. **Local MIS re-election** — dominators are repaired first-fit
//!    inside the event's 2-hop damage region only: adjacent dominator
//!    pairs (created by motion/joins) are resolved toward the smaller id,
//!    then undominated nodes are promoted in id order.  Outside the
//!    region nothing changes, mirroring how a distributed protocol would
//!    localize the update.
//! 2. **Confined connector patch** — if `G[I ∪ C]` fell apart, the
//!    paper's Section-IV max-gain greedy runs with candidates confined to
//!    the damaged region.
//! 3. **Fallback** — when the confined greedy stalls, the repaired set
//!    fails verification, or its size drifts past
//!    [`MaintainConfig::drift_threshold`] × the fresh
//!    [`mcds_cds::greedy_cds`] baseline, the engine recomputes from
//!    scratch and adopts the fresh backbone.
//!
//! Every event yields a [`RepairReport`] (locality, role deltas,
//! decision, size vs. baseline, wall time), and every maintained set is
//! checked against
//! [`mcds_graph::properties::is_connected_dominating_set`].
//!
//! # Fault tolerance
//!
//! With [`MaintainConfig::m`] above 1 the engine maintains a `(1, m)`
//! backbone instead (see [`mcds_cds::fault`]): every giant-component
//! node outside the backbone keeps at least `m` backbone neighbors, so
//! single dominator deaths — and the correlated bursts of
//! [`crate::FaultGen`] — tend to leave coverage intact.  Each report
//! counts the contract [`RepairReport::violations`] the event caused
//! *before* repair, which is the robustness metric experiment E22
//! compares across `m`.  Fallbacks to a full recompute are visible in
//! the reason-tagged `maintain.recompute.*` counters of [`mcds_obs`].

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use mcds_cds::{Algorithm, Solver};
use mcds_geom::Point;
use mcds_graph::{node_mask, properties, subsets, traversal, Graph};
use mcds_udg::mobility::survival_fraction;
use mcds_udg::Udg;

use crate::event::{NodeId, TopologyEvent};

/// Tunables of the maintenance engine.
#[derive(Debug, Clone, Copy)]
pub struct MaintainConfig {
    /// Communication radius of the unit-disk model (the paper normalizes
    /// to 1.0).
    pub radius: f64,
    /// Recompute from scratch when `maintained size / baseline size`
    /// exceeds this factor.  Values `≥ 1`; the differential test suite
    /// relies on this staying `≤ 2`.
    pub drift_threshold: f64,
    /// Re-verify the maintained set after every event and fall back to a
    /// recompute if verification fails (cheap; leave on outside of
    /// benchmarks chasing the last microsecond).
    pub verify: bool,
    /// Domination multiplicity of the maintained backbone: nodes outside
    /// it must keep at least `m` backbone neighbors (`1..=3`).  `1` is
    /// the paper's classic CDS; `2` and `3` are the fault-tolerant
    /// `(1, m)` contracts of [`mcds_cds::fault`].
    pub m: usize,
}

impl Default for MaintainConfig {
    fn default() -> Self {
        MaintainConfig {
            radius: 1.0,
            drift_threshold: 1.75,
            verify: true,
            m: 1,
        }
    }
}

/// Why the engine abandoned local repair for a full recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecomputeReason {
    /// No previous backbone existed (first event, or the backbone's
    /// component vanished entirely).
    ColdStart,
    /// The confined max-gain greedy could not merge the remaining
    /// components (the damage exceeded the local candidate pool).
    Stalled,
    /// The locally repaired set failed CDS verification.
    Invalid,
    /// The repaired set was valid but drifted past
    /// [`MaintainConfig::drift_threshold`] × the fresh baseline.
    Drift,
}

impl RecomputeReason {
    /// Stable lowercase label — the suffix of the reason-tagged
    /// `maintain.recompute.*` counters and the CSV value experiments
    /// emit.
    pub fn name(self) -> &'static str {
        match self {
            RecomputeReason::ColdStart => "cold_start",
            RecomputeReason::Stalled => "stalled",
            RecomputeReason::Invalid => "invalid",
            RecomputeReason::Drift => "drift",
        }
    }
}

/// Bumps both the aggregate `maintain.recomputed` counter and the
/// reason-tagged `maintain.recompute.<reason>` counter, so traces show
/// *why* local repair degraded to a recompute.
fn count_recompute(reason: RecomputeReason) {
    mcds_obs::counter!("maintain.recomputed");
    match reason {
        RecomputeReason::ColdStart => mcds_obs::counter!("maintain.recompute.cold_start"),
        RecomputeReason::Stalled => mcds_obs::counter!("maintain.recompute.stalled"),
        RecomputeReason::Invalid => mcds_obs::counter!("maintain.recompute.invalid"),
        RecomputeReason::Drift => mcds_obs::counter!("maintain.recompute.drift"),
    }
}

/// The repair-vs-recompute outcome of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairDecision {
    /// Local repair succeeded; the previous backbone was patched in
    /// place.
    Repaired,
    /// The engine recomputed from scratch with [`mcds_cds::greedy_cds`].
    Recomputed(RecomputeReason),
}

/// Per-event accounting emitted by [`Maintainer::apply`].
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Event sequence number (0-based).
    pub seq: usize,
    /// The applied event (joins carry the id the engine assigned).
    pub event: TopologyEvent,
    /// The id assigned to a join, echoed for all event kinds.
    pub node: NodeId,
    /// Population size after the event.
    pub alive: usize,
    /// Size of the giant component the backbone serves.
    pub giant: usize,
    /// Nodes in the damage region the local repair inspected — the
    /// *repair locality* (0 for recomputes decided before repair).
    pub nodes_touched: usize,
    /// Giant-component nodes left undominated — outside the surviving
    /// backbone with no backbone neighbor — immediately after the event,
    /// *before* any repair ran.  Measured the same way for every
    /// [`MaintainConfig::m`] so traces are comparable across `m`: a
    /// valid `(1, m ≥ 2)` backbone keeps this at zero through any
    /// single failure.  The headline robustness metric of experiment
    /// E22.
    pub violations: usize,
    /// Dominators promoted by this event.
    pub dominators_added: usize,
    /// Dominators demoted or lost by this event.
    pub dominators_removed: usize,
    /// Connectors added by this event.
    pub connectors_added: usize,
    /// Connectors dropped by this event.
    pub connectors_removed: usize,
    /// Repair-vs-recompute decision.
    pub decision: RepairDecision,
    /// Maintained CDS size on the giant component after the event
    /// (backbone remnants preserved for minor components are excluded —
    /// the baseline serves the giant alone, so this is the comparable
    /// number).
    pub cds_size: usize,
    /// Fresh [`mcds_cds::greedy_cds`] size on the same snapshot.
    pub baseline_size: usize,
    /// Fraction of the previous backbone surviving into the new one
    /// (1.0 when there was no previous backbone).
    pub survival: f64,
    /// Wall-clock time spent applying the event (repair + verification,
    /// excluding the baseline solve).
    pub wall: Duration,
    /// Whether the maintained set passed CDS verification on the new
    /// snapshot (always checked, even with `verify` off — `verify` only
    /// controls whether a failure triggers the fallback).
    pub valid: bool,
}

impl RepairReport {
    /// Maintained size over fresh-baseline size (1.0 when both are
    /// empty).
    pub fn size_ratio(&self) -> f64 {
        if self.baseline_size == 0 {
            1.0
        } else {
            self.cds_size as f64 / self.baseline_size as f64
        }
    }

    /// The degraded-mode reason when the engine fell back to a full
    /// recompute, `None` for local repairs.
    pub fn fallback(&self) -> Option<RecomputeReason> {
        match self.decision {
            RepairDecision::Recomputed(reason) => Some(reason),
            RepairDecision::Repaired => None,
        }
    }
}

/// The event-driven CDS maintenance engine.
///
/// ```
/// use mcds_geom::Point;
/// use mcds_maintain::{MaintainConfig, Maintainer, TopologyEvent};
///
/// // A 3-node chain: the first-fit MIS takes both endpoints and the
/// // middle node connects them, so every node has a backbone role.
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0), Point::new(1.6, 0.0)];
/// let mut engine = Maintainer::with_population(MaintainConfig::default(), pts);
/// assert_eq!(engine.backbone(), vec![0, 1, 2]);
///
/// // A fourth node joins at the far end; the maintained set stays a CDS.
/// let report = engine.apply(TopologyEvent::Join { pos: Point::new(2.4, 0.0) });
/// assert!(report.valid);
/// assert_eq!(report.alive, 4);
/// assert!(report.size_ratio() <= 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Maintainer {
    cfg: MaintainConfig,
    next_id: NodeId,
    nodes: BTreeMap<NodeId, Point>,
    /// Backbone roles as stable ids (sorted, disjoint).
    dominators: Vec<NodeId>,
    connectors: Vec<NodeId>,
    events_applied: usize,
}

/// One dense snapshot of the live topology restricted to its giant
/// component, with the id translation tables the repair needs.
struct Snapshot {
    /// `ids[local] = stable id` over the giant component, ascending.
    ids: Vec<NodeId>,
    /// The giant-component graph over `ids`.
    graph: Graph,
}

impl Snapshot {
    fn local(&self, id: NodeId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }
}

impl Maintainer {
    /// Creates an engine with no nodes.
    ///
    /// # Panics
    ///
    /// Panics if the configured radius is not positive and finite, or the
    /// drift threshold is below 1.
    pub fn new(cfg: MaintainConfig) -> Self {
        assert!(
            cfg.radius.is_finite() && cfg.radius > 0.0,
            "radius must be positive and finite, got {}",
            cfg.radius
        );
        assert!(
            cfg.drift_threshold >= 1.0,
            "drift threshold below 1 would recompute every event, got {}",
            cfg.drift_threshold
        );
        assert!(
            (1..=3).contains(&cfg.m),
            "m must be in 1..=3, got {}",
            cfg.m
        );
        Maintainer {
            cfg,
            next_id: 0,
            nodes: BTreeMap::new(),
            dominators: Vec::new(),
            connectors: Vec::new(),
            events_applied: 0,
        }
    }

    /// Creates an engine seeded with a whole population at once (ids
    /// `0..points.len()`) and an initial backbone computed from scratch.
    pub fn with_population(cfg: MaintainConfig, points: Vec<Point>) -> Self {
        let mut engine = Maintainer::new(cfg);
        for p in points {
            let id = engine.next_id;
            engine.next_id += 1;
            engine.nodes.insert(id, p);
        }
        if let Some(snap) = engine.snapshot() {
            engine.adopt_fresh(&snap);
        }
        engine
    }

    /// The engine configuration.
    pub fn config(&self) -> &MaintainConfig {
        &self.cfg
    }

    /// Live nodes as `(stable id, position)`, ascending by id — the shape
    /// [`crate::ChurnGen::next_event`] consumes.
    pub fn alive(&self) -> Vec<(NodeId, Point)> {
        self.nodes.iter().map(|(&id, &p)| (id, p)).collect()
    }

    /// Number of live nodes.
    pub fn population(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `node` is currently alive.  [`Maintainer::apply`] panics
    /// on a `Leave`/`Move` of a dead node, so admission layers (the
    /// `mcds-serve` churn queue) check here first and reject instead.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.contains_key(&node)
    }

    /// The position of a live node, or `None` when it is dead.
    pub fn position(&self, node: NodeId) -> Option<Point> {
        self.nodes.get(&node).copied()
    }

    /// The maintained backbone (dominators ∪ connectors) as sorted stable
    /// ids.
    pub fn backbone(&self) -> Vec<NodeId> {
        let mut all = self.dominators.clone();
        all.extend(self.connectors.iter().copied());
        all.sort_unstable();
        all
    }

    /// The phase-1 dominators (sorted stable ids).
    pub fn dominators(&self) -> &[NodeId] {
        &self.dominators
    }

    /// The phase-2 connectors (sorted stable ids, disjoint from the
    /// dominators).
    pub fn connectors(&self) -> &[NodeId] {
        &self.connectors
    }

    /// Rebuilds the dense giant-component snapshot, or `None` when no
    /// nodes are alive.
    fn snapshot(&self) -> Option<Snapshot> {
        if self.nodes.is_empty() {
            return None;
        }
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        let pts: Vec<Point> = ids.iter().map(|id| self.nodes[id]).collect();
        let udg = Udg::with_radius(pts, self.cfg.radius);
        let giant = traversal::largest_component(udg.graph());
        let giant_ids: Vec<NodeId> = giant.iter().map(|&i| ids[i]).collect();
        let sub = udg.restricted_to(&giant);
        Some(Snapshot {
            ids: giant_ids,
            graph: sub.graph().clone(),
        })
    }

    /// Backbone nodes living on the snapshot's giant component.
    fn giant_backbone_size(&self, snap: &Snapshot) -> usize {
        self.backbone()
            .iter()
            .filter(|&&id| snap.local(id).is_some())
            .count()
    }

    /// Replaces the backbone with a fresh greedy CDS of the snapshot
    /// (the `(1, m)` variant when [`MaintainConfig::m`] is above 1),
    /// returning its size.
    fn adopt_fresh(&mut self, snap: &Snapshot) -> usize {
        let cds = Solver::new(Algorithm::GreedyConnect)
            .m(self.cfg.m)
            .solve(&snap.graph)
            .expect("giant component is connected and non-empty")
            .into_cds();
        self.dominators = cds.dominators().iter().map(|&v| snap.ids[v]).collect();
        self.connectors = cds.connectors().iter().map(|&v| snap.ids[v]).collect();
        cds.len()
    }

    /// Applies one topology event, repairs the backbone, and reports.
    ///
    /// # Panics
    ///
    /// Panics if a `Leave`/`Move` references a dead node, or a position is
    /// non-finite.
    pub fn apply(&mut self, event: TopologyEvent) -> RepairReport {
        let _apply_span = mcds_obs::span("maintain.apply");
        mcds_obs::counter!("maintain.events");
        let started = Instant::now();
        let prev_backbone = self.backbone();
        let seq = self.events_applied;
        self.events_applied += 1;

        // 1. Mutate the population, collecting the stable ids whose
        //    neighborhoods changed (the damage seeds).
        let (node, seeds) = self.mutate(&event);

        // 2. Dense giant-component snapshot + fresh baseline.
        let Some(snap) = self.snapshot() else {
            // Population emptied out: the empty backbone is trivially
            // valid for the empty graph.
            self.dominators.clear();
            self.connectors.clear();
            count_recompute(RecomputeReason::ColdStart);
            return RepairReport {
                seq,
                event,
                node,
                alive: 0,
                giant: 0,
                nodes_touched: 0,
                violations: 0,
                dominators_added: 0,
                dominators_removed: prev_backbone.len(),
                connectors_added: 0,
                connectors_removed: 0,
                decision: RepairDecision::Recomputed(RecomputeReason::ColdStart),
                cds_size: 0,
                baseline_size: 0,
                survival: if prev_backbone.is_empty() { 1.0 } else { 0.0 },
                wall: started.elapsed(),
                valid: true,
            };
        };
        let baseline_size = Solver::new(Algorithm::GreedyConnect)
            .m(self.cfg.m)
            .solve(&snap.graph)
            .expect("giant component is connected and non-empty")
            .len();

        // Coverage damage before repair: how many giant nodes the
        // surviving backbone leaves undominated.  Measured against plain
        // domination (m = 1) for every engine so E22 can compare the
        // same failure trace across m; a valid (1, m ≥ 2) backbone
        // absorbs any single death with zero violations.
        let violations = {
            let mask = local_backbone_mask(&snap, &self.dominators, &self.connectors);
            coverage_violations(&snap.graph, &mask, 1)
        };

        // 3. Map the surviving backbone into the snapshot and repair.
        let prev_dom: Vec<NodeId> = self.dominators.clone();
        let prev_con: Vec<NodeId> = self.connectors.clone();
        let had_backbone = !prev_backbone.is_empty();
        let (decision, nodes_touched) = if !had_backbone {
            (RepairDecision::Recomputed(RecomputeReason::ColdStart), 0)
        } else {
            match self.repair_local(&snap, &seeds) {
                Ok(touched) => {
                    // Drift is judged on the giant component only — the
                    // baseline serves it alone, and backbone remnants
                    // preserved for minor components must not count
                    // against the repair.
                    let giant_size = self.giant_backbone_size(&snap);
                    let ratio = if baseline_size == 0 {
                        1.0
                    } else {
                        giant_size as f64 / baseline_size as f64
                    };
                    if ratio > self.cfg.drift_threshold {
                        (RepairDecision::Recomputed(RecomputeReason::Drift), touched)
                    } else {
                        (RepairDecision::Repaired, touched)
                    }
                }
                Err(reason) => (RepairDecision::Recomputed(reason), 0),
            }
        };
        if let RepairDecision::Recomputed(_) = decision {
            self.adopt_fresh(&snap);
        }
        match decision {
            RepairDecision::Repaired => {
                mcds_obs::counter!("maintain.repaired");
                mcds_obs::observe("maintain.damage_region", nodes_touched as u64);
            }
            RepairDecision::Recomputed(reason) => count_recompute(reason),
        }

        // 4. Always verify the maintained set against the snapshot.
        let backbone_local: Vec<usize> = self
            .backbone()
            .iter()
            .filter_map(|&id| snap.local(id))
            .collect();
        let valid = backbone_valid(&snap.graph, &backbone_local, self.cfg.m);
        let wall = started.elapsed();

        let new_backbone = self.backbone();
        let dominators_added = diff_count(&self.dominators, &prev_dom);
        let dominators_removed = diff_count(&prev_dom, &self.dominators);
        let connectors_added = diff_count(&self.connectors, &prev_con);
        let connectors_removed = diff_count(&prev_con, &self.connectors);
        RepairReport {
            seq,
            event,
            node,
            alive: self.nodes.len(),
            giant: snap.ids.len(),
            nodes_touched,
            violations,
            dominators_added,
            dominators_removed,
            connectors_added,
            connectors_removed,
            decision,
            cds_size: self.giant_backbone_size(&snap),
            baseline_size,
            survival: if had_backbone {
                survival_fraction(&prev_backbone, &new_backbone)
            } else {
                1.0
            },
            wall,
            valid,
        }
    }

    /// Applies the population mutation and returns `(event node id, seed
    /// ids whose neighborhoods changed)`.
    fn mutate(&mut self, event: &TopologyEvent) -> (NodeId, Vec<NodeId>) {
        match *event {
            TopologyEvent::Join { pos } => {
                assert!(pos.is_finite(), "join position must be finite");
                let id = self.next_id;
                self.next_id += 1;
                self.nodes.insert(id, pos);
                (id, vec![id])
            }
            TopologyEvent::Leave { node } => {
                let pos = self
                    .nodes
                    .remove(&node)
                    .unwrap_or_else(|| panic!("leave of dead node {node}"));
                self.dominators.retain(|&v| v != node);
                self.connectors.retain(|&v| v != node);
                // The departed node's old neighbors lost an edge each.
                let seeds = self.ids_within(pos, self.cfg.radius);
                (node, seeds)
            }
            TopologyEvent::Move { node, to } => {
                assert!(to.is_finite(), "move target must be finite");
                let old = *self
                    .nodes
                    .get(&node)
                    .unwrap_or_else(|| panic!("move of dead node {node}"));
                // Damage spans both the detach site (old neighbors) and
                // the attach site (new neighbors).
                let mut seeds = self.ids_within(old, self.cfg.radius);
                self.nodes.insert(node, to);
                seeds.extend(self.ids_within(to, self.cfg.radius));
                seeds.push(node);
                seeds.sort_unstable();
                seeds.dedup();
                (node, seeds)
            }
        }
    }

    /// Live ids within `radius` of `center` (including a node exactly at
    /// `center`).
    fn ids_within(&self, center: Point, radius: f64) -> Vec<NodeId> {
        let r_sq = radius * radius + mcds_geom::EPS;
        self.nodes
            .iter()
            .filter(|(_, &p)| p.dist_sq(center) <= r_sq)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Attempts the local repair on the snapshot.  On success stores the
    /// repaired roles (stable ids) and returns the damage-region size; on
    /// failure returns the reason and leaves roles untouched (the caller
    /// recomputes).
    fn repair_local(
        &mut self,
        snap: &Snapshot,
        seeds: &[NodeId],
    ) -> Result<usize, RecomputeReason> {
        let g = &snap.graph;
        let n = g.num_nodes();
        let m = self.cfg.m;

        // Previous roles restricted to the giant component, local
        // indices.
        let mut is_dom = vec![false; n];
        for id in &self.dominators {
            if let Some(v) = snap.local(*id) {
                is_dom[v] = true;
            }
        }
        let mut is_con = vec![false; n];
        for id in &self.connectors {
            if let Some(v) = snap.local(*id) {
                is_con[v] = true;
            }
        }
        if !is_dom.iter().any(|&d| d) {
            // The entire dominator set fell off this component; nothing
            // to repair locally.
            return Err(RecomputeReason::ColdStart);
        }

        // Damage region: the 2-hop closed neighborhood of the seeds, then
        // one more ring for domination checks (a demoted dominator
        // undominates only its direct neighbors, which sit within one hop
        // of the region).
        let seed_local: Vec<usize> = seeds.iter().filter_map(|&id| snap.local(id)).collect();
        let region = expand(g, &seed_local, 2);
        let check_zone = expand(g, &region, 1);

        // Phase 1a: resolve independence violations inside the region
        // toward the smaller id (new dominator adjacencies can only
        // involve region nodes — edges change only at the event site).
        // Dominators outside the region are immutable, so a region
        // dominator adjacent to one must always yield.  Skipped for
        // m ≥ 2: m-fold dominator sets are deliberately non-independent,
        // so there is no independence invariant to restore.
        if m == 1 {
            for &v in &region {
                if !is_dom[v] {
                    continue;
                }
                let demote = g
                    .neighbors_iter(v)
                    .any(|u| is_dom[u] && (u < v || region.binary_search(&u).is_err()));
                if demote {
                    is_dom[v] = false;
                }
            }
        }

        // Phase 1b: first-fit re-election — promote under-covered nodes
        // of the widened zone in ascending id order (the first-fit
        // tie-break of the paper's phase 1).  For m ≥ 2 a node is covered
        // when it sits in the backbone or sees ≥ m backbone neighbors;
        // promotion to dominator self-satisfies it and feeds coverage to
        // later nodes of the pass.
        for &v in &check_zone {
            let covered = if m == 1 {
                is_dom[v] || g.neighbors_iter(v).any(|u| is_dom[u])
            } else {
                is_dom[v]
                    || is_con[v]
                    || g.neighbors_iter(v)
                        .filter(|&u| is_dom[u] || is_con[u])
                        .count()
                        >= m
            };
            if !covered {
                is_dom[v] = true;
                is_con[v] = false;
            }
        }

        // Coverage must hold on the whole component; a miss here means
        // the damage model was too small for this event — recompute.
        let coverage_ok = if m == 1 {
            let dom_list: Vec<usize> = (0..n).filter(|&v| is_dom[v]).collect();
            properties::is_dominating_set(g, &dom_list)
        } else {
            let mask: Vec<bool> = (0..n).map(|v| is_dom[v] || is_con[v]).collect();
            coverage_violations(g, &mask, m) == 0
        };
        if !coverage_ok {
            return Err(RecomputeReason::Invalid);
        }

        // Phase 2: patch connectivity of G[I ∪ C] with max-gain
        // connectors confined to the damaged region (one extra ring so a
        // bridge just outside the region is still reachable).
        let mut mask: Vec<bool> = (0..n).map(|v| is_dom[v] || is_con[v]).collect();
        let mut dsu = subsets::components_dsu(g, &mask);
        let mut q = subsets::count_components(g, &mask);
        let candidate_zone = expand(g, &check_zone, 1);
        while q > 1 {
            let mut best: Option<(usize, usize)> = None; // (count, node)
            for &w in &candidate_zone {
                if mask[w] {
                    continue;
                }
                let adj = subsets::adjacent_components(g, &mask, &mut dsu, w);
                if adj.len() >= 2 {
                    match best {
                        Some((c, _)) if c >= adj.len() => {}
                        _ => best = Some((adj.len(), w)),
                    }
                }
            }
            let Some((count, w)) = best else {
                return Err(RecomputeReason::Stalled);
            };
            mask[w] = true;
            is_con[w] = true;
            for u in g.neighbors_iter(w) {
                if mask[u] {
                    dsu.union(w, u);
                }
            }
            q = q + 1 - count;
        }

        // Phase 3: drop connectors in the damage region that the repair
        // made redundant (highest id first, re-checking connectivity
        // after each removal), so local churn cannot ratchet the backbone
        // size upward.
        for &c in check_zone.iter().rev() {
            if !is_con[c] {
                continue;
            }
            mask[c] = false;
            // For m ≥ 2 a connector also carries coverage: it may only
            // be dropped if it and its now-outside neighbors all keep
            // ≥ m backbone neighbors.
            let droppable = subsets::is_connected_subset(g, &mask)
                && (m == 1 || drop_keeps_coverage(g, &mask, c, m));
            if droppable {
                is_con[c] = false;
            } else {
                mask[c] = true;
            }
        }

        // Verify before committing (cheap; guards analysis gaps).
        let all_local: Vec<usize> = (0..n).filter(|&v| mask[v]).collect();
        if self.cfg.verify && !backbone_valid(g, &all_local, m) {
            return Err(RecomputeReason::Invalid);
        }

        // Commit: translate local roles back to stable ids, preserving
        // backbone nodes that live outside this giant component (they
        // keep serving their own components and matter for survival
        // accounting if the components remerge).
        let giant_set = &snap.ids;
        let keep_outside = |ids: &[NodeId]| -> Vec<NodeId> {
            ids.iter()
                .copied()
                .filter(|id| giant_set.binary_search(id).is_err() && self.nodes.contains_key(id))
                .collect()
        };
        let mut new_dom = keep_outside(&self.dominators);
        new_dom.extend((0..n).filter(|&v| is_dom[v]).map(|v| snap.ids[v]));
        new_dom.sort_unstable();
        let mut new_con = keep_outside(&self.connectors);
        new_con.extend((0..n).filter(|&v| is_con[v]).map(|v| snap.ids[v]));
        new_con.sort_unstable();
        self.dominators = new_dom;
        self.connectors = new_con;
        Ok(check_zone.len())
    }
}

/// The `hops`-hop closed neighborhood of `seed` in `g`, sorted.
fn expand(g: &Graph, seed: &[usize], hops: usize) -> Vec<usize> {
    let mut mask = node_mask(g.num_nodes(), seed);
    let mut frontier: Vec<usize> = seed.to_vec();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for u in g.neighbors_iter(v) {
                if !mask[u] {
                    mask[u] = true;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    (0..g.num_nodes()).filter(|&v| mask[v]).collect()
}

/// How many elements of sorted `a` are missing from sorted `b`.
fn diff_count(a: &[NodeId], b: &[NodeId]) -> usize {
    a.iter().filter(|v| b.binary_search(v).is_err()).count()
}

/// Backbone membership over the snapshot's local indices.
fn local_backbone_mask(snap: &Snapshot, dominators: &[NodeId], connectors: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; snap.graph.num_nodes()];
    for id in dominators.iter().chain(connectors.iter()) {
        if let Some(v) = snap.local(*id) {
            mask[v] = true;
        }
    }
    mask
}

/// Nodes of `g` outside `mask` with fewer than `m` neighbors inside it —
/// the under-covered nodes of the `(1, m)` contract (`m = 1` recovers
/// plain domination by the backbone).
fn coverage_violations(g: &Graph, mask: &[bool], m: usize) -> usize {
    (0..g.num_nodes())
        .filter(|&v| !mask[v])
        .filter(|&v| g.neighbors_iter(v).filter(|&u| mask[u]).count() < m)
        .count()
}

/// Whether the coverage contract survives dropping `c` (already cleared
/// in `mask`): `c` itself and its now-outside neighbors must all retain
/// ≥ `m` backbone neighbors.
fn drop_keeps_coverage(g: &Graph, mask: &[bool], c: usize, m: usize) -> bool {
    let covered = |v: usize| g.neighbors_iter(v).filter(|&u| mask[u]).count() >= m;
    covered(c) && g.neighbors_iter(c).filter(|&u| !mask[u]).all(covered)
}

/// m-aware validity: the classic CDS check for `m == 1`, the `(1, m)`
/// backbone contract of [`mcds_cds::fault::check_m_cds`] otherwise.
fn backbone_valid(g: &Graph, set: &[usize], m: usize) -> bool {
    if m == 1 {
        properties::is_connected_dominating_set(g, set)
    } else {
        mcds_cds::fault::check_m_cds(g, set, m).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect()
    }

    fn assert_valid(engine: &Maintainer) {
        let snap = engine.snapshot().expect("population non-empty");
        let local: Vec<usize> = engine
            .backbone()
            .iter()
            .filter_map(|&id| snap.local(id))
            .collect();
        assert!(
            backbone_valid(&snap.graph, &local, engine.cfg.m),
            "maintained set {:?} is not a valid (1, {}) backbone",
            engine.backbone(),
            engine.cfg.m
        );
    }

    #[test]
    fn seeding_builds_a_valid_backbone() {
        let engine = Maintainer::with_population(MaintainConfig::default(), chain(9, 0.9));
        assert_eq!(engine.population(), 9);
        assert!(!engine.backbone().is_empty());
        assert_valid(&engine);
    }

    #[test]
    fn join_extends_the_chain() {
        let mut engine = Maintainer::with_population(MaintainConfig::default(), chain(3, 0.8));
        let report = engine.apply(TopologyEvent::Join {
            pos: Point::new(2.4, 0.0),
        });
        assert!(report.valid);
        assert_eq!(report.alive, 4);
        assert_eq!(report.node, 3);
        assert_valid(&engine);
    }

    #[test]
    fn leave_of_backbone_node_is_repaired() {
        let mut engine = Maintainer::with_population(MaintainConfig::default(), chain(7, 0.9));
        let backbone = engine.backbone();
        // Kill an interior backbone node.
        let victim = *backbone
            .iter()
            .find(|&&v| v != 0 && v != 6)
            .expect("a 7-chain backbone has interior nodes");
        let report = engine.apply(TopologyEvent::Leave { node: victim });
        assert!(report.valid);
        assert!(!engine.backbone().contains(&victim));
        assert_valid(&engine);
    }

    #[test]
    fn leave_of_non_backbone_node_is_cheap() {
        // A 5-chain backbone uses every chain node, so hang an extra leaf
        // off node 0 that no role needs.
        let mut pts = chain(5, 0.9);
        pts.push(Point::new(0.0, 0.5));
        let mut engine = Maintainer::with_population(MaintainConfig::default(), pts);
        let bystander = 5;
        assert!(!engine.backbone().contains(&bystander));
        let report = engine.apply(TopologyEvent::Leave { node: bystander });
        assert!(report.valid);
        assert_eq!(report.decision, RepairDecision::Repaired);
        assert_valid(&engine);
    }

    #[test]
    fn move_within_range_keeps_validity() {
        let mut engine = Maintainer::with_population(MaintainConfig::default(), chain(6, 0.9));
        let report = engine.apply(TopologyEvent::Move {
            node: 2,
            to: Point::new(1.7, 0.3),
        });
        assert!(report.valid);
        assert_valid(&engine);
    }

    #[test]
    fn population_can_empty_out() {
        let mut engine = Maintainer::with_population(MaintainConfig::default(), chain(2, 0.5));
        let r1 = engine.apply(TopologyEvent::Leave { node: 0 });
        assert!(r1.valid);
        let r2 = engine.apply(TopologyEvent::Leave { node: 1 });
        assert!(r2.valid);
        assert_eq!(engine.population(), 0);
        assert!(engine.backbone().is_empty());
        // And it can repopulate.
        let r3 = engine.apply(TopologyEvent::Join {
            pos: Point::new(0.0, 0.0),
        });
        assert!(r3.valid);
        assert_eq!(engine.backbone().len(), 1);
    }

    #[test]
    fn report_accounts_roles_and_ratio() {
        let mut engine = Maintainer::with_population(MaintainConfig::default(), chain(9, 0.9));
        let report = engine.apply(TopologyEvent::Join {
            pos: Point::new(7.2 + 0.9, 0.0),
        });
        assert!(report.size_ratio() >= 1.0 - 1e-9);
        assert!(report.size_ratio() <= engine.config().drift_threshold + 1e-9);
        assert!(report.baseline_size > 0);
        assert_eq!(report.cds_size, engine.backbone().len());
    }

    #[test]
    #[should_panic(expected = "dead node")]
    fn leave_of_unknown_node_panics() {
        let mut engine = Maintainer::with_population(MaintainConfig::default(), chain(3, 0.8));
        let _ = engine.apply(TopologyEvent::Leave { node: 99 });
    }

    #[test]
    #[should_panic(expected = "drift threshold")]
    fn bad_drift_threshold_panics() {
        let _ = Maintainer::new(MaintainConfig {
            drift_threshold: 0.5,
            ..MaintainConfig::default()
        });
    }

    /// A 3×3 unit-disk grid, dense enough that (1, 2) backbones leave
    /// genuine non-backbone nodes.
    fn grid9() -> Vec<Point> {
        (0..9)
            .map(|i| Point::new((i % 3) as f64 * 0.6, (i / 3) as f64 * 0.6))
            .collect()
    }

    #[test]
    fn coverage_violations_counts_under_covered_nodes() {
        let g = Graph::path(4);
        let mask = vec![true, false, false, true];
        assert_eq!(coverage_violations(&g, &mask, 1), 0);
        assert_eq!(coverage_violations(&g, &mask, 2), 2);
    }

    #[test]
    fn violations_count_nodes_that_lost_domination() {
        let mut engine = Maintainer::with_population(MaintainConfig::default(), chain(3, 0.8));
        // Pin a minimal valid backbone so the damage is deterministic:
        // the center alone dominates and connects the chain.
        engine.dominators = vec![1];
        engine.connectors = vec![];
        let report = engine.apply(TopologyEvent::Leave { node: 1 });
        // The whole backbone died: the surviving giant node is uncovered.
        assert_eq!(report.violations, 1);
        assert_eq!(report.fallback(), Some(RecomputeReason::ColdStart));
        assert!(report.valid);
        assert_valid(&engine);
    }

    #[test]
    fn m2_backbone_absorbs_any_single_failure() {
        let cfg = MaintainConfig {
            m: 2,
            ..MaintainConfig::default()
        };
        for victim in 0..9 {
            let mut engine = Maintainer::with_population(cfg, grid9());
            assert_valid(&engine);
            let report = engine.apply(TopologyEvent::Leave { node: victim });
            // Every non-backbone node had ≥ 2 backbone neighbors, so one
            // death cannot undominate anyone.
            assert_eq!(report.violations, 0, "victim {victim}");
            assert!(report.valid, "victim {victim}");
            assert_valid(&engine);
        }
    }

    #[test]
    fn m2_engine_survives_a_burst_and_a_join() {
        let cfg = MaintainConfig {
            m: 2,
            ..MaintainConfig::default()
        };
        let mut engine = Maintainer::with_population(cfg, grid9());
        for victim in [4, 1] {
            let report = engine.apply(TopologyEvent::Leave { node: victim });
            assert!(report.valid, "victim {victim}");
            assert_valid(&engine);
        }
        let report = engine.apply(TopologyEvent::Join {
            pos: Point::new(0.3, 0.3),
        });
        assert!(report.valid);
        assert_valid(&engine);
    }

    #[test]
    fn fallback_reasons_reach_the_counters() {
        assert_eq!(RecomputeReason::Drift.name(), "drift");
        mcds_obs::test_support::with_enabled(true, || {
            let recomputed = mcds_obs::counter_value("maintain.recomputed");
            let cold = mcds_obs::counter_value("maintain.recompute.cold_start");
            let mut engine = Maintainer::with_population(MaintainConfig::default(), chain(3, 0.8));
            engine.dominators = vec![1];
            engine.connectors = vec![];
            let report = engine.apply(TopologyEvent::Leave { node: 1 });
            assert_eq!(report.fallback(), Some(RecomputeReason::ColdStart));
            assert_eq!(
                mcds_obs::counter_value("maintain.recompute.cold_start"),
                cold + 1,
                "the reason-tagged counter must fire with the fallback"
            );
            assert_eq!(
                mcds_obs::counter_value("maintain.recomputed"),
                recomputed + 1
            );
        });
    }

    #[test]
    #[should_panic(expected = "m must be in 1..=3")]
    fn bad_m_panics() {
        let _ = Maintainer::new(MaintainConfig {
            m: 0,
            ..MaintainConfig::default()
        });
    }

    #[test]
    fn split_and_remerge_is_survived() {
        // Two clusters joined by a mobile bridge node; moving the bridge
        // away splits the topology, moving it back remerges.
        let mut pts = chain(3, 0.8); // left cluster at x = 0.0, 0.8, 1.6
        pts.extend(
            chain(3, 0.8)
                .into_iter()
                .map(|p| Point::new(p.x + 4.0, 0.0)),
        );
        pts.push(Point::new(2.8, 0.0)); // bridge node, id 6 (reaches x=1.6 at dist 1.2? no)
        let mut engine = Maintainer::with_population(MaintainConfig::default(), pts);
        // Bridge at 2.4 connects 1.6 and 3.2? 2.8 -> dist to 1.6 is 1.2 > 1:
        // the seed topology is split; the engine serves the giant.
        let r = engine.apply(TopologyEvent::Move {
            node: 6,
            to: Point::new(2.4, 0.0),
        });
        assert!(r.valid);
        // 2.4 reaches 1.6 (dist 0.8) but not 4.0 (dist 1.6): still split.
        let r2 = engine.apply(TopologyEvent::Join {
            pos: Point::new(3.3, 0.0),
        });
        // Now 2.4 - 3.3 - 4.0 chains the clusters: one component of 8.
        assert!(r2.valid);
        assert_eq!(r2.giant, 8);
        assert_valid(&engine);
    }
}
