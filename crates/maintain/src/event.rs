//! Topology events and their sources.
//!
//! The maintenance engine consumes a stream of [`TopologyEvent`]s — the
//! primitive ways a wireless ad hoc topology churns: a node powers on
//! ([`TopologyEvent::Join`]), crashes or leaves ([`TopologyEvent::Leave`]),
//! or moves ([`TopologyEvent::Move`]).  Two event sources are provided:
//!
//! * [`ChurnGen`] — a synthetic, seeded generator mixing the three kinds
//!   with configurable rates, for stress tests and experiments,
//! * [`waypoint_epoch`] — an adapter sampling a
//!   [`mcds_udg::mobility::RandomWaypoint`] walk at epoch boundaries and
//!   emitting one `Move` per node that actually moved.

use mcds_geom::{Aabb, Point};
use mcds_rng::Rng;
use mcds_udg::mobility::RandomWaypoint;

/// Stable node identity, preserved across events.
///
/// Dense graph indices are reassigned every snapshot; `NodeId`s are not —
/// they are what lets the engine (and its metrics) track a backbone node
/// through arbitrary join/leave interleavings.
pub type NodeId = usize;

/// One atomic change to the topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyEvent {
    /// A new node powers on at `pos` (the engine assigns its [`NodeId`]).
    Join {
        /// Deployment position of the new node.
        pos: Point,
    },
    /// Node `node` crashes or leaves the network.
    Leave {
        /// The departing node.
        node: NodeId,
    },
    /// Node `node` moves to `to`.
    Move {
        /// The moving node.
        node: NodeId,
        /// Its new position.
        to: Point,
    },
}

/// Rates and shape of synthetic churn.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Deployment region for joins and moves.
    pub region: Aabb,
    /// Probability that an event is a join.
    pub p_join: f64,
    /// Probability that an event is a leave/crash.
    pub p_leave: f64,
    /// Maximum displacement of a single move event (a move jumps the node
    /// uniformly within this radius, clamped to the region).
    pub move_radius: f64,
    /// Leaves are suppressed (turned into moves) while the population is
    /// at or below this floor, so churn cannot drain the network.
    pub min_population: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            region: Aabb::square(6.0),
            p_join: 0.1,
            p_leave: 0.1,
            move_radius: 0.5,
            min_population: 4,
        }
    }
}

/// A seeded synthetic churn source.
///
/// Each call to [`ChurnGen::next_event`] draws one event against the
/// caller's current population (the engine's alive nodes), so the stream
/// always references nodes that exist.
///
/// ```
/// use mcds_maintain::{ChurnConfig, ChurnGen};
/// use mcds_rng::{rngs::StdRng, SeedableRng};
/// use mcds_geom::Point;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut churn = ChurnGen::new(ChurnConfig::default());
/// let alive = vec![(0, Point::new(1.0, 1.0)), (1, Point::new(2.0, 2.0))];
/// let _event = churn.next_event(&mut rng, &alive);
/// ```
#[derive(Debug, Clone)]
pub struct ChurnGen {
    cfg: ChurnConfig,
}

impl ChurnGen {
    /// Creates a generator with the given rates.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are outside `[0, 1]` or sum past 1, or
    /// if `move_radius` is not positive and finite.
    pub fn new(cfg: ChurnConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.p_join)
                && (0.0..=1.0).contains(&cfg.p_leave)
                && cfg.p_join + cfg.p_leave <= 1.0,
            "need p_join, p_leave ≥ 0 with p_join + p_leave ≤ 1, got {} + {}",
            cfg.p_join,
            cfg.p_leave
        );
        assert!(
            cfg.move_radius.is_finite() && cfg.move_radius > 0.0,
            "move_radius must be positive and finite, got {}",
            cfg.move_radius
        );
        ChurnGen { cfg }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// Draws the next event against the current population `alive`
    /// (stable id, position) — typically
    /// [`Maintainer::alive`](crate::Maintainer::alive).
    ///
    /// An empty population always yields a join; leaves are converted to
    /// moves at the population floor.
    pub fn next_event<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        alive: &[(NodeId, Point)],
    ) -> TopologyEvent {
        let region = self.cfg.region;
        let sample_in_region = |rng: &mut R| {
            Point::new(
                rng.gen_range(region.min().x..=region.max().x),
                rng.gen_range(region.min().y..=region.max().y),
            )
        };
        if alive.is_empty() {
            return TopologyEvent::Join {
                pos: sample_in_region(rng),
            };
        }
        let u: f64 = rng.gen();
        if u < self.cfg.p_join {
            return TopologyEvent::Join {
                pos: sample_in_region(rng),
            };
        }
        let (node, pos) = alive[rng.gen_range(0..alive.len())];
        if u < self.cfg.p_join + self.cfg.p_leave && alive.len() > self.cfg.min_population {
            return TopologyEvent::Leave { node };
        }
        // Move: uniform jump within `move_radius`, clamped to the region.
        let r = self.cfg.move_radius;
        let dx = rng.gen_range(-r..=r);
        let dy = rng.gen_range(-r..=r);
        let to = Point::new(
            (pos.x + dx).clamp(region.min().x, region.max().x),
            (pos.y + dy).clamp(region.min().y, region.max().y),
        );
        TopologyEvent::Move { node, to }
    }
}

/// Shape of injected failures.
///
/// Unlike [`ChurnConfig`]'s one-event-at-a-time churn, a fault is a
/// *correlated burst*: several nodes die in the same instant, either
/// because they share a location (a jammed or powered-down region) or
/// because they share a fate chosen at random (a firmware batch).  Both
/// kinds honor the same population floor as churn so injection cannot
/// drain the network.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Radius of a regional kill: every node within this distance of the
    /// (randomly chosen) epicenter dies.
    pub radius: f64,
    /// Number of victims of a batch kill.
    pub batch: usize,
    /// Kills are truncated so the population never drops below this floor.
    pub min_population: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            radius: 1.5,
            batch: 3,
            min_population: 4,
        }
    }
}

/// A seeded failure injector emitting correlated kill bursts.
///
/// Each call draws one burst against the caller's current population and
/// returns it as a batch of [`TopologyEvent::Leave`]s, to be applied
/// back-to-back — the engine sees the network *after* the whole burst
/// only once repairs start, which is exactly the regime `(k, m)`
/// backbones are built for.
///
/// ```
/// use mcds_maintain::{FaultConfig, FaultGen, TopologyEvent};
/// use mcds_rng::{rngs::StdRng, SeedableRng};
/// use mcds_geom::Point;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut faults = FaultGen::new(FaultConfig { min_population: 0, ..FaultConfig::default() });
/// let alive = vec![(0, Point::new(1.0, 1.0)), (1, Point::new(1.5, 1.0))];
/// let burst = faults.regional_kill(&mut rng, &alive);
/// assert!(burst.iter().all(|e| matches!(e, TopologyEvent::Leave { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct FaultGen {
    cfg: FaultConfig,
}

impl FaultGen {
    /// Creates an injector with the given burst shape.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite or `batch` is zero.
    pub fn new(cfg: FaultConfig) -> Self {
        assert!(
            cfg.radius.is_finite() && cfg.radius > 0.0,
            "fault radius must be positive and finite, got {}",
            cfg.radius
        );
        assert!(cfg.batch > 0, "batch kill size must be at least 1");
        FaultGen { cfg }
    }

    /// The injector's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// How many victims a burst may claim before hitting the floor.
    fn kill_allowance(&self, alive: &[(NodeId, Point)]) -> usize {
        alive.len().saturating_sub(self.cfg.min_population)
    }

    /// Kills every node within [`FaultConfig::radius`] of a randomly
    /// chosen alive epicenter (the epicenter included).
    ///
    /// Victims are listed nearest-the-epicenter first, so when the
    /// population floor truncates the burst the surviving kills are still
    /// spatially correlated.  Returns an empty burst when the population
    /// is at or below the floor.
    pub fn regional_kill<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        alive: &[(NodeId, Point)],
    ) -> Vec<TopologyEvent> {
        let allowed = self.kill_allowance(alive);
        if allowed == 0 {
            return Vec::new();
        }
        let (_, center) = alive[rng.gen_range(0..alive.len())];
        let mut victims: Vec<(NodeId, f64)> = alive
            .iter()
            .filter(|(_, pos)| pos.dist(center) <= self.cfg.radius)
            .map(|&(id, pos)| (id, pos.dist(center)))
            .collect();
        victims.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        victims.truncate(allowed);
        victims
            .into_iter()
            .map(|(node, _)| TopologyEvent::Leave { node })
            .collect()
    }

    /// Kills [`FaultConfig::batch`] distinct nodes chosen uniformly at
    /// random (fewer near the population floor; none at or below it).
    pub fn batch_kill<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        alive: &[(NodeId, Point)],
    ) -> Vec<TopologyEvent> {
        let kills = self.cfg.batch.min(self.kill_allowance(alive));
        let mut pool: Vec<NodeId> = alive.iter().map(|&(id, _)| id).collect();
        // Partial Fisher–Yates: the first `kills` slots become the victims.
        for i in 0..kills {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(kills);
        pool.into_iter()
            .map(|node| TopologyEvent::Leave { node })
            .collect()
    }
}

/// Advances a random-waypoint walk by `dt` and emits one
/// [`TopologyEvent::Move`] per node that changed position.
///
/// The walk's node `i` is reported as [`NodeId`] `ids[i]`; pass the ids
/// the engine assigned at seeding time (for a population created in one
/// batch these are simply `0..n`).
///
/// # Panics
///
/// Panics if `ids.len()` differs from the walk's population.
pub fn waypoint_epoch<R: Rng + ?Sized>(
    walk: &mut RandomWaypoint,
    rng: &mut R,
    dt: f64,
    ids: &[NodeId],
) -> Vec<TopologyEvent> {
    assert_eq!(
        ids.len(),
        walk.positions().len(),
        "ids must map every node of the walk"
    );
    let before = walk.positions().to_vec();
    walk.step(rng, dt);
    walk.positions()
        .iter()
        .zip(before.iter())
        .zip(ids.iter())
        .filter(|((now, was), _)| now != was)
        .map(|((now, _), &id)| TopologyEvent::Move { node: id, to: *now })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_rng::{rngs::StdRng, SeedableRng};

    fn alive(n: usize) -> Vec<(NodeId, Point)> {
        (0..n)
            .map(|i| (i, Point::new(i as f64 * 0.5, 1.0)))
            .collect()
    }

    #[test]
    fn empty_population_always_joins() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut churn = ChurnGen::new(ChurnConfig::default());
        for _ in 0..20 {
            assert!(matches!(
                churn.next_event(&mut rng, &[]),
                TopologyEvent::Join { .. }
            ));
        }
    }

    #[test]
    fn events_respect_region_and_population() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = ChurnConfig {
            region: Aabb::square(4.0),
            p_join: 0.3,
            p_leave: 0.3,
            move_radius: 1.0,
            min_population: 2,
        };
        let mut churn = ChurnGen::new(cfg);
        let pop = alive(10);
        let (mut joins, mut leaves, mut moves) = (0, 0, 0);
        for _ in 0..500 {
            match churn.next_event(&mut rng, &pop) {
                TopologyEvent::Join { pos } => {
                    joins += 1;
                    assert!(cfg.region.contains(pos), "{pos}");
                }
                TopologyEvent::Leave { node } => {
                    leaves += 1;
                    assert!(node < 10);
                }
                TopologyEvent::Move { node, to } => {
                    moves += 1;
                    assert!(node < 10);
                    assert!(cfg.region.contains(to), "{to}");
                }
            }
        }
        assert!(
            joins > 0 && leaves > 0 && moves > 0,
            "{joins}/{leaves}/{moves}"
        );
    }

    #[test]
    fn population_floor_suppresses_leaves() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut churn = ChurnGen::new(ChurnConfig {
            p_join: 0.0,
            p_leave: 1.0,
            min_population: 5,
            ..ChurnConfig::default()
        });
        for _ in 0..50 {
            let e = churn.next_event(&mut rng, &alive(5));
            assert!(
                matches!(e, TopologyEvent::Move { .. }),
                "leave at the floor must degrade to a move, got {e:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "p_join")]
    fn bad_rates_panic() {
        let _ = ChurnGen::new(ChurnConfig {
            p_join: 0.8,
            p_leave: 0.5,
            ..ChurnConfig::default()
        });
    }

    #[test]
    fn regional_kill_is_spatially_correlated() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut faults = FaultGen::new(FaultConfig {
            radius: 1.2,
            batch: 3,
            min_population: 0,
        });
        // Two clusters 10 units apart: a burst must stay within one.
        let mut pop = alive(5);
        pop.extend((5..10).map(|i| (i, Point::new(10.0 + (i - 5) as f64 * 0.5, 1.0))));
        for _ in 0..20 {
            let burst = faults.regional_kill(&mut rng, &pop);
            assert!(!burst.is_empty());
            let ids: Vec<NodeId> = burst
                .iter()
                .map(|e| match e {
                    TopologyEvent::Leave { node } => *node,
                    other => panic!("faults only kill, got {other:?}"),
                })
                .collect();
            assert!(
                ids.iter().all(|&id| id < 5) || ids.iter().all(|&id| id >= 5),
                "burst crossed clusters: {ids:?}"
            );
        }
    }

    #[test]
    fn batch_kill_picks_distinct_victims() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut faults = FaultGen::new(FaultConfig {
            batch: 4,
            min_population: 0,
            ..FaultConfig::default()
        });
        for _ in 0..20 {
            let burst = faults.batch_kill(&mut rng, &alive(10));
            assert_eq!(burst.len(), 4);
            let mut ids: Vec<NodeId> = burst
                .iter()
                .map(|e| match e {
                    TopologyEvent::Leave { node } => *node,
                    other => panic!("faults only kill, got {other:?}"),
                })
                .collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 4, "victims must be distinct");
        }
    }

    #[test]
    fn fault_bursts_respect_the_population_floor() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut faults = FaultGen::new(FaultConfig {
            radius: 100.0,
            batch: 100,
            min_population: 6,
        });
        let pop = alive(10);
        for _ in 0..10 {
            assert!(faults.regional_kill(&mut rng, &pop).len() <= 4);
            assert_eq!(faults.batch_kill(&mut rng, &pop).len(), 4);
        }
        assert!(faults.regional_kill(&mut rng, &alive(6)).is_empty());
        assert!(faults.batch_kill(&mut rng, &alive(5)).is_empty());
    }

    #[test]
    #[should_panic(expected = "fault radius")]
    fn bad_fault_radius_panics() {
        let _ = FaultGen::new(FaultConfig {
            radius: 0.0,
            ..FaultConfig::default()
        });
    }

    #[test]
    fn waypoint_epoch_emits_moves_with_stable_ids() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut walk = RandomWaypoint::new(&mut rng, 12, Aabb::square(5.0), (0.5, 1.0), 0.0);
        let ids: Vec<NodeId> = (100..112).collect();
        let events = waypoint_epoch(&mut walk, &mut rng, 1.0, &ids);
        assert!(!events.is_empty());
        for e in &events {
            let TopologyEvent::Move { node, to } = e else {
                panic!("waypoint epochs only move nodes, got {e:?}");
            };
            assert!((100..112).contains(node));
            assert!(to.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "ids must map")]
    fn waypoint_epoch_checks_id_arity() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut walk = RandomWaypoint::new(&mut rng, 3, Aabb::square(2.0), (1.0, 1.0), 0.0);
        let _ = waypoint_epoch(&mut walk, &mut rng, 1.0, &[0, 1]);
    }
}
