//! Dynamic CDS maintenance under churn.
//!
//! The rest of the workspace constructs a connected dominating set once,
//! for a frozen snapshot.  Real wireless ad hoc networks churn — nodes
//! power on, crash, and move — and rebuilding the backbone from scratch
//! on every change defeats the point of a *virtual backbone*.  This crate
//! keeps a valid CDS alive across a stream of topology events by
//! repairing it locally and falling back to the paper's two-phased
//! construction only when local repair is insufficient:
//!
//! * [`TopologyEvent`] — the churn primitives (join, leave/crash, move),
//!   produced by the seeded synthetic [`ChurnGen`], injected as
//!   correlated failure bursts by [`FaultGen`] (regional and batch
//!   kills), or adapted from a [`mcds_udg::mobility::RandomWaypoint`]
//!   walk via [`waypoint_epoch`];
//! * [`Maintainer`] — the engine: local first-fit MIS re-election
//!   restricted to the event's 2-hop neighborhood, connector patching
//!   with the Section-IV max-gain greedy confined to the damaged region,
//!   and a full [`mcds_cds::greedy_cds`] recompute whenever repair
//!   stalls, fails verification, or drifts past
//!   [`MaintainConfig::drift_threshold`] × the fresh baseline;
//! * [`RepairReport`] / [`StabilityMetrics`] — per-event accounting
//!   (locality, role deltas, decision, size ratio, wall time) and its
//!   aggregation into the stability figures the churn experiments plot.
//!
//! Every maintained set is checked against
//! [`mcds_graph::properties::is_connected_dominating_set`] on the giant
//! component of the live topology, so invalid intermediate states cannot
//! survive an event unnoticed.  With [`MaintainConfig::m`] above 1 the
//! engine maintains the fault-tolerant `(1, m)` backbone of
//! [`mcds_cds::fault`] instead, and each [`RepairReport`] counts the
//! nodes an event undominated before repair — the robustness metric the
//! failure-injection experiment (E22) compares across `m`.
//!
//! # Example
//!
//! ```
//! use mcds_geom::Point;
//! use mcds_maintain::{
//!     ChurnConfig, ChurnGen, MaintainConfig, Maintainer, StabilityMetrics,
//! };
//! use mcds_rng::{rngs::StdRng, Rng, SeedableRng};
//!
//! // Deploy 40 nodes uniformly in a 6×6 region (radius 1).
//! let mut rng = StdRng::seed_from_u64(7);
//! let cfg = ChurnConfig::default();
//! let pts: Vec<Point> = (0..40)
//!     .map(|_| {
//!         Point::new(rng.gen_range(0.0..=6.0), rng.gen_range(0.0..=6.0))
//!     })
//!     .collect();
//! let mut engine = Maintainer::with_population(MaintainConfig::default(), pts);
//!
//! // Drive 30 churn events through the engine and aggregate stability.
//! let mut churn = ChurnGen::new(cfg);
//! let mut metrics = StabilityMetrics::new();
//! for _ in 0..30 {
//!     let event = churn.next_event(&mut rng, &engine.alive());
//!     metrics.record(&engine.apply(event));
//! }
//! assert_eq!(metrics.invalid_events, 0, "every maintained set is a CDS");
//! assert!(metrics.mean_survival() > 0.5, "the backbone is mostly stable");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod event;
mod metrics;

pub use engine::{MaintainConfig, Maintainer, RecomputeReason, RepairDecision, RepairReport};
pub use event::{
    waypoint_epoch, ChurnConfig, ChurnGen, FaultConfig, FaultGen, NodeId, TopologyEvent,
};
pub use metrics::StabilityMetrics;
