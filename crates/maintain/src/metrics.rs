//! Aggregated stability metrics over a stream of [`RepairReport`]s.
//!
//! The per-event reports answer "what did this event cost"; the
//! [`StabilityMetrics`] accumulator answers the questions the churn
//! experiments plot: how stable is the backbone (mean survival), how
//! local is repair (locality histogram), how often does the engine give
//! up and recompute (decision counts by reason), and how far from the
//! fresh greedy baseline does maintenance drift (size-ratio statistics).

use std::time::Duration;

use crate::engine::{RecomputeReason, RepairDecision, RepairReport};

/// Running aggregation of [`RepairReport`]s.
///
/// All fields are public so experiment binaries can serialize them
/// directly; use [`StabilityMetrics::record`] to feed reports in.
///
/// ```
/// use mcds_geom::Point;
/// use mcds_maintain::{MaintainConfig, Maintainer, StabilityMetrics, TopologyEvent};
///
/// let pts = (0..6).map(|i| Point::new(i as f64 * 0.9, 0.0)).collect();
/// let mut engine = Maintainer::with_population(MaintainConfig::default(), pts);
/// let mut metrics = StabilityMetrics::new();
/// metrics.record(&engine.apply(TopologyEvent::Join { pos: Point::new(5.4, 0.0) }));
/// metrics.record(&engine.apply(TopologyEvent::Leave { node: 0 }));
/// assert_eq!(metrics.events, 2);
/// assert_eq!(metrics.invalid_events, 0);
/// assert!(metrics.mean_survival() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StabilityMetrics {
    /// Total events recorded.
    pub events: usize,
    /// Events resolved by local repair.
    pub repaired: usize,
    /// Full recomputes by reason: `[ColdStart, Stalled, Invalid, Drift]`.
    pub recomputed: [usize; 4],
    /// Events whose maintained set failed verification (should stay 0).
    pub invalid_events: usize,
    /// Sum of [`RepairReport::violations`] — nodes an event undominated
    /// before repair, the robustness figure of the failure-injection
    /// experiment (E22).
    pub violations_sum: usize,
    /// Events that undominated at least one node before repair.
    pub violated_events: usize,
    /// Sum of per-event survival fractions.
    pub survival_sum: f64,
    /// Minimum per-event survival fraction seen (1.0 before any event).
    pub survival_min: f64,
    /// Repair-locality histogram: events bucketed by
    /// `nodes_touched / alive` into `[0–10%, 10–25%, 25–50%, 50–100%]`.
    /// Recomputes count in the last bucket (they touch everything).
    pub locality_hist: [usize; 4],
    /// Sum of `nodes_touched` over locally repaired events.
    pub touched_sum: usize,
    /// Sum of maintained-over-baseline size ratios.
    pub ratio_sum: f64,
    /// Worst maintained-over-baseline size ratio seen.
    pub ratio_max: f64,
    /// Total wall time across events.
    pub wall_total: Duration,
    /// Longest single-event wall time.
    pub wall_max: Duration,
}

impl StabilityMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StabilityMetrics {
            survival_min: 1.0,
            ..StabilityMetrics::default()
        }
    }

    /// Folds one report into the aggregate.
    pub fn record(&mut self, report: &RepairReport) {
        self.events += 1;
        match report.decision {
            RepairDecision::Repaired => {
                self.repaired += 1;
                self.touched_sum += report.nodes_touched;
                let frac = if report.alive == 0 {
                    0.0
                } else {
                    report.nodes_touched as f64 / report.alive as f64
                };
                self.locality_hist[locality_bucket(frac)] += 1;
            }
            RepairDecision::Recomputed(reason) => {
                self.recomputed[reason_index(reason)] += 1;
                self.locality_hist[3] += 1;
            }
        }
        if !report.valid {
            self.invalid_events += 1;
        }
        self.violations_sum += report.violations;
        if report.violations > 0 {
            self.violated_events += 1;
        }
        self.survival_sum += report.survival;
        if report.survival < self.survival_min {
            self.survival_min = report.survival;
        }
        let ratio = report.size_ratio();
        self.ratio_sum += ratio;
        if ratio > self.ratio_max {
            self.ratio_max = ratio;
        }
        self.wall_total += report.wall;
        if report.wall > self.wall_max {
            self.wall_max = report.wall;
        }
    }

    /// Fraction of events resolved by local repair.
    pub fn repair_rate(&self) -> f64 {
        if self.events == 0 {
            return 1.0;
        }
        self.repaired as f64 / self.events as f64
    }

    /// Total recomputes across all reasons.
    pub fn recompute_total(&self) -> usize {
        self.recomputed.iter().sum()
    }

    /// Mean backbone survival fraction per event.
    pub fn mean_survival(&self) -> f64 {
        if self.events == 0 {
            return 1.0;
        }
        self.survival_sum / self.events as f64
    }

    /// Mean maintained-over-baseline size ratio.
    pub fn mean_ratio(&self) -> f64 {
        if self.events == 0 {
            return 1.0;
        }
        self.ratio_sum / self.events as f64
    }

    /// Mean nodes touched per locally repaired event.
    pub fn mean_touched(&self) -> f64 {
        if self.repaired == 0 {
            return 0.0;
        }
        self.touched_sum as f64 / self.repaired as f64
    }

    /// Mean wall time per event.
    pub fn mean_wall(&self) -> Duration {
        if self.events == 0 {
            return Duration::ZERO;
        }
        self.wall_total / self.events as u32
    }

    /// Mean wall time per event, in microseconds — the unit the churn
    /// artifacts report (wall-clock data is quarantined from comparable
    /// CSVs; see DESIGN.md §8).
    pub fn mean_wall_us(&self) -> f64 {
        self.mean_wall().as_secs_f64() * 1e6
    }

    /// Longest single-event wall time, in microseconds.
    pub fn max_wall_us(&self) -> f64 {
        self.wall_max.as_secs_f64() * 1e6
    }

    /// Fraction of events in locality bucket `bucket` (see
    /// [`StabilityMetrics::locality_hist`]); 0.0 before any event.
    pub fn locality_share(&self, bucket: usize) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.locality_hist[bucket] as f64 / self.events as f64
    }
}

/// Maps a touched-fraction to its [`StabilityMetrics::locality_hist`]
/// bucket.
fn locality_bucket(frac: f64) -> usize {
    if frac <= 0.10 {
        0
    } else if frac <= 0.25 {
        1
    } else if frac <= 0.50 {
        2
    } else {
        3
    }
}

/// Fixed index of each reason in [`StabilityMetrics::recomputed`].
fn reason_index(reason: RecomputeReason) -> usize {
    match reason {
        RecomputeReason::ColdStart => 0,
        RecomputeReason::Stalled => 1,
        RecomputeReason::Invalid => 2,
        RecomputeReason::Drift => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TopologyEvent;
    use mcds_geom::Point;

    fn report(decision: RepairDecision, touched: usize, survival: f64) -> RepairReport {
        RepairReport {
            seq: 0,
            event: TopologyEvent::Join {
                pos: Point::new(0.0, 0.0),
            },
            node: 0,
            alive: 100,
            giant: 100,
            nodes_touched: touched,
            violations: 0,
            dominators_added: 0,
            dominators_removed: 0,
            connectors_added: 0,
            connectors_removed: 0,
            decision,
            cds_size: 12,
            baseline_size: 10,
            survival,
            wall: Duration::from_micros(50),
            valid: true,
        }
    }

    #[test]
    fn empty_metrics_have_neutral_summaries() {
        let m = StabilityMetrics::new();
        assert_eq!(m.events, 0);
        assert_eq!(m.repair_rate(), 1.0);
        assert_eq!(m.mean_survival(), 1.0);
        assert_eq!(m.mean_ratio(), 1.0);
        assert_eq!(m.mean_wall(), Duration::ZERO);
    }

    #[test]
    fn records_split_by_decision() {
        let mut m = StabilityMetrics::new();
        m.record(&report(RepairDecision::Repaired, 5, 1.0));
        m.record(&report(RepairDecision::Repaired, 30, 0.8));
        m.record(&report(
            RepairDecision::Recomputed(RecomputeReason::Drift),
            0,
            0.5,
        ));
        assert_eq!(m.events, 3);
        assert_eq!(m.repaired, 2);
        assert_eq!(m.recompute_total(), 1);
        assert_eq!(m.recomputed[3], 1);
        // 5/100 → bucket 0; 30/100 → bucket 2; recompute → bucket 3.
        assert_eq!(m.locality_hist, [1, 0, 1, 1]);
        assert!((m.mean_survival() - (1.0 + 0.8 + 0.5) / 3.0).abs() < 1e-12);
        assert!((m.survival_min - 0.5).abs() < 1e-12);
        assert!((m.mean_ratio() - 1.2).abs() < 1e-12);
        assert!((m.ratio_max - 1.2).abs() < 1e-12);
        assert!((m.mean_touched() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn locality_buckets_are_inclusive_on_the_left_edge() {
        assert_eq!(locality_bucket(0.0), 0);
        assert_eq!(locality_bucket(0.10), 0);
        assert_eq!(locality_bucket(0.11), 1);
        assert_eq!(locality_bucket(0.25), 1);
        assert_eq!(locality_bucket(0.50), 2);
        assert_eq!(locality_bucket(0.51), 3);
        assert_eq!(locality_bucket(1.0), 3);
    }
}
