//! Differential tests: the maintenance engine versus from-scratch
//! construction.
//!
//! For every seeded churn stream, after *every* event the maintained set
//! must (a) be a connected dominating set of the live giant component —
//! checked here independently of the engine's own verification — and
//! (b) stay within 2× of a fresh [`mcds_cds::greedy_cds`] run on the
//! same snapshot (the engine's drift threshold of 1.75 makes the 2×
//! bound hold by construction; the test pins it against regressions in
//! the drift accounting).

use mcds_cds::{Algorithm, Solver};
use mcds_geom::{Aabb, Point};
use mcds_graph::{properties, traversal};
use mcds_maintain::{
    waypoint_epoch, ChurnConfig, ChurnGen, MaintainConfig, Maintainer, NodeId, StabilityMetrics,
    TopologyEvent,
};
use mcds_rng::rngs::StdRng;
use mcds_rng::{Rng, SeedableRng};
use mcds_udg::mobility::RandomWaypoint;
use mcds_udg::Udg;

/// Independently rebuilds the topology from the engine's live population
/// and checks the maintained backbone against the giant component,
/// returning `(giant size, maintained size on giant, fresh greedy size)`.
fn audit(engine: &Maintainer, context: &str) -> (usize, usize, usize) {
    let alive = engine.alive();
    if alive.is_empty() {
        assert!(
            engine.backbone().is_empty(),
            "{context}: backbone nonempty with no nodes alive"
        );
        return (0, 0, 0);
    }
    let ids: Vec<NodeId> = alive.iter().map(|&(id, _)| id).collect();
    let pts: Vec<Point> = alive.iter().map(|&(_, p)| p).collect();
    let udg = Udg::with_radius(pts, engine.config().radius);
    let giant = traversal::largest_component(udg.graph());
    let sub = udg.restricted_to(&giant);
    let giant_ids: Vec<NodeId> = giant.iter().map(|&i| ids[i]).collect();

    let backbone_local: Vec<usize> = engine
        .backbone()
        .iter()
        .filter_map(|id| giant_ids.binary_search(id).ok())
        .collect();
    assert!(
        properties::is_connected_dominating_set(sub.graph(), &backbone_local),
        "{context}: maintained set is not a CDS of the giant component \
         (giant {} nodes, backbone-on-giant {:?})",
        giant.len(),
        backbone_local
    );

    let fresh = Solver::new(Algorithm::GreedyConnect)
        .solve(sub.graph())
        .expect("giant component is connected and non-empty")
        .len();
    assert!(
        backbone_local.len() <= 2 * fresh,
        "{context}: maintained size {} exceeds 2x the fresh greedy size {}",
        backbone_local.len(),
        fresh
    );
    (giant.len(), backbone_local.len(), fresh)
}

fn uniform_points<R: Rng + ?Sized>(rng: &mut R, n: usize, side: f64) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..=side), rng.gen_range(0.0..=side)))
        .collect()
}

#[test]
fn synthetic_churn_stays_valid_and_bounded_over_300_events() {
    // Three seeds x 100 events = 300 audited events, exceeding the
    // 200-event floor even if one stream were ever trimmed.
    for seed in [11u64, 42, 2008] {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 6.0;
        let pts = uniform_points(&mut rng, 80, side);
        let mut engine = Maintainer::with_population(MaintainConfig::default(), pts);
        audit(&engine, &format!("seed {seed}, initial population"));

        let mut churn = ChurnGen::new(ChurnConfig {
            region: Aabb::square(side),
            p_join: 0.15,
            p_leave: 0.15,
            move_radius: 0.75,
            min_population: 4,
        });
        let mut metrics = StabilityMetrics::new();
        for step in 0..100 {
            let event = churn.next_event(&mut rng, &engine.alive());
            let report = engine.apply(event);
            assert!(
                report.valid,
                "seed {seed}, event {step}: engine reported an invalid set"
            );
            let (_, maintained, fresh) = audit(&engine, &format!("seed {seed}, event {step}"));
            assert_eq!(
                maintained, report.cds_size,
                "seed {seed}, event {step}: report disagrees with audit"
            );
            assert_eq!(
                fresh, report.baseline_size,
                "seed {seed}, event {step}: baseline disagrees with audit"
            );
            metrics.record(&report);
        }
        assert_eq!(metrics.events, 100);
        assert_eq!(metrics.invalid_events, 0);
        // The whole point of maintenance: most events repair locally.
        assert!(
            metrics.repair_rate() > 0.5,
            "seed {seed}: local repair resolved only {:.0}% of events",
            100.0 * metrics.repair_rate()
        );
        assert!(
            metrics.ratio_max <= 2.0,
            "seed {seed}: worst size ratio {} broke the 2x bound",
            metrics.ratio_max
        );
    }
}

#[test]
fn waypoint_churn_stays_valid_and_bounded_over_200_events() {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 60;
    let side = 5.5;
    let mut walk = RandomWaypoint::new(&mut rng, n, Aabb::square(side), (0.4, 1.6), 0.1);
    let mut engine =
        Maintainer::with_population(MaintainConfig::default(), walk.positions().to_vec());
    let ids: Vec<NodeId> = (0..n).collect();

    let mut applied = 0;
    let mut epochs = 0;
    while applied < 200 && epochs < 2000 {
        epochs += 1;
        for event in waypoint_epoch(&mut walk, &mut rng, 0.3, &ids) {
            if applied == 200 {
                break;
            }
            let report = engine.apply(event);
            assert!(report.valid, "epoch {epochs}, event {applied}: invalid");
            audit(&engine, &format!("epoch {epochs}, event {applied}"));
            assert!(
                report.size_ratio() <= 2.0,
                "event {applied}: ratio {} broke the 2x bound",
                report.size_ratio()
            );
            applied += 1;
        }
    }
    assert_eq!(applied, 200, "walk failed to produce 200 move events");
    // Population is fixed in waypoint mode.
    assert_eq!(engine.population(), n);
}

#[test]
fn adversarial_stream_empty_refill_split_remerge() {
    // Hand-built stream exercising the engine's edge paths: drain the
    // population to nothing, refill it, then drag a node far away and
    // back (giant-component flip).  Every state is audited.
    let mut engine = Maintainer::with_population(
        MaintainConfig::default(),
        vec![
            Point::new(0.0, 0.0),
            Point::new(0.8, 0.0),
            Point::new(1.6, 0.0),
        ],
    );
    for node in 0..3 {
        let report = engine.apply(TopologyEvent::Leave { node });
        assert!(report.valid);
        audit(&engine, &format!("drain step {node}"));
    }
    assert_eq!(engine.population(), 0);

    for k in 0..6 {
        let report = engine.apply(TopologyEvent::Join {
            pos: Point::new(k as f64 * 0.7, 0.0),
        });
        assert!(report.valid);
        audit(&engine, &format!("refill step {k}"));
    }
    // Drag the middle node far away (splits the chain), then back.
    let far = Point::new(100.0, 100.0);
    let report = engine.apply(TopologyEvent::Move { node: 5, to: far });
    assert!(report.valid);
    audit(&engine, "after split");
    let report = engine.apply(TopologyEvent::Move {
        node: 5,
        to: Point::new(3.5, 0.0),
    });
    assert!(report.valid);
    audit(&engine, "after remerge");
    assert_eq!(engine.population(), 6);
}

#[test]
fn dense_cluster_churn_with_tight_drift_threshold() {
    // A tight drift threshold forces frequent recomputes; validity and
    // the (now trivially enforced) bound must still hold.
    let mut rng = StdRng::seed_from_u64(5);
    let pts = uniform_points(&mut rng, 120, 4.0);
    let cfg = MaintainConfig {
        drift_threshold: 1.05,
        ..MaintainConfig::default()
    };
    let mut engine = Maintainer::with_population(cfg, pts);
    let mut churn = ChurnGen::new(ChurnConfig {
        region: Aabb::square(4.0),
        p_join: 0.2,
        p_leave: 0.2,
        move_radius: 1.5,
        min_population: 8,
    });
    let mut metrics = StabilityMetrics::new();
    for step in 0..60 {
        let event = churn.next_event(&mut rng, &engine.alive());
        let report = engine.apply(event);
        assert!(report.valid, "event {step}: invalid");
        audit(&engine, &format!("tight-drift event {step}"));
        metrics.record(&report);
    }
    assert!(
        metrics.ratio_max <= 1.05 + 1e-9,
        "drift threshold 1.05 not enforced: worst ratio {}",
        metrics.ratio_max
    );
}
