//! Pipeline fuzzing of the maintenance engine with `mcds-check`:
//! random initial populations and churn parameter mixes, with the
//! incremental repair checked against a full recompute after every
//! event.
//!
//! This complements the fixed-seed streams in `tests/differential.rs`
//! with *generated* populations and churn mixes that shrink to a
//! minimal failing deployment when an invariant breaks.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mcds_cds::{Algorithm, Solver};
use mcds_check::gen::{point_sets, u64s, usizes};
use mcds_check::{prop_assert, Property, TestResult};
use mcds_geom::{Aabb, Point};
use mcds_graph::{properties, traversal};
use mcds_maintain::{ChurnConfig, ChurnGen, MaintainConfig, Maintainer, NodeId};
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;
use mcds_udg::Udg;

const SIDE: f64 = 5.0;

/// Rebuilds the topology from the live population and checks the
/// maintained backbone against a from-scratch greedy recompute.
/// Returns an error message instead of panicking so the property
/// shrinks the deployment on failure.
fn audit(engine: &Maintainer, context: &str) -> Result<(), String> {
    let alive = engine.alive();
    if alive.is_empty() {
        return if engine.backbone().is_empty() {
            Ok(())
        } else {
            Err(format!("{context}: backbone nonempty with no nodes alive"))
        };
    }
    let ids: Vec<NodeId> = alive.iter().map(|&(id, _)| id).collect();
    let pts: Vec<Point> = alive.iter().map(|&(_, p)| p).collect();
    let udg = Udg::with_radius(pts, engine.config().radius);
    let giant = traversal::largest_component(udg.graph());
    let sub = udg.restricted_to(&giant);
    let giant_ids: Vec<NodeId> = giant.iter().map(|&i| ids[i]).collect();
    let backbone_local: Vec<usize> = engine
        .backbone()
        .iter()
        .filter_map(|id| giant_ids.binary_search(id).ok())
        .collect();
    if !properties::is_connected_dominating_set(sub.graph(), &backbone_local) {
        return Err(format!(
            "{context}: maintained set is not a CDS of the giant component ({} nodes)",
            giant.len()
        ));
    }
    let fresh = Solver::new(Algorithm::GreedyConnect)
        .solve(sub.graph())
        .map_err(|e| format!("{context}: fresh recompute failed: {e}"))?
        .len();
    if backbone_local.len() > 2 * fresh {
        return Err(format!(
            "{context}: maintained size {} exceeds 2x the fresh recompute {}",
            backbone_local.len(),
            fresh
        ));
    }
    Ok(())
}

#[test]
fn random_churn_streams_repair_to_valid_bounded_backbones() {
    // (initial deployment, churn seed, event count, join%, leave%,
    //  move radius in tenths) — churn probabilities sweep 0..=40% each
    // and the move radius sweeps 0.1..=2.0, covering gentle drift
    // through violent relocation.
    let gen = (
        point_sets(1..=40, SIDE),
        u64s(0..=u64::MAX),
        usizes(1..=25),
        (usizes(0..=40), usizes(0..=40), usizes(1..=20)),
    );
    Property::new("random_churn_streams_repair_to_valid_bounded_backbones")
        .cases(48)
        .run(&gen, |(points, seed, events, knobs)| {
            let (join_pct, leave_pct, radius_decis) = knobs;
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
                let mut engine =
                    Maintainer::with_population(MaintainConfig::default(), points.clone());
                audit(&engine, "initial population")?;
                let mut churn = ChurnGen::new(ChurnConfig {
                    region: Aabb::square(SIDE),
                    p_join: *join_pct as f64 / 100.0,
                    p_leave: *leave_pct as f64 / 100.0,
                    move_radius: *radius_decis as f64 / 10.0,
                    min_population: 1,
                });
                let mut rng = StdRng::seed_from_u64(*seed);
                for step in 0..*events {
                    let event = churn.next_event(&mut rng, &engine.alive());
                    let report = engine.apply(event);
                    if !report.valid {
                        return Err(format!("event {step}: engine reported invalid"));
                    }
                    audit(&engine, &format!("event {step}"))?;
                }
                Ok(())
            }));
            match outcome {
                Ok(Ok(())) => TestResult::Pass,
                Ok(Err(msg)) => TestResult::Fail(msg),
                Err(_) => TestResult::Fail("engine panicked under churn".into()),
            }
        });
}

#[test]
fn repeated_moves_of_one_node_never_desync_the_backbone() {
    // A single node teleporting around a fixed deployment is the
    // harshest localized-repair case: the component repeatedly splits
    // and re-merges through one articulation point.
    let gen = (point_sets(2..=20, 3.0), u64s(0..=u64::MAX), usizes(1..=15));
    Property::new("repeated_moves_of_one_node_never_desync_the_backbone")
        .cases(48)
        .run(&gen, |(points, seed, moves)| {
            let mut engine = Maintainer::with_population(MaintainConfig::default(), points.clone());
            let mut rng = StdRng::seed_from_u64(*seed);
            use mcds_rng::Rng;
            for step in 0..*moves {
                let alive = engine.alive();
                let (node, _) = alive[rng.gen_range(0..alive.len())];
                let to = Point::new(rng.gen_range(0.0..=6.0), rng.gen_range(0.0..=6.0));
                let report = engine.apply(mcds_maintain::TopologyEvent::Move { node, to });
                prop_assert!(report.valid, "move {} reported invalid", step);
                if let Err(msg) = audit(&engine, &format!("move {step}")) {
                    return TestResult::Fail(msg);
                }
            }
            TestResult::Pass
        });
}
