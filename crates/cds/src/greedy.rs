//! The paper's new two-phased algorithm (Section IV): first-fit MIS plus
//! greedy max-gain connectors.

use mcds_graph::RandomAccessGraph;

use crate::{Algorithm, Cds, CdsError, Solver};

/// Runs the Section-IV algorithm rooted at the minimum-id node.
///
/// See [`greedy_cds_rooted`].  Thin wrapper over [`Solver`]; prefer
/// `Solver::new(Algorithm::GreedyConnect).solve(g)` in new code.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] if `g` has no nodes,
/// * [`CdsError::DisconnectedGraph`] if `g` is disconnected.
pub fn greedy_cds<G: RandomAccessGraph>(g: &G) -> Result<Cds, CdsError> {
    greedy_cds_rooted(g, 0)
}

/// Runs the paper's new algorithm with an explicit root.
///
/// Phase 1 is identical to [`crate::waf_cds_rooted`]: the BFS-ordered
/// first-fit MIS `I`.  Phase 2 selects connectors *"in a natural greedy
/// manner"*: while `G[I ∪ C]` has more than one connected component, add
/// the node `w` of maximum gain `Δ_w q(C) = q(C) − q(C ∪ {w})`.  Lemma 9
/// guarantees a node of gain ≥ 1 always exists, so the loop terminates
/// with a CDS; Theorem 10 bounds the result by `6 7/18 · γ_c(G)`.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] if `g` has no nodes,
/// * [`CdsError::DisconnectedGraph`] if `g` is disconnected.
///
/// # Panics
///
/// Panics if `root` is out of range (the [`Solver`] path reports
/// [`CdsError::InvalidRoot`] instead).
pub fn greedy_cds_rooted<G: RandomAccessGraph>(g: &G, root: usize) -> Result<Cds, CdsError> {
    match Solver::new(Algorithm::GreedyConnect).root(root).solve(g) {
        Ok(solution) => Ok(solution.into_cds()),
        Err(CdsError::InvalidRoot { root, .. }) => panic!("root {root} out of range"),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connect, waf_cds_rooted};
    use mcds_graph::{properties, Graph};

    #[test]
    fn errors_on_bad_inputs() {
        assert_eq!(greedy_cds(&Graph::empty(0)), Err(CdsError::EmptyGraph));
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(greedy_cds(&split), Err(CdsError::DisconnectedGraph));
    }

    #[test]
    fn valid_on_named_families() {
        let graphs = [
            Graph::empty(1),
            Graph::path(2),
            Graph::path(15),
            Graph::cycle(13),
            Graph::star(9),
            Graph::complete(6),
        ];
        for g in &graphs {
            let cds = greedy_cds(g).unwrap();
            cds.verify(g).unwrap_or_else(|e| panic!("{g:?}: {e}"));
            assert!(
                properties::is_maximal_independent_set(g, cds.dominators()),
                "{g:?}"
            );
        }
    }

    #[test]
    fn greedy_never_larger_than_waf_with_same_root() {
        // Both algorithms share phase 1; greedy's phase 2 is at least as
        // economical on these families (not a theorem in general, but a
        // strong regularity the paper's Section IV motivates).
        let graphs = [
            Graph::path(20),
            Graph::cycle(17),
            Graph::from_edges(
                12,
                [
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (7, 8),
                    (8, 9),
                    (9, 10),
                    (10, 11),
                    (0, 6),
                    (3, 9),
                ],
            ),
        ];
        for g in &graphs {
            let waf = waf_cds_rooted(g, 0).unwrap();
            let greedy = greedy_cds_rooted(g, 0).unwrap();
            assert!(
                greedy.len() <= waf.len(),
                "{g:?}: greedy {} > waf {}",
                greedy.len(),
                waf.len()
            );
        }
    }

    #[test]
    fn connector_gains_all_positive() {
        let g = Graph::path(25);
        let cds = greedy_cds(&g).unwrap();
        // Recompute the selection sequence (Cds stores connectors sorted).
        let seq = connect::max_gain_connectors(&g, cds.dominators()).unwrap();
        let trace = connect::gain_trace(&g, cds.dominators(), &seq);
        assert!(trace.iter().all(|&t| t >= 1));
        assert_eq!(
            mcds_graph::node_set(seq),
            cds.connectors().to_vec(),
            "sorted selection sequence must equal the stored connectors"
        );
    }

    #[test]
    fn every_root_is_valid() {
        let g = Graph::cycle(10);
        for root in 0..10 {
            let cds = greedy_cds_rooted(&g, root).unwrap();
            cds.verify(&g)
                .unwrap_or_else(|e| panic!("root {root}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_root_panics() {
        let _ = greedy_cds_rooted(&Graph::path(2), 9);
    }
}
