//! Two-phased connected-dominating-set algorithms — the core contribution
//! of *"Two-Phased Approximation Algorithms for Minimum CDS in Wireless Ad
//! Hoc Networks"* (Wan, Wang & Yao, ICDCS 2008).
//!
//! Both of the paper's algorithms first elect the BFS-ordered first-fit
//! MIS of [`mcds_mis::BfsMis`] as the *dominator* set, then differ in how
//! they select *connectors*:
//!
//! * [`waf_cds`] — the algorithm of Wan–Alzoubi–Frieder \[10\] as analyzed
//!   in the paper's Section III: one special neighbor `s` of the root plus
//!   the BFS-tree parents of the dominators `s` does not cover.
//!   Approximation ratio at most **7⅓** (Theorem 8).
//! * [`greedy_cds`] — the paper's new Section-IV algorithm: connectors are
//!   chosen greedily by maximum *gain* (the drop in the number of
//!   connected components of `G[I ∪ C]`).  Approximation ratio at most
//!   **6 7/18** (Theorem 10).
//!
//! The baselines the paper positions itself against are here too:
//!
//! * [`chvatal_cds`] — phase 1 by Chvátal's greedy Set Cover \[2\]
//!   (logarithmic ratio), connected by shortest-path connectors,
//! * [`arbitrary_mis_cds`] — an arbitrary (lexicographic) MIS \[1\]/\[9\]
//!   with max-gain connectors,
//! * [`greedy_growth_cds`] — the classic single-phase Guha–Khuller-style
//!   greedy grow,
//!
//! plus a validity-preserving [`prune`] post-pass (an extension beyond the
//! paper), the generic connector routines in [`connect`] — both with
//! size-selected scalar/word-parallel-bitset hot-path implementations
//! ([`kernel`]) proven byte-identical —
//! backbone-routing stretch measurement in [`routing`], and the
//! fault-tolerant `(k,m)` backbone family in [`fault`] — m-fold
//! domination and 2-connectivity augmentation reachable through
//! [`Solver::m`] and [`Solver::biconnect`].
//!
//! # The [`Solver`] entry point
//!
//! All constructions are reachable through one configurable builder,
//! which also owns verification, pruning, and per-phase timing:
//!
//! ```
//! use mcds_graph::Graph;
//! use mcds_cds::{Algorithm, Solver};
//!
//! let g = Graph::path(9);
//! let solution = Solver::new(Algorithm::GreedyConnect)
//!     .verify(true)
//!     .solve(&g)?;
//! assert!(solution.len() >= 7); // γ_c(P9) = 7
//! assert_eq!(solution.algorithm(), Algorithm::GreedyConnect);
//! # Ok::<(), mcds_cds::CdsError>(())
//! ```
//!
//! The free functions below are kept as thin wrappers for existing
//! callers and the paper-notation tests.
//!
//! # Example
//!
//! ```
//! use mcds_graph::{Graph, properties};
//! use mcds_cds::{waf_cds, greedy_cds};
//!
//! let g = Graph::path(9);
//! let waf = waf_cds(&g)?;
//! let greedy = greedy_cds(&g)?;
//! assert!(properties::is_connected_dominating_set(&g, waf.nodes()));
//! assert!(properties::is_connected_dominating_set(&g, greedy.nodes()));
//! assert!(greedy.len() <= waf.len() + 1); // typically smaller
//! # Ok::<(), mcds_cds::CdsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod greedy;
mod growth;
mod result;
mod setcover;
mod solver;
mod waf;

pub mod accounting;
pub mod algorithms;
pub mod connect;
pub mod fault;
pub mod kernel;
pub mod prune;
pub mod routing;

pub use algorithms::{parse_selector, Algorithm, UnknownAlgorithm};
pub use error::CdsError;
pub use fault::{fault_tolerant_cds, m_fold_dominators, UnknownWeightScheme, WeightScheme};
pub use greedy::{greedy_cds, greedy_cds_rooted};
pub use growth::greedy_growth_cds;
pub use mcds_graph::CdsViolation;
pub use result::{check_cds, Cds};
pub use setcover::{arbitrary_mis_cds, chvatal_cds, chvatal_dominating_set};
pub use solver::{PhaseTimings, Solution, Solver};
pub use waf::{waf_cds, waf_cds_rooted};
