//! The classic single-phase greedy-growth CDS (Guha–Khuller style).
//!
//! Unlike the two-phased family, this baseline grows one connected set
//! from a high-degree seed: repeatedly add the node adjacent to the
//! current set that newly dominates the most still-undominated nodes.
//! The set stays connected by construction and stops as soon as it
//! dominates.  On general graphs its ratio is `O(log Δ)` (Guha & Khuller
//! 1998); the CDS literature the paper builds on ([2], [8]) uses closely
//! related greedy covers, which is why it belongs in the comparison pool.

use mcds_graph::RandomAccessGraph;

use crate::{Algorithm, Cds, CdsError, Solution, Solver};

/// Runs the greedy-growth construction.
///
/// The seed is the maximum-degree node (ties toward the smaller id); each
/// step adds the neighbor of the current set with the largest number of
/// newly dominated nodes (ties toward the smaller id).  Progress is
/// guaranteed on connected graphs: while some node is undominated, some
/// candidate has positive gain.
///
/// The returned [`Cds`] reports the whole set as dominators (there is no
/// phase split in this algorithm) and no connectors.  Thin wrapper over
/// [`Solver`]; prefer `Solver::new(Algorithm::GreedyGrowth).solve(g)` in
/// new code.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] if `g` has no nodes,
/// * [`CdsError::DisconnectedGraph`] if `g` is disconnected.
pub fn greedy_growth_cds<G: RandomAccessGraph>(g: &G) -> Result<Cds, CdsError> {
    Solver::new(Algorithm::GreedyGrowth)
        .solve(g)
        .map(Solution::into_cds)
}

/// The growth loop proper; `g` must be non-empty and connected.  Returns
/// the grown set in selection order.
pub(crate) fn grow<G: RandomAccessGraph>(g: &G) -> Vec<usize> {
    let n = g.num_nodes();
    let seed = (0..n)
        .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v)))
        .expect("nonempty");

    let mut in_set = vec![false; n];
    let mut dominated = vec![false; n];
    let mut undominated = n;
    let mut set = Vec::new();

    let add = |v: usize,
               in_set: &mut Vec<bool>,
               dominated: &mut Vec<bool>,
               undominated: &mut usize,
               set: &mut Vec<usize>| {
        in_set[v] = true;
        set.push(v);
        if !dominated[v] {
            dominated[v] = true;
            *undominated -= 1;
        }
        for u in g.successors(v) {
            if !dominated[u] {
                dominated[u] = true;
                *undominated -= 1;
            }
        }
    };

    add(
        seed,
        &mut in_set,
        &mut dominated,
        &mut undominated,
        &mut set,
    );

    while undominated > 0 {
        // Candidates: dominated non-members adjacent to the set (gray
        // nodes).  Gain = newly dominated nodes.
        let mut best: Option<(usize, usize)> = None; // (gain, node)
        for v in 0..n {
            if in_set[v] || !dominated[v] {
                continue;
            }
            if !g.successors(v).any(|u| in_set[u]) {
                continue;
            }
            let gain = g.successors(v).filter(|&u| !dominated[u]).count();
            if gain == 0 {
                continue;
            }
            match best {
                Some((bg, bv)) if (bg, std::cmp::Reverse(bv)) >= (gain, std::cmp::Reverse(v)) => {}
                _ => best = Some((gain, v)),
            }
        }
        let (_, v) = best
            .expect("connected graph with undominated nodes always has a positive-gain gray node");
        add(v, &mut in_set, &mut dominated, &mut undominated, &mut set);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::{properties, Graph};

    #[test]
    fn valid_on_named_families() {
        let graphs = [
            Graph::empty(1),
            Graph::path(2),
            Graph::path(12),
            Graph::cycle(9),
            Graph::star(8),
            Graph::complete(6),
        ];
        for g in &graphs {
            let cds = greedy_growth_cds(g).unwrap();
            cds.verify(g).unwrap_or_else(|e| panic!("{g:?}: {e}"));
        }
    }

    #[test]
    fn star_and_complete_take_one_node() {
        assert_eq!(greedy_growth_cds(&Graph::star(9)).unwrap().len(), 1);
        assert_eq!(greedy_growth_cds(&Graph::complete(7)).unwrap().len(), 1);
    }

    #[test]
    fn path_takes_interior() {
        // Greedy grow on P_n: γ_c(P_n) = n − 2 and greedy achieves it
        // (it never needs the endpoints).
        for n in 3..20 {
            let g = Graph::path(n);
            let cds = greedy_growth_cds(&g).unwrap();
            assert_eq!(cds.len(), n - 2, "P_{n}");
        }
    }

    #[test]
    fn intermediate_sets_stay_connected() {
        // The output is connected by construction; verify on a lattice-ish
        // graph.
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (3, 4),
                (4, 5),
                (6, 7),
                (7, 8),
                (0, 3),
                (3, 6),
                (1, 4),
                (4, 7),
                (2, 5),
                (5, 8),
            ],
        );
        let cds = greedy_growth_cds(&g).unwrap();
        assert!(properties::is_connected_dominating_set(&g, cds.nodes()));
        assert!(cds.connectors().is_empty());
    }

    #[test]
    fn errors_on_bad_inputs() {
        assert_eq!(
            greedy_growth_cds(&Graph::empty(0)),
            Err(CdsError::EmptyGraph)
        );
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(greedy_growth_cds(&split), Err(CdsError::DisconnectedGraph));
    }
}
