//! Redundant-node pruning — a validity-preserving post-pass (an extension
//! beyond the paper, ablated in the E6 experiment).
//!
//! A CDS node is *redundant* if removing it leaves the set both dominating
//! and connected.  Pruning scans candidates (largest sets first benefit
//! most from a degree-descending order; we scan by descending degree with
//! id tie-break) and removes greedily.  The result is a minimal — not
//! minimum — CDS contained in the input.

use mcds_graph::{node_mask, subsets, RandomAccessGraph};

use crate::CdsError;

/// Greedily removes redundant nodes from a valid CDS.
///
/// Returns the pruned node set (sorted).  The output is *1-minimal*: no
/// single further removal keeps it a CDS.
///
/// # Errors
///
/// Returns the typed violation (from [`crate::check_cds`]) if `set` is
/// not a valid CDS of `g` to begin with.
pub fn prune_cds<G: RandomAccessGraph>(g: &G, set: &[usize]) -> Result<Vec<usize>, CdsError> {
    crate::check_cds(g, set)?;
    let mut current: Vec<usize> = mcds_graph::node_set(set.iter().copied());
    // Candidates by descending degree: high-degree nodes are more likely
    // to be redundant hubs... actually low-degree CDS members (leaf-like
    // connectors) are the cheap wins; scan ascending degree.
    let mut order = current.clone();
    order.sort_by_key(|&v| (g.degree(v), v));
    for v in order {
        if current.len() <= 1 {
            break;
        }
        let candidate: Vec<usize> = current.iter().copied().filter(|&u| u != v).collect();
        if is_cds_fast(g, &candidate) {
            current = candidate;
        }
    }
    Ok(current)
}

/// CDS check without the diagnostic string machinery (hot path).
fn is_cds_fast<G: RandomAccessGraph>(g: &G, set: &[usize]) -> bool {
    if set.is_empty() {
        return g.num_nodes() == 0;
    }
    let mask = node_mask(g.num_nodes(), set);
    for v in 0..g.num_nodes() {
        if !mask[v] && !g.successors(v).any(|u| mask[u]) {
            return false;
        }
    }
    subsets::is_connected_subset(g, &mask)
}

/// How many nodes pruning saved on `set` (convenience for experiments).
///
/// # Errors
///
/// Propagates the validity error from [`prune_cds`].
pub fn pruning_savings<G: RandomAccessGraph>(g: &G, set: &[usize]) -> Result<usize, CdsError> {
    let pruned = prune_cds(g, set)?;
    Ok(set.len() - pruned.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_cds, waf_cds};
    use mcds_graph::Graph;

    #[test]
    fn pruned_set_is_valid_and_minimal() {
        let g = Graph::cycle(12);
        let cds = waf_cds(&g).unwrap();
        let pruned = prune_cds(&g, cds.nodes()).unwrap();
        assert!(crate::check_cds(&g, &pruned).is_ok());
        assert!(pruned.len() <= cds.len());
        // 1-minimality: removing any single node breaks the CDS.
        for &v in &pruned {
            let smaller: Vec<usize> = pruned.iter().copied().filter(|&u| u != v).collect();
            assert!(
                !is_cds_fast(&g, &smaller) || smaller.is_empty() && g.num_nodes() == 0,
                "node {v} still redundant"
            );
        }
    }

    #[test]
    fn whole_vertex_set_prunes_substantially() {
        let g = Graph::path(10);
        let all: Vec<usize> = (0..10).collect();
        let pruned = prune_cds(&g, &all).unwrap();
        // Optimal CDS of P10 is the 8 interior nodes; pruning from V can
        // only drop the two endpoints.
        assert_eq!(pruned.len(), 8);
    }

    #[test]
    fn invalid_input_is_rejected() {
        let g = Graph::path(5);
        assert!(prune_cds(&g, &[0, 4]).is_err());
        assert!(pruning_savings(&g, &[]).is_err());
    }

    #[test]
    fn complete_graph_prunes_to_one() {
        let g = Graph::complete(8);
        let all: Vec<usize> = (0..8).collect();
        assert_eq!(prune_cds(&g, &all).unwrap().len(), 1);
    }

    #[test]
    fn savings_reported() {
        let g = Graph::complete(5);
        let all: Vec<usize> = (0..5).collect();
        assert_eq!(pruning_savings(&g, &all).unwrap(), 4);
    }

    #[test]
    fn algorithm_outputs_rarely_shrink_much() {
        // Pruning the paper's algorithms' outputs should stay valid; the
        // savings are usually zero or tiny (their outputs are lean).
        for g in [Graph::path(20), Graph::cycle(15)] {
            let cds = greedy_cds(&g).unwrap();
            let pruned = prune_cds(&g, cds.nodes()).unwrap();
            assert!(crate::check_cds(&g, &pruned).is_ok());
        }
    }
}
