//! Redundant-node pruning — a validity-preserving post-pass (an extension
//! beyond the paper, ablated in the E6 experiment).
//!
//! A CDS node is *redundant* if removing it leaves the set both dominating
//! and connected.  Pruning scans candidates (largest sets first benefit
//! most from a degree-descending order; we scan by descending degree with
//! id tie-break) and removes greedily.  The result is a minimal — not
//! minimum — CDS contained in the input.
//!
//! Two kernels implement the same scan (see [`crate::kernel`]):
//!
//! * **scalar** — the original per-candidate re-check: rebuild the set
//!   minus `v` and re-run the full domination + connectivity scan,
//! * **bitset** — incremental: maintain `cover[u] = |N(u) ∩ S|` counts
//!   and the articulation points of `G[S]` (masked Tarjan over a
//!   [`mcds_graph::bitgraph::BitSet`]), so a candidate is accepted or
//!   rejected in `O(deg v)` and state is patched instead of rebuilt.
//!
//! Both accept exactly the same removals in the same order, so the
//! output is byte-identical (`tests/kernel_equiv.rs`).

use mcds_graph::bitgraph::{self, ArticulationScratch, BitSet};
use mcds_graph::{node_mask, subsets, RandomAccessGraph};

use crate::kernel::{self, Kernel};
use crate::CdsError;

/// Greedily removes redundant nodes from a valid CDS.
///
/// Returns the pruned node set (sorted).  The output is *1-minimal*: no
/// single further removal keeps it a CDS.
///
/// # Errors
///
/// Returns the typed violation (from [`crate::check_cds`]) if `set` is
/// not a valid CDS of `g` to begin with.
pub fn prune_cds<G: RandomAccessGraph>(g: &G, set: &[usize]) -> Result<Vec<usize>, CdsError> {
    prune_cds_with(g, set, kernel::select(g.num_nodes()))
}

/// [`prune_cds`] with an explicit kernel choice (tests and benches; the
/// public entry point selects automatically).
///
/// # Errors
///
/// Same as [`prune_cds`].
pub fn prune_cds_with<G: RandomAccessGraph>(
    g: &G,
    set: &[usize],
    kernel: Kernel,
) -> Result<Vec<usize>, CdsError> {
    crate::check_cds(g, set)?;
    let current: Vec<usize> = mcds_graph::node_set(set.iter().copied());
    // Candidates by descending degree: high-degree nodes are more likely
    // to be redundant hubs... actually low-degree CDS members (leaf-like
    // connectors) are the cheap wins; scan ascending degree.
    let mut order = current.clone();
    order.sort_by_key(|&v| (g.degree(v), v));
    match kernel {
        Kernel::Scalar => Ok(prune_scalar(g, current, &order)),
        Kernel::Bitset => Ok(prune_bitset(g, &current, &order)),
    }
}

/// Original per-candidate re-check: `O(n + m)` per attempted removal.
fn prune_scalar<G: RandomAccessGraph>(
    g: &G,
    mut current: Vec<usize>,
    order: &[usize],
) -> Vec<usize> {
    for &v in order {
        if current.len() <= 1 {
            break;
        }
        let candidate: Vec<usize> = current.iter().copied().filter(|&u| u != v).collect();
        if is_cds_fast(g, &candidate) {
            current = candidate;
        }
    }
    current
}

/// Incremental kernel: a removal of `v` from the valid CDS `S` keeps it
/// a CDS iff
///
/// 1. `cover[v] ≥ 1` — `v` itself stays dominated,
/// 2. every non-member neighbor `u` of `v` has `cover[u] ≥ 2` — `u`
///    keeps a dominator after losing `v`,
/// 3. `v` is not an articulation point of `G[S]` — connectivity holds
///    (member neighbors stay dominated by membership).
///
/// These are exactly the conditions the scalar full re-scan tests, so
/// scanning the same order yields the identical set.  `cover` is patched
/// in `O(deg v)` per removal; the masked Tarjan cut set is recomputed
/// only after an *accepted* removal (`O(Σ_{u∈S} deg u)`), not per
/// candidate.
fn prune_bitset<G: RandomAccessGraph>(g: &G, current: &[usize], order: &[usize]) -> Vec<usize> {
    let n = g.num_nodes();
    let rows = kernel::maybe_rows(g);
    let rows = rows.as_ref();
    let mut in_set = BitSet::from_nodes(n, current);
    let mut size = current.len();
    let mut cover = vec![0u32; n];
    for &v in current {
        kernel::for_each_neighbor(g, rows, v, |u| cover[u] += 1);
    }
    let mut scratch = ArticulationScratch::new();
    let mut cut = BitSet::new(n);
    bitgraph::masked_articulation_points(g, &in_set, &mut scratch, &mut cut);
    for &v in order {
        if size <= 1 {
            break;
        }
        if !in_set.contains(v) || cover[v] == 0 || cut.contains(v) {
            continue;
        }
        let mut dominated = true;
        kernel::for_each_neighbor(g, rows, v, |u| {
            if dominated && !in_set.contains(u) && cover[u] < 2 {
                dominated = false;
            }
        });
        if !dominated {
            continue;
        }
        in_set.remove(v);
        size -= 1;
        kernel::for_each_neighbor(g, rows, v, |u| cover[u] -= 1);
        bitgraph::masked_articulation_points(g, &in_set, &mut scratch, &mut cut);
        debug_assert!(is_cds_fast(g, &in_set.to_nodes()));
    }
    in_set.to_nodes()
}

/// CDS check without the diagnostic string machinery (hot path).
///
/// Early-exits on the first uncovered vertex; the number of scan steps
/// taken is flushed to the `prune.scan_steps` counter so the
/// short-circuit is observable.
pub(crate) fn is_cds_fast<G: RandomAccessGraph>(g: &G, set: &[usize]) -> bool {
    let (ok, steps) = is_cds_fast_counted(g, set);
    mcds_obs::counter!("prune.scan_steps", steps);
    ok
}

/// [`is_cds_fast`] returning the number of domination-scan steps it
/// performed before deciding (for the short-circuit regression test).
///
/// Scalar semantics: one step per vertex inspected in id order, stopping
/// at the first uncovered vertex.  Above the kernel threshold the
/// domination side runs as a word-parallel coverage mask instead — OR
/// the closed neighborhood of every member into a
/// [`mcds_graph::bitgraph::BitSet`] (one step per member row), then find
/// the first gap with [`BitSet::first_unset`].
pub(crate) fn is_cds_fast_counted<G: RandomAccessGraph>(g: &G, set: &[usize]) -> (bool, u64) {
    if set.is_empty() {
        return (g.num_nodes() == 0, 0);
    }
    match kernel::select(g.num_nodes()) {
        Kernel::Scalar => is_cds_fast_scalar(g, set),
        Kernel::Bitset => is_cds_fast_bitset(g, set),
    }
}

fn is_cds_fast_scalar<G: RandomAccessGraph>(g: &G, set: &[usize]) -> (bool, u64) {
    let mask = node_mask(g.num_nodes(), set);
    let mut steps = 0u64;
    for v in 0..g.num_nodes() {
        steps += 1;
        if !mask[v] && !g.successors(v).any(|u| mask[u]) {
            return (false, steps);
        }
    }
    (subsets::is_connected_subset(g, &mask), steps)
}

fn is_cds_fast_bitset<G: RandomAccessGraph>(g: &G, set: &[usize]) -> (bool, u64) {
    let n = g.num_nodes();
    // Row-OR coverage mask: members cover themselves and their rows.
    let mut covered = BitSet::from_nodes(n, set);
    let mut steps = 0u64;
    for &v in set {
        steps += 1;
        for u in g.successors(v) {
            covered.insert(u);
        }
    }
    if covered.first_unset().is_some() {
        return (false, steps);
    }
    let mask = node_mask(n, set);
    (subsets::is_connected_subset(g, &mask), steps)
}

/// How many nodes pruning saved on `set` (convenience for experiments).
///
/// # Errors
///
/// Propagates the validity error from [`prune_cds`].
pub fn pruning_savings<G: RandomAccessGraph>(g: &G, set: &[usize]) -> Result<usize, CdsError> {
    let pruned = prune_cds(g, set)?;
    Ok(set.len() - pruned.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_cds, waf_cds};
    use mcds_graph::Graph;

    #[test]
    fn pruned_set_is_valid_and_minimal() {
        let g = Graph::cycle(12);
        let cds = waf_cds(&g).unwrap();
        let pruned = prune_cds(&g, cds.nodes()).unwrap();
        assert!(crate::check_cds(&g, &pruned).is_ok());
        assert!(pruned.len() <= cds.len());
        // 1-minimality: removing any single node breaks the CDS.
        for &v in &pruned {
            let smaller: Vec<usize> = pruned.iter().copied().filter(|&u| u != v).collect();
            assert!(
                !is_cds_fast(&g, &smaller) || smaller.is_empty() && g.num_nodes() == 0,
                "node {v} still redundant"
            );
        }
    }

    #[test]
    fn whole_vertex_set_prunes_substantially() {
        let g = Graph::path(10);
        let all: Vec<usize> = (0..10).collect();
        let pruned = prune_cds(&g, &all).unwrap();
        // Optimal CDS of P10 is the 8 interior nodes; pruning from V can
        // only drop the two endpoints.
        assert_eq!(pruned.len(), 8);
    }

    #[test]
    fn invalid_input_is_rejected() {
        let g = Graph::path(5);
        assert!(prune_cds(&g, &[0, 4]).is_err());
        assert!(pruning_savings(&g, &[]).is_err());
    }

    #[test]
    fn complete_graph_prunes_to_one() {
        let g = Graph::complete(8);
        let all: Vec<usize> = (0..8).collect();
        assert_eq!(prune_cds(&g, &all).unwrap().len(), 1);
    }

    #[test]
    fn savings_reported() {
        let g = Graph::complete(5);
        let all: Vec<usize> = (0..5).collect();
        assert_eq!(pruning_savings(&g, &all).unwrap(), 4);
    }

    #[test]
    fn algorithm_outputs_rarely_shrink_much() {
        // Pruning the paper's algorithms' outputs should stay valid; the
        // savings are usually zero or tiny (their outputs are lean).
        for g in [Graph::path(20), Graph::cycle(15)] {
            let cds = greedy_cds(&g).unwrap();
            let pruned = prune_cds(&g, cds.nodes()).unwrap();
            assert!(crate::check_cds(&g, &pruned).is_ok());
        }
    }

    #[test]
    fn kernels_agree_on_structured_graphs() {
        for (g, set) in [
            (Graph::path(10), (0..10).collect::<Vec<_>>()),
            (Graph::complete(8), (0..8).collect()),
            (Graph::cycle(12), (0..12).collect()),
            (
                Graph::from_edges(7, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6)]),
                (0..7).collect(),
            ),
        ] {
            let a = prune_cds_with(&g, &set, Kernel::Scalar).unwrap();
            let b = prune_cds_with(&g, &set, Kernel::Bitset).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn domination_scan_short_circuits() {
        // Set {98, 99} on P100: vertex 0 is uncovered, so the scalar scan
        // must stop after inspecting it — one step, not one hundred.
        let g = Graph::path(100);
        let (ok, steps) = is_cds_fast_scalar(&g, &[98, 99]);
        assert!(!ok);
        assert_eq!(steps, 1, "scan did not short-circuit");
        // A valid CDS scans everything exactly once.
        let interior: Vec<usize> = (1..99).collect();
        let (ok, steps) = is_cds_fast_scalar(&g, &interior);
        assert!(ok);
        assert_eq!(steps, 100);
        // The bitset coverage mask agrees on both verdicts.
        assert!(!is_cds_fast_bitset(&g, &[98, 99]).0);
        assert!(is_cds_fast_bitset(&g, &interior).0);
    }

    #[test]
    fn scan_steps_reach_the_obs_counter() {
        mcds_obs::enable();
        let g = Graph::path(50);
        let before = mcds_obs::counter_value("prune.scan_steps");
        let _ = is_cds_fast(&g, &[48, 49]);
        let after = mcds_obs::counter_value("prune.scan_steps");
        // Other parallel tests may bump the counter too; the short-circuit
        // contract is that this call added at least its own single step.
        assert!(after > before, "counter did not move: {before} -> {after}");
    }
}
