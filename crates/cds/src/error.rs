//! Error type shared by all CDS constructions and checks.

use std::error::Error;
use std::fmt;

use mcds_graph::CdsViolation;

/// Why a CDS construction, verification, or measurement failed.
///
/// All algorithms in this crate require a connected, non-empty input graph
/// (the paper's standing assumption: a CDS of a disconnected graph does
/// not exist).  The verification variants ([`CdsError::NotDominating`],
/// [`CdsError::NotConnected`], [`CdsError::InvalidSet`]) report the first
/// violated CDS property of a candidate set; the remaining variants carry
/// the context of the specific entry point that raised them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdsError {
    /// The input graph has no nodes.
    EmptyGraph,
    /// The input graph is disconnected; no CDS exists.
    DisconnectedGraph,
    /// The requested root is not a node of the graph.
    InvalidRoot {
        /// The offending root id.
        root: usize,
        /// Number of nodes in the graph (valid roots are `0..nodes`).
        nodes: usize,
    },
    /// A candidate set fails domination: `node` has no neighbor (and is
    /// not itself) in the set.
    NotDominating {
        /// The first node found undominated.
        node: usize,
    },
    /// A candidate set's induced subgraph is disconnected.
    NotConnected,
    /// A candidate set is malformed for the requested check (e.g. empty
    /// on a non-empty graph).
    InvalidSet(String),
    /// A source–target pair is connected in the graph but has no route
    /// whose intermediate hops stay on the backbone — so the backbone is
    /// not a CDS.
    Unroutable {
        /// Route source.
        from: usize,
        /// Route target.
        to: usize,
    },
    /// A candidate set fails m-fold domination: `node` sees only `have`
    /// of the `need` backbone neighbors the fault-tolerance contract
    /// requires (see [`crate::fault::check_m_cds`]).
    NotMDominating {
        /// The first under-covered node found.
        node: usize,
        /// Backbone neighbors the node actually has.
        have: usize,
        /// Backbone neighbors the contract requires (`m`).
        need: usize,
    },
    /// A candidate backbone is connected but not 2-vertex-connected;
    /// `cut` is a cut vertex whose failure would split it (and which
    /// augmentation could not bypass, when raised by
    /// [`crate::fault::biconnect_augment`]).
    NotBiconnected {
        /// A cut vertex of the induced backbone.
        cut: usize,
    },
    /// A proof-derived inequality (Theorem 8/10 accounting) failed on a
    /// concrete instance; the message names the violated piece.
    BoundViolated(String),
    /// An internal invariant failed (e.g. the greedy connector found no
    /// positive-gain node while components remain — impossible for a
    /// valid MIS seed, so this indicates a bad seed set).
    Stalled(String),
}

impl fmt::Display for CdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdsError::EmptyGraph => write!(f, "input graph has no nodes"),
            CdsError::DisconnectedGraph => {
                write!(f, "input graph is disconnected; no CDS exists")
            }
            CdsError::InvalidRoot { root, nodes } => {
                write!(f, "root {root} out of range (graph has {nodes} nodes)")
            }
            CdsError::NotDominating { node } => write!(f, "node {node} is not dominated"),
            CdsError::NotConnected => write!(f, "induced subgraph is disconnected"),
            CdsError::InvalidSet(what) => write!(f, "invalid candidate set: {what}"),
            CdsError::Unroutable { from, to } => {
                write!(
                    f,
                    "pair ({from}, {to}) is connected but unroutable via the backbone"
                )
            }
            CdsError::NotMDominating { node, have, need } => {
                write!(
                    f,
                    "node {node} has only {have} of the {need} required backbone neighbors"
                )
            }
            CdsError::NotBiconnected { cut } => {
                write!(f, "node {cut} is a cut vertex of the backbone")
            }
            CdsError::BoundViolated(what) => write!(f, "proof bound violated: {what}"),
            CdsError::Stalled(what) => write!(f, "connector selection stalled: {what}"),
        }
    }
}

impl Error for CdsError {}

/// Lifts the substrate's [`CdsViolation`] into this crate's error type,
/// preserving the exact diagnostic strings the stringly checker used to
/// produce (so CLI output and test messages are unchanged).
impl From<CdsViolation> for CdsError {
    fn from(v: CdsViolation) -> Self {
        match v {
            CdsViolation::EmptySet => {
                CdsError::InvalidSet("empty set cannot dominate a non-empty graph".into())
            }
            CdsViolation::NotInGraph { node } => {
                CdsError::InvalidSet(format!("node {node} is not a node of the graph"))
            }
            CdsViolation::NotDominating { node } => CdsError::NotDominating { node },
            CdsViolation::NotConnected { .. } => CdsError::NotConnected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        assert!(CdsError::EmptyGraph.to_string().contains("no nodes"));
        assert!(CdsError::DisconnectedGraph
            .to_string()
            .contains("disconnected"));
        assert!(CdsError::Stalled("x".into()).to_string().contains("x"));
        assert!(CdsError::InvalidRoot { root: 9, nodes: 2 }
            .to_string()
            .contains("root 9 out of range"));
        assert!(CdsError::NotDominating { node: 4 }
            .to_string()
            .contains("node 4"));
        assert!(CdsError::NotConnected.to_string().contains("disconnected"));
        assert!(CdsError::InvalidSet("empty".into())
            .to_string()
            .contains("empty"));
        assert!(CdsError::Unroutable { from: 0, to: 6 }
            .to_string()
            .contains("unroutable"));
        assert!(CdsError::BoundViolated("|C1| too big".into())
            .to_string()
            .contains("|C1|"));
        let m = CdsError::NotMDominating {
            node: 3,
            have: 1,
            need: 2,
        };
        assert!(m.to_string().contains("node 3"));
        assert!(m.to_string().contains("only 1 of the 2"));
        assert!(CdsError::NotBiconnected { cut: 5 }
            .to_string()
            .contains("node 5 is a cut vertex"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<CdsError>();
    }

    #[test]
    fn violation_conversion_preserves_diagnostics() {
        assert_eq!(
            CdsError::from(CdsViolation::EmptySet).to_string(),
            "invalid candidate set: empty set cannot dominate a non-empty graph"
        );
        assert_eq!(
            CdsError::from(CdsViolation::NotInGraph { node: 9 }).to_string(),
            "invalid candidate set: node 9 is not a node of the graph"
        );
        assert_eq!(
            CdsError::from(CdsViolation::NotDominating { node: 4 }),
            CdsError::NotDominating { node: 4 }
        );
        assert_eq!(
            CdsError::from(CdsViolation::NotConnected { components: 3 }),
            CdsError::NotConnected
        );
    }
}
