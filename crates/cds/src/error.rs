//! Error type shared by all CDS constructions.

use std::error::Error;
use std::fmt;

/// Why a CDS construction could not run.
///
/// All algorithms in this crate require a connected, non-empty input graph
/// (the paper's standing assumption: a CDS of a disconnected graph does
/// not exist).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdsError {
    /// The input graph has no nodes.
    EmptyGraph,
    /// The input graph is disconnected; no CDS exists.
    DisconnectedGraph,
    /// An internal invariant failed (e.g. the greedy connector found no
    /// positive-gain node while components remain — impossible for a
    /// valid MIS seed, so this indicates a bad seed set).
    Stalled(String),
}

impl fmt::Display for CdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdsError::EmptyGraph => write!(f, "input graph has no nodes"),
            CdsError::DisconnectedGraph => {
                write!(f, "input graph is disconnected; no CDS exists")
            }
            CdsError::Stalled(what) => write!(f, "connector selection stalled: {what}"),
        }
    }
}

impl Error for CdsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        assert!(CdsError::EmptyGraph.to_string().contains("no nodes"));
        assert!(CdsError::DisconnectedGraph
            .to_string()
            .contains("disconnected"));
        assert!(CdsError::Stalled("x".into()).to_string().contains("x"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<CdsError>();
    }
}
