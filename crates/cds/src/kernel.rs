//! Hot-path kernel selection — scalar adjacency loops vs. the
//! word-parallel bitset kernels of [`mcds_graph::bitgraph`].
//!
//! The connector phase and the prune post-pass each exist in two
//! implementations that produce **byte-identical output** (proven by
//! `tests/kernel_equiv.rs`):
//!
//! * **Scalar** — the original adjacency-list loops, cheapest below a few
//!   hundred nodes where setup cost dominates,
//! * **Bitset** — incremental algorithms over [`bitgraph::BitSet`] masks
//!   (cover counts + masked Tarjan for prune, a lazy bucket queue for
//!   connectors), with packed [`bitgraph::BitRows`] adjacency used
//!   underneath while the row storage stays small
//!   ([`ROWS_MAX_NODES`]; above it the same algorithms run row-free —
//!   sparse UDG rows would be mostly padding).
//!
//! Selection order: programmatic override (tests, benches) → the
//! `MCDS_KERNEL` environment variable (`scalar` | `bitset` | `auto`,
//! used by `verify.sh` to diff forced kernels across processes) → the
//! [`SCALAR_MAX_NODES`] size threshold.

use std::sync::atomic::{AtomicU8, Ordering};

use mcds_graph::bitgraph::BitRows;
use mcds_graph::RandomAccessGraph;

/// Which implementation of a rewritten hot path to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Original adjacency-list loops.
    Scalar,
    /// Incremental word-parallel bitset kernels.
    Bitset,
}

/// Below or at this node count, `auto` selection stays scalar: the
/// bitset kernels' setup (packed rows, cover counts, bucket queue) costs
/// more than the graphs they would accelerate.
pub const SCALAR_MAX_NODES: usize = 512;

/// Packed adjacency rows are materialized only up to this node count
/// (≤ 8 MiB of rows); larger graphs run the same bitset algorithms
/// row-free over the backend's successor iterators, where a sparse row
/// scan would touch `⌈n/64⌉` words to find a handful of neighbors.
pub const ROWS_MAX_NODES: usize = 8192;

const OVERRIDE_NONE: u8 = 0;
const OVERRIDE_SCALAR: u8 = 1;
const OVERRIDE_BITSET: u8 = 2;

static OVERRIDE: AtomicU8 = AtomicU8::new(OVERRIDE_NONE);

/// Forces every subsequent [`select`] in this process to the given
/// kernel (or restores automatic selection with `None`).
///
/// In-process alternative to the `MCDS_KERNEL` environment variable for
/// benches and tests: mutating the environment is not thread-safe, a
/// relaxed atomic is.
pub fn set_override(kernel: Option<Kernel>) {
    let v = match kernel {
        None => OVERRIDE_NONE,
        Some(Kernel::Scalar) => OVERRIDE_SCALAR,
        Some(Kernel::Bitset) => OVERRIDE_BITSET,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// The kernel to use for an `n`-node graph (override → env → threshold).
///
/// # Panics
///
/// Panics if `MCDS_KERNEL` is set to something other than
/// `scalar` / `bitset` / `auto`.
pub fn select(n: usize) -> Kernel {
    match OVERRIDE.load(Ordering::Relaxed) {
        OVERRIDE_SCALAR => return Kernel::Scalar,
        OVERRIDE_BITSET => return Kernel::Bitset,
        _ => {}
    }
    match std::env::var("MCDS_KERNEL") {
        Ok(s) => match s.as_str() {
            "scalar" => Kernel::Scalar,
            "bitset" => Kernel::Bitset,
            "auto" | "" => auto(n),
            other => panic!("MCDS_KERNEL must be scalar|bitset|auto, got {other:?}"),
        },
        Err(_) => auto(n),
    }
}

fn auto(n: usize) -> Kernel {
    if n <= SCALAR_MAX_NODES {
        Kernel::Scalar
    } else {
        Kernel::Bitset
    }
}

/// Packed rows for `g` if it is small enough to afford them.
pub(crate) fn maybe_rows<G: RandomAccessGraph>(g: &G) -> Option<BitRows> {
    (g.num_nodes() <= ROWS_MAX_NODES).then(|| BitRows::build(g))
}

/// Visits `N(v)` in ascending order through packed rows when available,
/// falling back to the backend's sorted successor iterator.
pub(crate) fn for_each_neighbor<G: RandomAccessGraph, F: FnMut(usize)>(
    g: &G,
    rows: Option<&BitRows>,
    v: usize,
    f: F,
) {
    match rows {
        Some(r) => r.for_each_one(v, f),
        None => g.successors(v).for_each(f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_thresholds_and_override() {
        // Note: relies on MCDS_KERNEL being unset under `cargo test`.
        assert_eq!(select(SCALAR_MAX_NODES), Kernel::Scalar);
        assert_eq!(select(SCALAR_MAX_NODES + 1), Kernel::Bitset);
        set_override(Some(Kernel::Scalar));
        assert_eq!(select(1_000_000), Kernel::Scalar);
        set_override(Some(Kernel::Bitset));
        assert_eq!(select(4), Kernel::Bitset);
        set_override(None);
        assert_eq!(select(4), Kernel::Scalar);
    }

    #[test]
    fn rows_policy_follows_threshold() {
        let small = mcds_graph::Graph::path(16);
        assert!(maybe_rows(&small).is_some());
    }
}
