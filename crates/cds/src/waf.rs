//! The Wan–Alzoubi–Frieder two-phased algorithm \[10\], as described and
//! analyzed in the paper's Section III.

use mcds_graph::RandomAccessGraph;
use mcds_mis::BfsMis;

use crate::{Algorithm, Cds, CdsError, Solver};

/// Runs the WAF algorithm rooted at the minimum-id node.
///
/// See [`waf_cds_rooted`] for the construction and guarantees.  Thin
/// wrapper over [`Solver`]; prefer
/// `Solver::new(Algorithm::WafTree).solve(g)` in new code.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] if `g` has no nodes,
/// * [`CdsError::DisconnectedGraph`] if `g` is disconnected.
pub fn waf_cds<G: RandomAccessGraph>(g: &G) -> Result<Cds, CdsError> {
    waf_cds_rooted(g, 0)
}

/// Runs the WAF algorithm with an explicit root (the elected leader).
///
/// Construction (Section III of the paper):
///
/// 1. `T` = BFS spanning tree of `G` rooted at `root`; `I` = first-fit MIS
///    in the `(level, id)` order of `T` (so `root ∈ I`).
/// 2. `s` = the neighbor of the root adjacent to the largest number of
///    nodes of `I` (ties toward smaller id).
/// 3. `C = {s} ∪ { parent_T(u) : u ∈ I \ I(s) }`, where `I(s)` is the set
///    of dominators adjacent to `s`.
///
/// `I ∪ C` is a CDS with `|I ∪ C| ≤ 7⅓·γ_c(G)` (Theorem 8).  The size
/// inequality `|C| ≤ |I| − |I(s)| + 1` used in the proof is asserted in
/// debug builds.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] if `g` has no nodes,
/// * [`CdsError::DisconnectedGraph`] if `g` is disconnected.
///
/// # Panics
///
/// Panics if `root` is out of range (the [`Solver`] path reports
/// [`CdsError::InvalidRoot`] instead).
pub fn waf_cds_rooted<G: RandomAccessGraph>(g: &G, root: usize) -> Result<Cds, CdsError> {
    match Solver::new(Algorithm::WafTree).root(root).solve(g) {
        Ok(solution) => Ok(solution.into_cds()),
        Err(CdsError::InvalidRoot { root, .. }) => panic!("root {root} out of range"),
        Err(e) => Err(e),
    }
}

/// Phase 2 of the WAF construction: the special neighbor `s` plus the
/// BFS-tree parents of the dominators `s` does not cover.  `phase1` must
/// be the BFS MIS of `g` rooted at `root`, spanning `g`.
pub(crate) fn waf_connectors<G: RandomAccessGraph>(
    g: &G,
    phase1: &BfsMis,
    root: usize,
) -> Vec<usize> {
    let mis = phase1.mis();

    // A single dominator already dominates everything and is trivially
    // connected (γ_c = 1 case).
    if mis.len() <= 1 {
        return Vec::new();
    }

    // s: the root's neighbor covering the most dominators.
    let s = g
        .successors(root)
        .max_by_key(|&w| {
            (
                g.successors(w).filter(|&u| phase1.contains(u)).count(),
                std::cmp::Reverse(w),
            )
        })
        .expect("connected graph with ≥2 dominators has a rooted neighbor");

    let covered_by_s: Vec<usize> = g.successors(s).filter(|&u| phase1.contains(u)).collect();
    let covered_mask = mcds_graph::node_mask(g.num_nodes(), &covered_by_s);

    let mut connectors = vec![s];
    for &u in mis {
        if !covered_mask[u] {
            let p = phase1
                .tree()
                .parent(u)
                .expect("non-root dominator has a BFS parent; root is covered by s");
            connectors.push(p);
        }
    }

    // Size inequality from the Theorem-8 proof: |C| ≤ |I| − |I(s)| + 1.
    debug_assert!(
        mcds_graph::node_set(connectors.iter().copied()).len()
            <= mis.len() - covered_by_s.len() + 1
    );

    connectors
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::{properties, Graph};

    #[test]
    fn errors_on_bad_inputs() {
        assert_eq!(waf_cds(&Graph::empty(0)), Err(CdsError::EmptyGraph));
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(waf_cds(&split), Err(CdsError::DisconnectedGraph));
    }

    #[test]
    fn singleton_graph() {
        let cds = waf_cds(&Graph::empty(1)).unwrap();
        assert_eq!(cds.nodes(), &[0]);
        assert!(cds.verify(&Graph::empty(1)).is_ok());
    }

    #[test]
    fn valid_on_named_families() {
        let graphs = [
            Graph::path(2),
            Graph::path(3),
            Graph::path(10),
            Graph::cycle(11),
            Graph::star(9),
            Graph::complete(7),
        ];
        for g in &graphs {
            let cds = waf_cds(g).unwrap();
            cds.verify(g).unwrap_or_else(|e| panic!("{g:?}: {e}"));
            assert!(
                properties::is_maximal_independent_set(g, cds.dominators()),
                "{g:?}"
            );
        }
    }

    #[test]
    fn every_root_gives_a_valid_cds() {
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 0),
                (2, 6),
            ],
        );
        for root in 0..9 {
            let cds = waf_cds_rooted(&g, root).unwrap();
            cds.verify(&g)
                .unwrap_or_else(|e| panic!("root {root}: {e}"));
            assert!(cds.contains(root), "root {root} must be a dominator");
        }
    }

    #[test]
    fn star_is_near_optimal() {
        // On a star, root 0 is the hub: I = {0}, no connectors.
        let g = Graph::star(10);
        let cds = waf_cds_rooted(&g, 0).unwrap();
        assert_eq!(cds.nodes(), &[0]);
        // Rooted at a leaf, the first-fit MIS is ALL the leaves (they are
        // pairwise non-adjacent), so the CDS balloons to leaves + hub.
        // K_{1,9} is not a unit-disk graph, so this does not contradict
        // Theorem 8 — it illustrates why the UDG hypothesis matters.
        let cds_leaf = waf_cds_rooted(&g, 3).unwrap();
        cds_leaf.verify(&g).unwrap();
        assert_eq!(cds_leaf.dominators().len(), 9);
        assert_eq!(cds_leaf.len(), 10);
    }

    #[test]
    fn connector_bound_holds_on_paths() {
        for n in 2..40 {
            let g = Graph::path(n);
            let cds = waf_cds(&g).unwrap();
            let i = cds.dominators().len();
            let c = cds.connectors().len();
            assert!(c <= i, "n={n}: |C|={c} > |I|={i}");
            cds.verify(&g).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_root_panics() {
        let _ = waf_cds_rooted(&Graph::path(2), 5);
    }
}
