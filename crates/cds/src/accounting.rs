//! The anatomy of Theorem 10: the proof's connector accounting, made
//! executable.
//!
//! The paper bounds the Section-IV greedy connectors by splitting the
//! selection sequence `C` into three contiguous pieces by
//! component-count thresholds:
//!
//! * `C₁` — the shortest prefix with `q(C₁) ≤ ⌊11γ_c/3⌋ − 3`
//!   (shown: `|C₁| ≤ 1`),
//! * `C₂` — continue until `q(C₁ ∪ C₂) ≤ 2γ_c + 1`
//!   (shown: `|C₂| ≤ 13γ_c/18 − 1`),
//! * `C₃` — the rest (shown: `|C₃| ≤ 2γ_c − 1`),
//!
//! summing to `6 7/18·γ_c` together with `|I| ≤ ⌊11γ_c/3⌋ + 1`.
//!
//! [`greedy_accounting`] records the exact component-count trace of a
//! greedy run, and [`GreedyAccounting::split`] reproduces the proof's
//! decomposition against a known `γ_c`, so experiments can verify each
//! *internal* inequality of the proof — not just the final bound —
//! instance by instance (experiment E16).

use mcds_graph::{node_mask, subsets, Graph};
use mcds_mis::BfsMis;

use crate::{connect, CdsError};

/// A greedy run with its full component-count trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyAccounting {
    /// Size of the phase-1 MIS (`|I|`).
    pub mis_size: usize,
    /// Connectors in selection order.
    pub connectors: Vec<usize>,
    /// `q_trace[i]` = number of components of `G[I ∪ C_{<i}]` before the
    /// `i`-th connector is added; the final entry is the terminal count
    /// (1 on success).  Length = `connectors.len() + 1`.
    pub q_trace: Vec<usize>,
}

/// The proof's three-piece split of the connector sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSplit {
    /// `|C₁|` — connectors spent reaching `q ≤ ⌊11γ_c/3⌋ − 3`.
    pub c1: usize,
    /// `|C₂|` — connectors spent reaching `q ≤ 2γ_c + 1`.
    pub c2: usize,
    /// `|C₃|` — connectors spent reaching `q = 1`.
    pub c3: usize,
}

impl GreedyAccounting {
    /// Reproduces the proof's decomposition for a given `γ_c`.
    ///
    /// For `γ_c = 1` the first threshold `⌊11γ_c/3⌋ − 3` is 0, which no
    /// component count reaches, so every connector is attributed to `C₁`
    /// — consistent with the paper, whose Theorem-10 proof handles
    /// `γ_c = 1` as a separate trivial case ([`GreedyAccounting::check`]
    /// likewise only enforces the piece bounds for `γ_c ≥ 2`).
    ///
    /// # Panics
    ///
    /// Panics if `gamma_c == 0`.
    pub fn split(&self, gamma_c: usize) -> PhaseSplit {
        assert!(gamma_c >= 1, "γ_c is at least 1 on non-empty graphs");
        let t1 = ((11 * gamma_c) / 3).saturating_sub(3); // ⌊11γc/3⌋ − 3
        let t2 = 2 * gamma_c + 1;
        // Position after which q first dips to ≤ t: number of connectors
        // consumed.  q_trace[i] is q before connector i; q_trace[k] for
        // k = len(connectors) is terminal.
        let spent_until = |t: usize| -> usize {
            self.q_trace
                .iter()
                .position(|&q| q <= t)
                .unwrap_or(self.connectors.len())
        };
        let c1_end = spent_until(t1);
        let c2_end = spent_until(t2).max(c1_end);
        let total = self.connectors.len();
        PhaseSplit {
            c1: c1_end,
            c2: c2_end - c1_end,
            c3: total - c2_end,
        }
    }

    /// The proof's per-piece bounds for a given `γ_c`, as
    /// `(c1_bound, c2_bound, c3_bound)`.
    ///
    /// `|C₁| ≤ 1`; `|C₂| ≤ 13γ_c/18 − 1` (only relevant for `γ_c > 2`;
    /// the proof shows `C₂ = ∅` otherwise, so we report 0 there);
    /// `|C₃| ≤ 2γ_c − 1`.
    pub fn proof_bounds(gamma_c: usize) -> (f64, f64, f64) {
        let c1 = 1.0;
        let c2 = if gamma_c > 2 {
            13.0 * gamma_c as f64 / 18.0 - 1.0
        } else {
            0.0
        };
        let c3 = 2.0 * gamma_c as f64 - 1.0;
        (c1, c2, c3)
    }

    /// Checks every internal inequality of the Theorem-10 proof against
    /// a known `γ_c`; returns the first violation as
    /// [`CdsError::BoundViolated`] naming the violated piece.
    ///
    /// # Errors
    ///
    /// [`CdsError::BoundViolated`] with the violated inequality.
    pub fn check(&self, gamma_c: usize) -> Result<PhaseSplit, CdsError> {
        let split = self.split(gamma_c);
        let (b1, b2, b3) = Self::proof_bounds(gamma_c);
        // |I| ≤ ⌊11γc/3⌋ + 1 (Corollary 7).
        let i_bound = (11 * gamma_c) / 3 + 1;
        if gamma_c >= 2 && self.mis_size > i_bound {
            return Err(CdsError::BoundViolated(format!(
                "|I| = {} exceeds ⌊11γ_c/3⌋ + 1 = {i_bound}",
                self.mis_size
            )));
        }
        if gamma_c >= 2 {
            if (split.c1 as f64) > b1 + 1e-9 {
                return Err(CdsError::BoundViolated(format!(
                    "|C1| = {} exceeds {b1}",
                    split.c1
                )));
            }
            if (split.c2 as f64) > b2 + 1e-9 {
                return Err(CdsError::BoundViolated(format!(
                    "|C2| = {} exceeds {b2:.3}",
                    split.c2
                )));
            }
            if (split.c3 as f64) > b3 + 1e-9 {
                return Err(CdsError::BoundViolated(format!(
                    "|C3| = {} exceeds {b3}",
                    split.c3
                )));
            }
        }
        Ok(split)
    }
}

/// Runs the Section-IV greedy construction while recording the
/// component-count trace the Theorem-10 proof reasons about.
///
/// ```
/// use mcds_graph::Graph;
/// use mcds_cds::accounting::greedy_accounting;
/// let g = Graph::path(12);
/// let acc = greedy_accounting(&g, 0)?;
/// assert_eq!(acc.q_trace[0], acc.mis_size);        // starts at |I| components
/// assert_eq!(*acc.q_trace.last().unwrap(), 1);     // ends connected
/// let split = acc.split(10);                       // γ_c(P12) = 10
/// assert_eq!(split.c1 + split.c2 + split.c3, acc.connectors.len());
/// # Ok::<(), mcds_cds::CdsError>(())
/// ```
///
/// # Errors
///
/// Same contract as [`crate::greedy_cds_rooted`].
pub fn greedy_accounting(g: &Graph, root: usize) -> Result<GreedyAccounting, CdsError> {
    if g.num_nodes() == 0 {
        return Err(CdsError::EmptyGraph);
    }
    if !g.is_connected() {
        return Err(CdsError::DisconnectedGraph);
    }
    let mis = BfsMis::compute(g, root).mis().to_vec();
    let connectors = connect::max_gain_connectors(g, &mis)?;
    // Recompute the q trace over the selection order.
    let mut mask = node_mask(g.num_nodes(), &mis);
    let mut q_trace = Vec::with_capacity(connectors.len() + 1);
    q_trace.push(subsets::count_components(g, &mask));
    for &w in &connectors {
        mask[w] = true;
        q_trace.push(subsets::count_components(g, &mask));
    }
    Ok(GreedyAccounting {
        mis_size: mis.len(),
        connectors,
        q_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_exact::connected_domination_number;

    #[test]
    fn trace_starts_at_mis_and_ends_at_one() {
        let g = Graph::path(20);
        let acc = greedy_accounting(&g, 0).unwrap();
        assert_eq!(acc.q_trace[0], acc.mis_size);
        assert_eq!(*acc.q_trace.last().unwrap(), 1);
        assert_eq!(acc.q_trace.len(), acc.connectors.len() + 1);
        // q is strictly decreasing (every connector has gain ≥ 1).
        for w in acc.q_trace.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn proof_bounds_hold_on_exactly_solved_families() {
        for g in [
            Graph::path(9),
            Graph::path(14),
            Graph::cycle(12),
            Graph::cycle(15),
        ] {
            let gamma_c = connected_domination_number(&g).expect("connected");
            let acc = greedy_accounting(&g, 0).unwrap();
            let split = acc.check(gamma_c).unwrap_or_else(|e| panic!("{g:?}: {e}"));
            assert_eq!(
                split.c1 + split.c2 + split.c3,
                acc.connectors.len(),
                "{g:?}: split must partition the sequence"
            );
        }
    }

    #[test]
    fn split_respects_thresholds() {
        // Synthetic trace: q = [10, 7, 5, 3, 1] with γ_c = 3:
        // t1 = ⌊33/3⌋ − 3 = 8 -> C1 ends at first q ≤ 8 (index 1 -> |C1| = 1);
        // t2 = 7 -> first q ≤ 7 is also index 1 -> |C2| = 0; |C3| = 3.
        let acc = GreedyAccounting {
            mis_size: 10,
            connectors: vec![101, 102, 103, 104],
            q_trace: vec![10, 7, 5, 3, 1],
        };
        let split = acc.split(3);
        assert_eq!(
            split,
            PhaseSplit {
                c1: 1,
                c2: 0,
                c3: 3
            }
        );
    }

    #[test]
    fn check_flags_violations() {
        // Fabricated impossible accounting: far too many connectors for
        // the claimed γ_c.
        let acc = GreedyAccounting {
            mis_size: 8,
            connectors: (0..30).collect(),
            q_trace: (1..=31).rev().collect(),
        };
        assert!(acc.check(2).is_err());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_gamma_panics() {
        let acc = GreedyAccounting {
            mis_size: 1,
            connectors: vec![],
            q_trace: vec![1],
        };
        let _ = acc.split(0);
    }
}
