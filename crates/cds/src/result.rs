//! The [`Cds`] result type.

use mcds_graph::{node_set, properties, Graph};
use std::fmt;

/// A connected dominating set produced by a two-phased algorithm, keeping
/// the phase structure visible: *dominators* (the phase-1 MIS or
/// dominating set) and *connectors* (the phase-2 additions).
///
/// The node set is the disjoint union of the two roles; `Cds` normalizes
/// and deduplicates on construction (a connector that is also a dominator
/// is recorded once, as a dominator).
#[derive(Clone, PartialEq, Eq)]
pub struct Cds {
    dominators: Vec<usize>,
    connectors: Vec<usize>,
    nodes: Vec<usize>,
}

impl Cds {
    /// Assembles a result from the two phases.  Duplicates within and
    /// across the role lists are removed (dominator role wins).
    pub fn new(dominators: Vec<usize>, connectors: Vec<usize>) -> Self {
        let dominators = node_set(dominators);
        let connectors: Vec<usize> = node_set(connectors)
            .into_iter()
            .filter(|c| dominators.binary_search(c).is_err())
            .collect();
        let nodes = node_set(dominators.iter().chain(connectors.iter()).copied());
        Cds {
            dominators,
            connectors,
            nodes,
        }
    }

    /// The phase-1 dominators (sorted).
    pub fn dominators(&self) -> &[usize] {
        &self.dominators
    }

    /// The phase-2 connectors (sorted, disjoint from the dominators).
    pub fn connectors(&self) -> &[usize] {
        &self.connectors
    }

    /// All CDS nodes (sorted).
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Total CDS size `|I ∪ C|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the CDS has no nodes (only valid for the empty
    /// graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if `v` belongs to the CDS.
    pub fn contains(&self, v: usize) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Verifies the result against `g` using the reference predicates.
    ///
    /// # Errors
    ///
    /// Returns the first violated property, as produced by
    /// [`mcds_graph::properties::check_cds`].
    pub fn verify(&self, g: &Graph) -> Result<(), String> {
        properties::check_cds(g, &self.nodes)
    }
}

impl fmt::Debug for Cds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cds(|I|={}, |C|={}, total={})",
            self.dominators.len(),
            self.connectors.len(),
            self.nodes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_are_normalized_and_disjoint() {
        let cds = Cds::new(vec![3, 1, 3], vec![2, 1, 5]);
        assert_eq!(cds.dominators(), &[1, 3]);
        assert_eq!(cds.connectors(), &[2, 5]); // 1 dropped: dominator wins
        assert_eq!(cds.nodes(), &[1, 2, 3, 5]);
        assert_eq!(cds.len(), 4);
        assert!(cds.contains(5));
        assert!(!cds.contains(4));
        assert!(!cds.is_empty());
    }

    #[test]
    fn verify_delegates_to_reference_checker() {
        let g = Graph::path(5);
        let good = Cds::new(vec![0, 2, 4], vec![1, 3]);
        assert!(good.verify(&g).is_ok());
        let bad = Cds::new(vec![0, 4], vec![]);
        assert!(bad.verify(&g).is_err());
    }

    #[test]
    fn debug_shows_phase_sizes() {
        let cds = Cds::new(vec![0], vec![1]);
        let s = format!("{cds:?}");
        assert!(s.contains("|I|=1"));
        assert!(s.contains("|C|=1"));
    }
}
