//! The [`Cds`] result type and the typed CDS checker.

use crate::CdsError;
use mcds_graph::{node_set, properties, RandomAccessGraph};
use std::fmt;

/// Checks that `set` is a connected dominating set of `g`, reporting the
/// first violated property as a typed [`CdsError`].
///
/// This is a thin adapter over the substrate's
/// [`mcds_graph::properties::check_cds`]: the one reference checker runs,
/// and its typed [`mcds_graph::CdsViolation`] is lifted into [`CdsError`]
/// with the historical diagnostic strings intact.
///
/// # Errors
///
/// * [`CdsError::InvalidSet`] if `set` is empty while `g` has nodes, or
///   contains an out-of-range node,
/// * [`CdsError::NotDominating`] naming the first undominated node,
/// * [`CdsError::NotConnected`] if `G[set]` is disconnected.
pub fn check_cds<G: RandomAccessGraph>(g: &G, set: &[usize]) -> Result<(), CdsError> {
    properties::check_cds(g, set).map_err(Into::into)
}

/// A connected dominating set produced by a two-phased algorithm, keeping
/// the phase structure visible: *dominators* (the phase-1 MIS or
/// dominating set) and *connectors* (the phase-2 additions).
///
/// The node set is the disjoint union of the two roles; `Cds` normalizes
/// and deduplicates on construction (a connector that is also a dominator
/// is recorded once, as a dominator).
#[derive(Clone, PartialEq, Eq)]
pub struct Cds {
    dominators: Vec<usize>,
    connectors: Vec<usize>,
    nodes: Vec<usize>,
}

impl Cds {
    /// Assembles a result from the two phases.  Duplicates within and
    /// across the role lists are removed (dominator role wins).
    pub fn new(dominators: Vec<usize>, connectors: Vec<usize>) -> Self {
        let dominators = node_set(dominators);
        let connectors: Vec<usize> = node_set(connectors)
            .into_iter()
            .filter(|c| dominators.binary_search(c).is_err())
            .collect();
        let nodes = node_set(dominators.iter().chain(connectors.iter()).copied());
        Cds {
            dominators,
            connectors,
            nodes,
        }
    }

    /// The phase-1 dominators (sorted).
    pub fn dominators(&self) -> &[usize] {
        &self.dominators
    }

    /// The phase-2 connectors (sorted, disjoint from the dominators).
    pub fn connectors(&self) -> &[usize] {
        &self.connectors
    }

    /// All CDS nodes (sorted).
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Total CDS size `|I ∪ C|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the CDS has no nodes (only valid for the empty
    /// graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if `v` belongs to the CDS.
    pub fn contains(&self, v: usize) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Verifies the result against `g` using the reference predicates.
    ///
    /// # Errors
    ///
    /// Returns the first violated property as a typed [`CdsError`] (see
    /// [`check_cds`]).
    pub fn verify<G: RandomAccessGraph>(&self, g: &G) -> Result<(), CdsError> {
        check_cds(g, &self.nodes)
    }
}

impl fmt::Debug for Cds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cds(|I|={}, |C|={}, total={})",
            self.dominators.len(),
            self.connectors.len(),
            self.nodes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::Graph;

    #[test]
    fn roles_are_normalized_and_disjoint() {
        let cds = Cds::new(vec![3, 1, 3], vec![2, 1, 5]);
        assert_eq!(cds.dominators(), &[1, 3]);
        assert_eq!(cds.connectors(), &[2, 5]); // 1 dropped: dominator wins
        assert_eq!(cds.nodes(), &[1, 2, 3, 5]);
        assert_eq!(cds.len(), 4);
        assert!(cds.contains(5));
        assert!(!cds.contains(4));
        assert!(!cds.is_empty());
    }

    #[test]
    fn verify_delegates_to_reference_checker() {
        let g = Graph::path(5);
        let good = Cds::new(vec![0, 2, 4], vec![1, 3]);
        assert!(good.verify(&g).is_ok());
        let bad = Cds::new(vec![0, 4], vec![]);
        assert!(bad.verify(&g).is_err());
    }

    #[test]
    fn check_reports_first_violation_typed() {
        let g = Graph::path(5);
        assert_eq!(check_cds(&g, &[1, 2, 3]), Ok(()));
        // Node 2 is the first one with no dominator in {0, 4}.
        assert_eq!(
            check_cds(&g, &[0, 4]),
            Err(CdsError::NotDominating { node: 2 })
        );
        // {0, 1, 3, 4} dominates but G[{0,1,3,4}] splits at the missing 2.
        assert_eq!(check_cds(&g, &[0, 1, 3, 4]), Err(CdsError::NotConnected));
        assert!(matches!(check_cds(&g, &[]), Err(CdsError::InvalidSet(_))));
        assert_eq!(check_cds(&Graph::empty(0), &[]), Ok(()));
    }

    #[test]
    fn typed_checker_agrees_with_reference_checker() {
        let g = Graph::cycle(9);
        for set in [
            vec![],
            vec![0],
            vec![0, 1, 2, 3, 4, 5, 6, 7],
            vec![0, 3, 6],
            (0..9).collect::<Vec<_>>(),
        ] {
            assert_eq!(
                check_cds(&g, &set).is_ok(),
                mcds_graph::properties::check_cds(&g, &set).is_ok(),
                "{set:?}"
            );
        }
    }

    #[test]
    fn debug_shows_phase_sizes() {
        let cds = Cds::new(vec![0], vec![1]);
        let s = format!("{cds:?}");
        assert!(s.contains("|I|=1"));
        assert!(s.contains("|C|=1"));
    }
}
