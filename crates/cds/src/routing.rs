//! Routing over a virtual backbone.
//!
//! The original motivation for CDS backbones (Das & Bharghavan \[2\]) is
//! *routing*: restrict route search to the backbone so that routing state
//! lives on few nodes.  The cost is *stretch* — backbone-constrained
//! routes can be longer than true shortest paths.  This module measures
//! it.

use crate::CdsError;
use mcds_graph::{node_mask, traversal, Graph};

/// Length (hop count) of the shortest `s → t` path whose *intermediate*
/// nodes all lie in `backbone`; endpoints are exempt.  Returns `None` if
/// no such path exists (it always exists when `backbone` is a CDS of a
/// connected graph).
///
/// ```
/// use mcds_graph::Graph;
/// use mcds_cds::routing::backbone_route_length;
/// let g = Graph::path(5);
/// // Interior nodes relay: 0 -> 1 -> 2 -> 3 -> 4.
/// assert_eq!(backbone_route_length(&g, &[1, 2, 3], 0, 4), Some(4));
/// // Gap in the backbone: unroutable.
/// assert_eq!(backbone_route_length(&g, &[1, 3], 0, 4), None);
/// ```
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn backbone_route_length(g: &Graph, backbone: &[usize], s: usize, t: usize) -> Option<usize> {
    let n = g.num_nodes();
    assert!(s < n && t < n, "endpoint out of range");
    if s == t {
        return Some(0);
    }
    if g.has_edge(s, t) {
        return Some(1);
    }
    let allowed = {
        let mut mask = node_mask(n, backbone);
        mask[s] = true;
        mask[t] = true;
        mask
    };
    // BFS from s over allowed nodes only.
    let mut dist = vec![usize::MAX; n];
    dist[s] = 0;
    let mut queue = std::collections::VecDeque::from([s]);
    while let Some(v) = queue.pop_front() {
        for u in g.neighbors_iter(v) {
            if allowed[u] && dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                if u == t {
                    return Some(dist[u]);
                }
                queue.push_back(u);
            }
        }
    }
    None
}

/// Stretch statistics of backbone routing over all pairs reachable in
/// `g` (exact; `O(n·m)` for the true distances plus a backbone BFS per
/// source).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchStats {
    /// Number of ordered pairs measured (`s ≠ t`).
    pub pairs: usize,
    /// Mean multiplicative stretch (backbone length / true length).
    pub mean: f64,
    /// Worst multiplicative stretch.
    pub max: f64,
    /// Mean additive stretch (backbone length − true length), in hops.
    pub mean_additive: f64,
}

/// Measures routing stretch of `backbone` over every connected pair.
///
/// ```
/// use mcds_graph::Graph;
/// use mcds_cds::{greedy_cds, routing::stretch_stats};
/// let g = Graph::cycle(10);
/// let cds = greedy_cds(&g)?;
/// let s = stretch_stats(&g, cds.nodes()).expect("a CDS routes all pairs");
/// assert_eq!(s.pairs, 90);
/// assert!(s.mean >= 1.0);
/// # Ok::<(), mcds_cds::CdsError>(())
/// ```
///
/// # Errors
///
/// Returns [`CdsError::Unroutable`] naming the first pair that is
/// connected in `g` but unroutable via the backbone — which means
/// `backbone` is not a CDS.
pub fn stretch_stats(g: &Graph, backbone: &[usize]) -> Result<StretchStats, CdsError> {
    let n = g.num_nodes();
    let mut pairs = 0usize;
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut sum_add = 0.0;
    for s in 0..n {
        let true_dist = traversal::bfs_distances(g, s);
        // One constrained BFS per source covers all targets.
        let routed = constrained_distances(g, backbone, s);
        for t in 0..n {
            if t == s || true_dist[t] == usize::MAX {
                continue;
            }
            let r = routed[t];
            if r == usize::MAX {
                return Err(CdsError::Unroutable { from: s, to: t });
            }
            pairs += 1;
            let ratio = r as f64 / true_dist[t] as f64;
            sum += ratio;
            max = max.max(ratio);
            sum_add += (r - true_dist[t]) as f64;
        }
    }
    Ok(StretchStats {
        pairs,
        mean: if pairs == 0 { 1.0 } else { sum / pairs as f64 },
        max: if pairs == 0 { 1.0 } else { max },
        mean_additive: if pairs == 0 {
            0.0
        } else {
            sum_add / pairs as f64
        },
    })
}

/// Distances from `s` to every node where intermediates are confined to
/// the backbone; direct edges from `s` count, and the final hop may leave
/// the backbone.
fn constrained_distances(g: &Graph, backbone: &[usize], s: usize) -> Vec<usize> {
    let n = g.num_nodes();
    let backbone_mask = {
        let mut m = node_mask(n, backbone);
        m[s] = true;
        m
    };
    let mut dist = vec![usize::MAX; n];
    dist[s] = 0;
    let mut queue = std::collections::VecDeque::from([s]);
    while let Some(v) = queue.pop_front() {
        for u in g.neighbors_iter(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                // Only backbone nodes (or the source) may relay further.
                if backbone_mask[u] {
                    queue.push_back(u);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_cds;

    #[test]
    fn route_length_on_path() {
        let g = Graph::path(6);
        let backbone: Vec<usize> = vec![1, 2, 3, 4];
        assert_eq!(backbone_route_length(&g, &backbone, 0, 5), Some(5));
        assert_eq!(backbone_route_length(&g, &backbone, 0, 0), Some(0));
        assert_eq!(backbone_route_length(&g, &backbone, 0, 1), Some(1));
        // Remove an interior backbone node: route broken.
        assert_eq!(backbone_route_length(&g, &[1, 2, 4], 0, 5), None);
    }

    #[test]
    fn cds_backbone_routes_every_pair() {
        let g = Graph::cycle(12);
        let cds = greedy_cds(&g).unwrap();
        let stats = stretch_stats(&g, cds.nodes()).unwrap();
        assert_eq!(stats.pairs, 12 * 11);
        assert!(stats.mean >= 1.0);
        assert!(stats.max >= stats.mean);
        assert!(stats.mean_additive >= 0.0);
    }

    #[test]
    fn full_backbone_has_stretch_one() {
        let g = Graph::cycle(9);
        let all: Vec<usize> = (0..9).collect();
        let stats = stretch_stats(&g, &all).unwrap();
        assert_eq!(stats.mean, 1.0);
        assert_eq!(stats.max, 1.0);
        assert_eq!(stats.mean_additive, 0.0);
    }

    #[test]
    fn non_cds_backbone_is_detected() {
        let g = Graph::path(7);
        // {1, 5} dominates... not everything; routing from 0 to 6 via {1,5}
        // can't bridge 2..4.
        let err = stretch_stats(&g, &[1, 5]).unwrap_err();
        assert!(matches!(err, CdsError::Unroutable { .. }));
        assert!(err.to_string().contains("unroutable"));
    }

    #[test]
    fn stretch_bounded_on_random_udg_backbones() {
        // CDS-restricted routing detours are known to be small on UDGs;
        // just assert the worst stretch stays modest on a cycle-rich graph.
        let g = Graph::from_edges(
            10,
            (0..10).map(|v| (v, (v + 1) % 10)).chain([(0, 5), (2, 7)]),
        );
        let cds = greedy_cds(&g).unwrap();
        let stats = stretch_stats(&g, cds.nodes()).unwrap();
        assert!(stats.max <= 4.0, "stretch {} too large", stats.max);
    }
}
