//! A uniform registry over all CDS constructions, for the experiment
//! harness and examples.

use mcds_graph::RandomAccessGraph;

use crate::{Cds, CdsError, Solution, Solver};

/// The CDS algorithms this crate implements, as data.
///
/// `Algorithm::ALL` enumerates them in the order experiments report them.
///
/// ```
/// use mcds_graph::Graph;
/// use mcds_cds::algorithms::Algorithm;
///
/// let g = Graph::cycle(12);
/// for alg in Algorithm::ALL {
///     let cds = alg.run(&g)?;
///     assert!(cds.verify(&g).is_ok(), "{}", alg.name());
/// }
/// # Ok::<(), mcds_cds::CdsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Wan–Alzoubi–Frieder \[10\], ratio ≤ 7⅓ (paper Section III).
    WafTree,
    /// The paper's new greedy-connector algorithm, ratio ≤ 6 7/18
    /// (Section IV).
    GreedyConnect,
    /// Chvátal greedy set-cover dominators + shortest-path connectors
    /// \[2\]; logarithmic ratio.
    ChvatalSetCover,
    /// Arbitrary (lexicographic) MIS + max-gain connectors \[1\]/\[9\].
    ArbitraryMis,
    /// Single-phase Guha–Khuller-style greedy growth; `O(log Δ)` ratio
    /// on general graphs.
    GreedyGrowth,
}

impl Algorithm {
    /// All algorithms, in canonical reporting order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::GreedyConnect,
        Algorithm::WafTree,
        Algorithm::ArbitraryMis,
        Algorithm::ChvatalSetCover,
        Algorithm::GreedyGrowth,
    ];

    /// Short stable identifier (used in CSV headers).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::WafTree => "waf",
            Algorithm::GreedyConnect => "greedy",
            Algorithm::ChvatalSetCover => "chvatal",
            Algorithm::ArbitraryMis => "arb-mis",
            Algorithm::GreedyGrowth => "gk-grow",
        }
    }

    /// Human-readable description with the provenance reference.
    pub fn description(self) -> &'static str {
        match self {
            Algorithm::WafTree => "WAF tree connectors [10], ratio ≤ 7 1/3 (Thm 8)",
            Algorithm::GreedyConnect => {
                "greedy max-gain connectors (Sec. IV), ratio ≤ 6 7/18 (Thm 10)"
            }
            Algorithm::ChvatalSetCover => "Chvátal set-cover + path connectors [2], ratio O(log Δ)",
            Algorithm::ArbitraryMis => "arbitrary MIS + max-gain connectors [1]/[9]",
            Algorithm::GreedyGrowth => {
                "single-phase greedy growth (Guha-Khuller style), ratio O(log Δ)"
            }
        }
    }

    /// The proven approximation-ratio bound on unit-disk graphs, if a
    /// constant one is known.
    pub fn ratio_bound(self) -> Option<f64> {
        match self {
            Algorithm::WafTree => Some(mcds_mis::bounds::WAF_RATIO),
            Algorithm::GreedyConnect => Some(mcds_mis::bounds::GREEDY_RATIO),
            Algorithm::ChvatalSetCover => None,
            // The arbitrary-MIS family has a constant ratio too (via
            // α ≤ 11/3 γ_c + 1 and one connector per extra component) but
            // the paper proves none for this exact variant; report none.
            Algorithm::ArbitraryMis => None,
            Algorithm::GreedyGrowth => None,
        }
    }

    /// Runs the algorithm on `g` with default [`Solver`] configuration.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's [`CdsError`].
    pub fn run<G: RandomAccessGraph>(self, g: &G) -> Result<Cds, CdsError> {
        Solver::new(self).solve(g).map(Solution::into_cds)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The error of parsing an [`Algorithm`] (or selector) from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAlgorithm(pub String);

impl std::fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown algorithm '{}' (expected one of: ", self.0)?;
        for (i, alg) in Algorithm::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(alg.name())?;
        }
        f.write_str(", or 'all')")
    }
}

impl std::error::Error for UnknownAlgorithm {}

impl std::str::FromStr for Algorithm {
    type Err = UnknownAlgorithm;

    /// Parses the stable [`Algorithm::name`] identifiers, so parsing and
    /// [`std::fmt::Display`] round-trip.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| UnknownAlgorithm(s.to_string()))
    }
}

/// Parses a command-line algorithm selector: an [`Algorithm::name`] for a
/// single algorithm, or `"all"` for [`Algorithm::ALL`] in reporting
/// order.  This is the one place front ends (CLI, experiment binaries)
/// resolve algorithm names.
///
/// # Errors
///
/// [`UnknownAlgorithm`] echoing the rejected input and the valid names.
pub fn parse_selector(s: &str) -> Result<Vec<Algorithm>, UnknownAlgorithm> {
    if s == "all" {
        Ok(Algorithm::ALL.to_vec())
    } else {
        s.parse().map(|alg| vec![alg])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::Graph;

    #[test]
    fn registry_runs_everything() {
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 0),
                (2, 7),
            ],
        );
        for alg in Algorithm::ALL {
            let cds = alg.run(&g).unwrap();
            cds.verify(&g).unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert!(!alg.name().is_empty());
            assert!(!alg.description().is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn ratio_bounds_match_paper() {
        assert_eq!(
            Algorithm::WafTree.ratio_bound(),
            Some(mcds_mis::bounds::WAF_RATIO)
        );
        assert_eq!(
            Algorithm::GreedyConnect.ratio_bound(),
            Some(mcds_mis::bounds::GREEDY_RATIO)
        );
        assert_eq!(Algorithm::ChvatalSetCover.ratio_bound(), None);
    }

    #[test]
    fn display_matches_name() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.to_string(), alg.name());
        }
    }

    #[test]
    fn parse_round_trips_every_name() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.name().parse::<Algorithm>(), Ok(alg));
            assert_eq!(alg.to_string().parse::<Algorithm>(), Ok(alg));
        }
        let err = "no-such".parse::<Algorithm>().unwrap_err();
        assert_eq!(err.0, "no-such");
        let msg = err.to_string();
        assert!(msg.contains("no-such"));
        assert!(msg.contains("waf"));
        assert!(msg.contains("'all'"));
    }

    #[test]
    fn selector_resolves_all_and_singles() {
        assert_eq!(parse_selector("all").unwrap(), Algorithm::ALL.to_vec());
        assert_eq!(
            parse_selector("greedy").unwrap(),
            vec![Algorithm::GreedyConnect]
        );
        assert!(parse_selector("bogus").is_err());
        assert!(parse_selector("").is_err());
    }
}
