//! Fault-tolerant backbone family: (1,m)- and (2,m)-CDS constructions
//! (ROADMAP item 4, after Zhang–Zhou–Ko–Du and Zhou et al. 2023).
//!
//! The paper's two-phased CDS is a single-point-of-failure backbone: one
//! dominator dies and coverage or connectivity breaks.  This module
//! generalizes both phases and adds a connectivity-hardening post-pass:
//!
//! 1. **m-fold domination** ([`m_fold_dominators`],
//!    [`weighted_m_fold_dominators`]) — a node-weighted greedy that keeps
//!    electing dominators until every non-backbone node is covered by at
//!    least `m` of them, so any `m − 1` dominator deaths leave every
//!    client covered.
//! 2. **Weighted connectors** ([`weighted_max_gain_connectors`]) — the
//!    paper's max-gain rule with component merges priced per unit of node
//!    weight (cross-multiplied integer arithmetic; no floats, so
//!    selection stays deterministic), falling back to shortest-path
//!    connectors when only stepping stones remain.
//! 3. **2-connectivity augmentation** ([`biconnect_augment`]) — repeated
//!    cut-vertex elimination: while the backbone has an articulation
//!    point `c`, reconnect a fragment of `backbone − c` to the rest via a
//!    shortest path in `G` avoiding `c` and absorb the path's interior.
//!    Because a dominating backbone keeps every node of `G` within one
//!    hop, each augmenting path lives in the backbone's 2-hop
//!    neighborhood.
//!
//! The result is a `(k,m)` backbone: `k = 2` survives any single node
//! failure with connectivity intact, `m ≥ 2` keeps every client covered
//! through `m − 1` dominator failures.  Degenerate-size conventions match
//! `mcds_exact::is_biconnected`: singletons and adjacent pairs count as
//! biconnected.
//!
//! All entry points are also reachable through the [`crate::Solver`]
//! builder (`.m(2)`, `.biconnect(true)`), which owns timing, verification
//! ([`check_m_cds`]) and the m-aware pruning post-pass ([`prune_m_cds`]).

use std::collections::VecDeque;

use mcds_graph::{node_mask, subsets, traversal, RandomAccessGraph};

use crate::{connect, Cds, CdsError};

/// Elects an m-fold dominating set greedily with unit node weights:
/// every node outside the returned set has ≥ `m` neighbors inside it.
///
/// `m = 0` returns the empty set; `m = 1` is the classic greedy
/// dominating set.  Always feasible: a node nobody else can cover `m`
/// times is eventually elected itself.
pub fn m_fold_dominators<G: RandomAccessGraph>(g: &G, m: usize) -> Vec<usize> {
    weighted_m_fold_dominators(g, &vec![1u64; g.num_nodes()], m)
        .expect("unit weights are always valid")
}

/// Node-weighted greedy m-fold domination: repeatedly elects the node
/// with the best coverage-deficit reduction per unit weight (ties to the
/// smaller id), until every non-member has ≥ `m` member neighbors.
///
/// Weights are abstract costs (e.g. inverse residual energy); the
/// comparison `gain_a / w_a > gain_b / w_b` is evaluated as
/// `gain_a · w_b > gain_b · w_a` in 128-bit integers, so the election is
/// exact and deterministic.  Zero weights are allowed and sort first.
///
/// # Errors
///
/// [`CdsError::InvalidSet`] if `weights.len() != g.num_nodes()`.
pub fn weighted_m_fold_dominators<G: RandomAccessGraph>(
    g: &G,
    weights: &[u64],
    m: usize,
) -> Result<Vec<usize>, CdsError> {
    let n = g.num_nodes();
    if weights.len() != n {
        return Err(CdsError::InvalidSet(format!(
            "weight vector has {} entries for {} nodes",
            weights.len(),
            n
        )));
    }
    if m == 0 || n == 0 {
        return Ok(Vec::new());
    }
    let mut chosen = vec![false; n];
    // cover[v] = number of elected neighbors of v.
    let mut cover = vec![0usize; n];
    // Remaining deficit of v: 0 once chosen, else max(0, m − cover[v]).
    let deficit = |chosen: &[bool], cover: &[usize], v: usize| {
        if chosen[v] {
            0
        } else {
            m.saturating_sub(cover[v])
        }
    };
    let mut total: usize = n * m;
    let mut out = Vec::new();
    let mut scanned = 0u64;
    while total > 0 {
        let mut best: Option<(usize, usize)> = None; // (gain, node)
        for u in 0..n {
            if chosen[u] {
                continue;
            }
            scanned += 1;
            // Electing u erases u's own deficit and covers each
            // unsatisfied non-member neighbor once more.
            let mut gain = deficit(&chosen, &cover, u);
            for w in g.successors(u) {
                if deficit(&chosen, &cover, w) > 0 {
                    gain += 1;
                }
            }
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bg, bu)) => {
                    let lhs = gain as u128 * u128::from(weights[bu]);
                    let rhs = bg as u128 * u128::from(weights[u]);
                    lhs > rhs || (lhs == rhs && u < bu)
                }
            };
            if better {
                best = Some((gain, u));
            }
        }
        let (gain, u) = best.expect("positive total deficit implies a positive-gain candidate");
        total -= gain;
        chosen[u] = true;
        out.push(u);
        for w in g.successors(u) {
            cover[w] += 1;
        }
    }
    mcds_obs::counter!("mfold.candidates_scanned", scanned);
    mcds_obs::counter!("mfold.selected", out.len() as u64);
    out.sort_unstable();
    Ok(out)
}

/// Phase 2 for the fault-tolerant family: connects the components of
/// `G[seed]` by repeatedly adding the non-seed node with the best
/// component-merge gain per unit weight, then falls back to
/// shortest-path connectors once only zero-gain stepping stones remain
/// (an m-fold seed is dominating, so components sit ≤ 3 hops apart but
/// not always ≤ 2 as an MIS would — Lemma 9 does not apply).
///
/// Returns the connectors only (sorted, disjoint from `seed`).
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] on the empty graph,
/// * [`CdsError::InvalidSet`] if the weight vector is malformed or the
///   seed is empty,
/// * [`CdsError::DisconnectedGraph`] if `g` cannot connect the seed.
pub fn weighted_max_gain_connectors<G: RandomAccessGraph>(
    g: &G,
    seed: &[usize],
    weights: &[u64],
) -> Result<Vec<usize>, CdsError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CdsError::EmptyGraph);
    }
    if weights.len() != n {
        return Err(CdsError::InvalidSet(format!(
            "weight vector has {} entries for {} nodes",
            weights.len(),
            n
        )));
    }
    if seed.is_empty() {
        return Err(CdsError::InvalidSet("empty seed set".into()));
    }
    let mut mask = node_mask(n, seed);
    let mut connectors: Vec<usize> = Vec::new();
    loop {
        let q = subsets::count_components(g, &mask);
        if q <= 1 {
            break;
        }
        let mut dsu = subsets::components_dsu(g, &mask);
        // Best (merge-gain, node) per unit weight; gain = adjacent
        // components − 1 merges performed by the addition.
        let mut best: Option<(usize, usize)> = None;
        for w in 0..n {
            if mask[w] {
                continue;
            }
            let adj = subsets::adjacent_components(g, &mask, &mut dsu, w).len();
            if adj < 2 {
                continue;
            }
            let gain = adj - 1;
            let better = match best {
                None => true,
                Some((bg, bw)) => {
                    let lhs = gain as u128 * u128::from(weights[bw]);
                    let rhs = bg as u128 * u128::from(weights[w]);
                    lhs > rhs || (lhs == rhs && w < bw)
                }
            };
            if better {
                best = Some((gain, w));
            }
        }
        match best {
            Some((_, w)) => {
                mask[w] = true;
                connectors.push(w);
                mcds_obs::counter!("connectors.selected");
            }
            None => {
                // Only stepping stones remain: let the shortest-path
                // walker finish (it reports DisconnectedGraph if `g`
                // itself cannot connect the seed).
                let current: Vec<usize> = (0..n).filter(|&v| mask[v]).collect();
                let rest = connect::path_connectors(g, &current)?;
                connectors.extend(rest);
                break;
            }
        }
    }
    connectors.sort_unstable();
    Ok(connectors)
}

/// Hardens a connected dominating `set` to 2-vertex-connectivity by
/// cut-vertex elimination, returning the augmented set (sorted,
/// superset of the input).
///
/// While the induced backbone has an articulation point `c`: pick a
/// fragment of `backbone − c`, find a shortest path in `G − c` from the
/// fragment to the rest of the backbone, and absorb the path's interior
/// nodes.  Each round strictly shrinks the number of fragments at `c`,
/// and each absorbed path adds ≥ 1 new node, so the pass terminates in
/// ≤ n augmentations.  Only *adds* nodes: every domination property of
/// the input is preserved.
///
/// Sets of size ≤ 2 are biconnected by convention (matching
/// `mcds_exact::is_biconnected`) and returned unchanged.
///
/// # Errors
///
/// * [`CdsError::InvalidSet`] if `set` is empty on a non-empty graph,
/// * [`CdsError::NotConnected`] if `G[set]` is disconnected,
/// * [`CdsError::NotBiconnected`] if some cut vertex cannot be bypassed
///   because `g` itself is not 2-connected.
pub fn biconnect_augment<G: RandomAccessGraph>(
    g: &G,
    set: &[usize],
) -> Result<Vec<usize>, CdsError> {
    let n = g.num_nodes();
    if n == 0 {
        return Ok(Vec::new());
    }
    if set.is_empty() {
        return Err(CdsError::InvalidSet("empty backbone".into()));
    }
    let mut backbone = mcds_graph::node_set(set.iter().copied());
    if !subsets::is_connected_subset(g, &node_mask(n, &backbone)) {
        return Err(CdsError::NotConnected);
    }
    let mut added = 0u64;
    let mut paths = 0u64;
    loop {
        if backbone.len() <= 2 {
            break; // Biconnected by convention.
        }
        let (sub, ids) = subsets::induced_subgraph(g, &backbone);
        let cuts = traversal::articulation_points(&sub);
        let Some(&cut_local) = cuts.first() else {
            break;
        };
        let c = ids[cut_local];
        // Fragments of the backbone with `c` removed; reconnect the one
        // containing the smallest node to the rest, bypassing `c`.
        let mut frag_mask = node_mask(n, &backbone);
        frag_mask[c] = false;
        let fragment = component_of(g, &frag_mask, *backbone.iter().find(|&&v| v != c).unwrap());
        let path =
            bfs_avoiding(g, c, &fragment, &frag_mask).ok_or(CdsError::NotBiconnected { cut: c })?;
        paths += 1;
        for v in path {
            if backbone.binary_search(&v).is_err() {
                let at = backbone.binary_search(&v).unwrap_err();
                backbone.insert(at, v);
                added += 1;
            }
        }
    }
    mcds_obs::counter!("augment.paths", paths);
    mcds_obs::counter!("augment.added", added);
    Ok(backbone)
}

/// The masked component containing `start` (nodes of `mask` reachable
/// from `start` through `mask`).
fn component_of<G: RandomAccessGraph>(g: &G, mask: &[bool], start: usize) -> Vec<usize> {
    debug_assert!(mask[start]);
    let mut seen = vec![false; g.num_nodes()];
    let mut queue = VecDeque::from([start]);
    seen[start] = true;
    let mut out = vec![start];
    while let Some(v) = queue.pop_front() {
        for u in g.successors(v) {
            if mask[u] && !seen[u] {
                seen[u] = true;
                out.push(u);
                queue.push_back(u);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Shortest path (as its interior + endpoint node list) from any node of
/// `sources` to any *other* masked node, through `g` minus `avoid`.
/// Returns `None` when no such path exists.  Deterministic: BFS visits
/// neighbors in adjacency order from sources in sorted order.
fn bfs_avoiding<G: RandomAccessGraph>(
    g: &G,
    avoid: usize,
    sources: &[usize],
    target_mask: &[bool],
) -> Option<Vec<usize>> {
    let n = g.num_nodes();
    let source_mask = node_mask(n, sources);
    let mut parent = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for &s in sources {
        seen[s] = true;
        queue.push_back(s);
    }
    seen[avoid] = true; // Never traverse the cut vertex.
    while let Some(v) = queue.pop_front() {
        for u in g.successors(v) {
            if seen[u] {
                continue;
            }
            seen[u] = true;
            parent[u] = v;
            if target_mask[u] && !source_mask[u] {
                // Walk back, collecting the path's interior (the
                // endpoint in the far fragment is already a backbone
                // node; recording it is harmless — it deduplicates).
                let mut path = vec![u];
                let mut at = v;
                while !source_mask[at] {
                    path.push(at);
                    at = parent[at];
                }
                return Some(path);
            }
            queue.push_back(u);
        }
    }
    None
}

/// Checks the `(1,m)` backbone contract: `set` is connected in `g` and
/// every node outside it has ≥ `m` neighbors inside.
///
/// # Errors
///
/// * [`CdsError::InvalidSet`] for an empty set on a non-empty graph,
/// * [`CdsError::NotMDominating`] naming the first under-covered node,
/// * [`CdsError::NotConnected`] if `G[set]` is disconnected.
pub fn check_m_cds<G: RandomAccessGraph>(g: &G, set: &[usize], m: usize) -> Result<(), CdsError> {
    let n = g.num_nodes();
    if n == 0 {
        return Ok(());
    }
    if set.is_empty() {
        return Err(CdsError::InvalidSet(
            "empty set on a non-empty graph".into(),
        ));
    }
    let mask = node_mask(n, set);
    for v in 0..n {
        if mask[v] {
            continue;
        }
        let have = g.successors(v).filter(|&u| mask[u]).count();
        if have < m {
            return Err(CdsError::NotMDominating {
                node: v,
                have,
                need: m,
            });
        }
    }
    if !subsets::is_connected_subset(g, &mask) {
        return Err(CdsError::NotConnected);
    }
    Ok(())
}

/// Whether `G[set]` is biconnected, with the same degenerate-size
/// conventions as `mcds_exact::is_biconnected` (kept local so `mcds-cds`
/// does not depend on the exact solvers).
pub(crate) fn is_biconnected_set<G: RandomAccessGraph>(g: &G, set: &[usize]) -> bool {
    match set.len() {
        0 => g.num_nodes() == 0,
        1 => true,
        _ => {
            let (sub, _ids) = subsets::induced_subgraph(g, set);
            sub.is_connected() && traversal::articulation_points(&sub).is_empty()
        }
    }
}

/// Typed variant of [`is_biconnected_set`] for verification paths:
/// names a concrete cut vertex (or reports disconnection).
///
/// # Errors
///
/// * [`CdsError::InvalidSet`] for an empty set on a non-empty graph,
/// * [`CdsError::NotConnected`] if `G[set]` is disconnected,
/// * [`CdsError::NotBiconnected`] naming the smallest cut vertex.
pub fn check_biconnected<G: RandomAccessGraph>(g: &G, set: &[usize]) -> Result<(), CdsError> {
    if g.num_nodes() == 0 {
        return Ok(());
    }
    if set.is_empty() {
        return Err(CdsError::InvalidSet(
            "empty set on a non-empty graph".into(),
        ));
    }
    if set.len() <= 2 {
        return if subsets::is_connected_subset(g, &node_mask(g.num_nodes(), set)) {
            Ok(())
        } else {
            Err(CdsError::NotConnected)
        };
    }
    let (sub, ids) = subsets::induced_subgraph(g, set);
    if !sub.is_connected() {
        return Err(CdsError::NotConnected);
    }
    match traversal::articulation_points(&sub).first() {
        Some(&c) => Err(CdsError::NotBiconnected { cut: ids[c] }),
        None => Ok(()),
    }
}

/// Greedily removes redundant nodes from a `(k,m)` backbone: a node is
/// dropped only if the remainder stays m-fold dominating, connected, and
/// (when `biconnect` is set) biconnected.  The output is 1-minimal for
/// exactly that property set, so the pass is idempotent.
///
/// # Errors
///
/// Propagates the [`check_m_cds`] violation (or
/// [`CdsError::NotBiconnected`]) if `set` does not satisfy the contract
/// to begin with.
pub fn prune_m_cds<G: RandomAccessGraph>(
    g: &G,
    set: &[usize],
    m: usize,
    biconnect: bool,
) -> Result<Vec<usize>, CdsError> {
    check_m_cds(g, set, m)?;
    if biconnect {
        check_biconnected(g, set)?;
    }
    let mut current: Vec<usize> = mcds_graph::node_set(set.iter().copied());
    // Sweep to a fixpoint: a drop rejected early in a sweep (say, for
    // biconnectivity) can become legal after later drops, so a single
    // pass is not 1-minimal.  Each sweep either removes a node or ends
    // the loop, so this terminates within |set| sweeps.
    loop {
        let mut changed = false;
        let mut order = current.clone();
        order.sort_by_key(|&v| (g.degree(v), v));
        for v in order {
            if current.len() <= 1 {
                break;
            }
            let candidate: Vec<usize> = current.iter().copied().filter(|&u| u != v).collect();
            let ok = check_m_cds(g, &candidate, m).is_ok()
                && (!biconnect || is_biconnected_set(g, &candidate));
            if ok {
                current = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(current)
}

/// One-call construction of a fault-tolerant backbone: m-fold greedy
/// dominators, weighted max-gain connectors, and (optionally) the
/// 2-connectivity augmentation — the `(k,m)` analogue of
/// [`crate::greedy_cds`].  Unit node weights; use the phase functions
/// directly for weighted variants.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] / [`CdsError::DisconnectedGraph`] on
///   invalid inputs,
/// * [`CdsError::NotBiconnected`] when `biconnect` is requested but `g`
///   itself has a cut vertex no augmentation can bypass.
pub fn fault_tolerant_cds<G: RandomAccessGraph>(
    g: &G,
    m: usize,
    biconnect: bool,
) -> Result<Cds, CdsError> {
    if g.num_nodes() == 0 {
        return Err(CdsError::EmptyGraph);
    }
    if !g.is_connected() {
        return Err(CdsError::DisconnectedGraph);
    }
    let m = m.max(1);
    let weights = vec![1u64; g.num_nodes()];
    let dominators = weighted_m_fold_dominators(g, &weights, m)?;
    let mut connectors = weighted_max_gain_connectors(g, &dominators, &weights)?;
    if biconnect {
        let mut nodes: Vec<usize> = dominators.iter().chain(&connectors).copied().collect();
        nodes = biconnect_augment(g, &nodes)?;
        let dom_mask = node_mask(g.num_nodes(), &dominators);
        connectors = nodes.into_iter().filter(|&v| !dom_mask[v]).collect();
    }
    Ok(Cds::new(dominators, connectors))
}

/// Named node-weight assignments for the minimum-weight objective
/// ([`weighted_m_fold_dominators`] / [`weighted_max_gain_connectors`]).
///
/// The schemes are synthetic stand-ins for deployment costs (inverse
/// residual energy, rental price, …): `Unit` recovers the unweighted
/// size objective, `Degree` prices hubs proportionally to their load,
/// and `Random` draws adversarial costs from a seed.  All three are pure
/// functions of the graph (and the seed), so weighted runs keep the
/// workspace determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScheme {
    /// Every node costs 1 — the classic minimum-size objective.
    Unit,
    /// `degree(v) + 1` — electing a hub costs what it coordinates.
    Degree,
    /// Pseudorandom costs in `1..=16`, derived from the seed with a
    /// splitmix64 stream (independent of any global RNG state).
    Random(u64),
}

/// Rejected `--weights` selector, echoing the valid names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWeightScheme(pub String);

impl std::fmt::Display for UnknownWeightScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown weight scheme `{}` (valid: unit, degree, random)",
            self.0
        )
    }
}

impl std::error::Error for UnknownWeightScheme {}

impl WeightScheme {
    /// Parses a scheme selector; `seed` feeds [`WeightScheme::Random`]
    /// and is ignored by the deterministic schemes.
    pub fn parse(name: &str, seed: u64) -> Result<WeightScheme, UnknownWeightScheme> {
        match name {
            "unit" => Ok(WeightScheme::Unit),
            "degree" => Ok(WeightScheme::Degree),
            "random" => Ok(WeightScheme::Random(seed)),
            other => Err(UnknownWeightScheme(other.to_string())),
        }
    }

    /// The selector name ([`WeightScheme::parse`] inverse, seed aside).
    pub fn name(&self) -> &'static str {
        match self {
            WeightScheme::Unit => "unit",
            WeightScheme::Degree => "degree",
            WeightScheme::Random(_) => "random",
        }
    }

    /// Materializes the per-node weight vector for `g`.
    pub fn weights<G: RandomAccessGraph>(&self, g: &G) -> Vec<u64> {
        let n = g.num_nodes();
        match *self {
            WeightScheme::Unit => vec![1; n],
            WeightScheme::Degree => (0..n).map(|v| g.degree(v) as u64 + 1).collect(),
            WeightScheme::Random(seed) => {
                let mut state = seed;
                (0..n)
                    .map(|_| {
                        state = splitmix64(state);
                        state % 16 + 1
                    })
                    .collect()
            }
        }
    }

    /// Total cost of `nodes` under this scheme (weights from `g`).
    pub fn total<G: RandomAccessGraph>(&self, g: &G, nodes: &[usize]) -> u64 {
        let w = self.weights(g);
        nodes.iter().map(|&v| w[v]).sum()
    }
}

/// One step of the splitmix64 sequence — the standard seed expander,
/// kept local so `mcds-cds` needs no RNG dependency for weight synthesis.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::Graph;

    fn gnarly() -> Graph {
        Graph::from_edges(
            12,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (11, 0),
                (2, 8),
                (5, 11),
            ],
        )
    }

    #[test]
    fn m_fold_dominators_meet_their_coverage_contract() {
        for g in [
            gnarly(),
            Graph::cycle(15),
            Graph::complete(6),
            Graph::path(10),
        ] {
            for m in 1..=3 {
                let doms = m_fold_dominators(&g, m);
                let mask = node_mask(g.num_nodes(), &doms);
                for v in 0..g.num_nodes() {
                    if !mask[v] {
                        let have = g.successors(v).filter(|&u| mask[u]).count();
                        assert!(have >= m, "node {v} covered {have} < {m} in {g:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn m_zero_and_degenerate_inputs() {
        assert!(m_fold_dominators(&Graph::cycle(5), 0).is_empty());
        assert!(m_fold_dominators(&Graph::empty(0), 2).is_empty());
        // A singleton graph must elect itself.
        assert_eq!(m_fold_dominators(&Graph::empty(1), 2), vec![0]);
        // Degree-starved nodes elect themselves rather than looping.
        let p2 = Graph::path(2);
        assert_eq!(m_fold_dominators(&p2, 3), vec![0, 1]);
    }

    #[test]
    fn weights_steer_the_election() {
        // On a star, the hub wins at unit weights (it covers everyone),
        // but a prohibitive hub weight pushes the election to the leaves.
        let star = Graph::star(6);
        let unit = m_fold_dominators(&star, 1);
        assert_eq!(unit, vec![0]);
        let mut costly_hub = vec![1u64; 6];
        costly_hub[0] = 1_000_000;
        let avoided = weighted_m_fold_dominators(&star, &costly_hub, 1).unwrap();
        // Leaves cannot cover each other, so the hub still appears, but
        // only after every leaf elected itself.
        assert!(avoided.len() > 1);
        let bad = weighted_m_fold_dominators(&star, &[1, 2], 1);
        assert!(matches!(bad, Err(CdsError::InvalidSet(_))));
    }

    #[test]
    fn weighted_connectors_connect_m_fold_seeds() {
        for g in [gnarly(), Graph::cycle(15), Graph::path(12)] {
            let weights = vec![1u64; g.num_nodes()];
            for m in 1..=3 {
                let doms = m_fold_dominators(&g, m);
                let conn = weighted_max_gain_connectors(&g, &doms, &weights).unwrap();
                let all: Vec<usize> = mcds_graph::node_set(doms.iter().chain(&conn).copied());
                assert!(
                    subsets::is_connected_subset(&g, &node_mask(g.num_nodes(), &all)),
                    "m={m} {g:?}"
                );
                for c in &conn {
                    assert!(doms.binary_search(c).is_err(), "connector {c} in seed");
                }
            }
        }
    }

    #[test]
    fn augmentation_produces_biconnected_backbones() {
        // Cycles and chorded cycles are 2-connected, so augmentation
        // must succeed; start from a deliberately fragile seed.
        for g in [gnarly(), Graph::cycle(9), Graph::complete(7)] {
            let cds = crate::greedy_cds(&g).unwrap();
            let aug = biconnect_augment(&g, cds.nodes()).unwrap();
            assert!(is_biconnected_set(&g, &aug), "{g:?}");
            // Superset of the input: augmentation only adds.
            for v in cds.nodes() {
                assert!(aug.binary_search(v).is_ok());
            }
        }
    }

    #[test]
    fn augmentation_rejects_graphs_with_unavoidable_cuts() {
        // A path's interior nodes are articulation points of the graph
        // itself; a backbone spanning both sides cannot be biconnected.
        let g = Graph::path(7);
        let backbone: Vec<usize> = (1..6).collect();
        match biconnect_augment(&g, &backbone) {
            Err(CdsError::NotBiconnected { cut }) => assert!(backbone.contains(&cut)),
            other => panic!("expected NotBiconnected, got {other:?}"),
        }
        // Trivially small backbones pass unchanged.
        assert_eq!(biconnect_augment(&g, &[3]).unwrap(), vec![3]);
        assert_eq!(biconnect_augment(&g, &[3, 4]).unwrap(), vec![3, 4]);
        // Disconnected backbones are rejected up front.
        assert_eq!(biconnect_augment(&g, &[1, 5]), Err(CdsError::NotConnected));
    }

    #[test]
    fn check_m_cds_reports_the_first_violation() {
        let g = Graph::cycle(6);
        assert!(check_m_cds(&g, &[0, 1, 2, 3, 4], 2).is_ok());
        match check_m_cds(&g, &[0, 1, 2], 2) {
            Err(CdsError::NotMDominating { node, have, need }) => {
                assert_eq!((node, have, need), (3, 1, 2));
            }
            other => panic!("expected NotMDominating, got {other:?}"),
        }
        assert_eq!(check_m_cds(&g, &[0, 3], 1), Err(CdsError::NotConnected));
        assert!(matches!(
            check_m_cds(&g, &[], 1),
            Err(CdsError::InvalidSet(_))
        ));
    }

    #[test]
    fn m_aware_pruning_is_idempotent_and_contract_preserving() {
        for g in [gnarly(), Graph::cycle(12)] {
            for m in 1..=2 {
                for biconnect in [false, true] {
                    let cds = fault_tolerant_cds(&g, m, biconnect).unwrap();
                    let pruned = prune_m_cds(&g, cds.nodes(), m, biconnect).unwrap();
                    assert!(check_m_cds(&g, &pruned, m).is_ok(), "m={m} {g:?}");
                    if biconnect {
                        assert!(is_biconnected_set(&g, &pruned), "m={m} {g:?}");
                    }
                    let again = prune_m_cds(&g, &pruned, m, biconnect).unwrap();
                    assert_eq!(again, pruned, "prune not idempotent, m={m} {g:?}");
                }
            }
        }
    }

    #[test]
    fn fault_tolerant_cds_whole_family_on_named_graphs() {
        for g in [gnarly(), Graph::cycle(10), Graph::complete(8)] {
            for m in 1..=3 {
                let plain = fault_tolerant_cds(&g, m, false).unwrap();
                assert!(check_m_cds(&g, plain.nodes(), m).is_ok());
                let hard = fault_tolerant_cds(&g, m, true).unwrap();
                assert!(check_m_cds(&g, hard.nodes(), m).is_ok());
                assert!(is_biconnected_set(&g, hard.nodes()));
                // Hardening never shrinks the backbone.
                assert!(hard.len() >= plain.len());
            }
        }
        assert_eq!(
            fault_tolerant_cds(&Graph::empty(0), 2, false),
            Err(CdsError::EmptyGraph)
        );
        assert_eq!(
            fault_tolerant_cds(&Graph::from_edges(4, [(0, 1), (2, 3)]), 2, false),
            Err(CdsError::DisconnectedGraph)
        );
    }

    #[test]
    fn backbone_survives_single_dominator_failure_when_m_is_2() {
        // The robustness claim in miniature: kill any single backbone
        // node of a (2,2) backbone and every surviving non-member is
        // still covered, and the survivors stay connected.
        let g = gnarly();
        let cds = fault_tolerant_cds(&g, 2, true).unwrap();
        for &dead in cds.nodes() {
            let survivors: Vec<usize> =
                cds.nodes().iter().copied().filter(|&v| v != dead).collect();
            let mask = node_mask(g.num_nodes(), &survivors);
            for v in 0..g.num_nodes() {
                if v == dead || mask[v] {
                    continue;
                }
                assert!(
                    g.successors(v).any(|u| mask[u]),
                    "node {v} uncovered after killing {dead}"
                );
            }
            assert!(
                subsets::is_connected_subset(&g, &mask),
                "backbone split after killing {dead}"
            );
        }
    }
}
