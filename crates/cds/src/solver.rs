//! The unified [`Solver`] entry point: one configurable path through
//! every CDS construction in this crate.
//!
//! The free functions ([`crate::waf_cds`], [`crate::greedy_cds`], …)
//! predate this builder and remain as thin wrappers; new code should
//! construct a `Solver`:
//!
//! ```
//! use mcds_graph::Graph;
//! use mcds_cds::{Algorithm, Solver};
//!
//! let g = Graph::cycle(16);
//! let solution = Solver::new(Algorithm::GreedyConnect)
//!     .root(3)
//!     .prune(true)
//!     .timings(true)
//!     .solve(&g)?;
//! assert!(solution.cds().verify(&g).is_ok());
//! assert!(solution.ratio_bound().is_some());
//! # Ok::<(), mcds_cds::CdsError>(())
//! ```
//!
//! Beyond dispatch, the solver owns the cross-cutting concerns the ad-hoc
//! entry points each half-implemented: input validation with typed
//! [`CdsError`]s, per-phase wall-clock accounting ([`PhaseTimings`]),
//! optional post-verification, and the optional pruning post-pass.

use std::time::{Duration, Instant};

use mcds_graph::RandomAccessGraph;
use mcds_mis::{variants, BfsMis};

use crate::algorithms::Algorithm;
use crate::fault::WeightScheme;
use crate::{connect, fault, growth, prune, setcover, waf, Cds, CdsError};

/// Wall-clock time spent in each stage of a solve (all zero unless
/// [`Solver::timings`] was enabled).
///
/// The phase names follow the paper's two-phase structure; `build` is for
/// callers that also time instance construction (the experiment harness
/// folds UDG generation in via [`Solution::set_build_time`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Instance/graph construction (set by the caller; the solver itself
    /// receives a finished graph).
    pub build: Duration,
    /// Phase 1 — dominator election (MIS, set cover, or greedy growth).
    pub phase1: Duration,
    /// Phase 2 — connector selection.
    pub phase2: Duration,
    /// The 2-connectivity augmentation pass ([`Solver::biconnect`]).
    pub augment: Duration,
    /// Post-verification against the reference predicates.
    pub verify: Duration,
    /// The pruning post-pass.
    pub prune: Duration,
}

impl PhaseTimings {
    /// Total accounted time across all stages.
    pub fn total(&self) -> Duration {
        self.build + self.phase1 + self.phase2 + self.augment + self.verify + self.prune
    }
}

/// Lap timer that compiles to no-ops when timing is off.
struct Stopwatch {
    last: Option<Instant>,
}

impl Stopwatch {
    fn new(enabled: bool) -> Self {
        Stopwatch {
            last: enabled.then(Instant::now),
        }
    }

    /// Time since the previous lap (zero when disabled).
    fn lap(&mut self) -> Duration {
        match self.last {
            Some(prev) => {
                let now = Instant::now();
                self.last = Some(now);
                now - prev
            }
            None => Duration::ZERO,
        }
    }
}

/// Configurable CDS construction: pick the [`Algorithm`], then opt into a
/// root, verification, pruning, and timing before calling
/// [`Solver::solve`].
///
/// Defaults: root 0 (for the rooted algorithms), no verification, no
/// pruning, no timing — matching the historical behavior of the free
/// functions the builder replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Solver {
    algorithm: Algorithm,
    root: Option<usize>,
    prune: bool,
    verify: bool,
    timings: bool,
    m: usize,
    biconnect: bool,
    weights: WeightScheme,
}

impl Solver {
    /// A solver for `algorithm` with default configuration.
    pub fn new(algorithm: Algorithm) -> Self {
        Solver {
            algorithm,
            root: None,
            prune: false,
            verify: false,
            timings: false,
            m: 1,
            biconnect: false,
            weights: WeightScheme::Unit,
        }
    }

    /// Roots the construction at `root` (the elected leader).
    ///
    /// Only [`Algorithm::WafTree`] and [`Algorithm::GreedyConnect`] are
    /// root-sensitive; the baselines ignore the root but still validate
    /// it, so a bad root errors uniformly across algorithms.
    pub fn root(mut self, root: usize) -> Self {
        self.root = Some(root);
        self
    }

    /// Enables the validity-preserving pruning post-pass (see
    /// [`crate::prune::prune_cds`]); role labels of surviving nodes are
    /// kept.
    pub fn prune(mut self, on: bool) -> Self {
        self.prune = on;
        self
    }

    /// Re-checks the result against the reference CDS predicates before
    /// returning (an end-to-end guard for experiment pipelines).
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Records per-phase wall-clock times into [`Solution::timings`].
    pub fn timings(mut self, on: bool) -> Self {
        self.timings = on;
        self
    }

    /// Requests an m-fold dominating backbone: every non-backbone node
    /// must be covered by at least `m` dominators, so any `m − 1`
    /// dominator failures leave every client covered.
    ///
    /// `m = 1` (the default) runs the configured [`Algorithm`]
    /// unchanged.  For `m ≥ 2` the two phases route through the
    /// generalized constructions in [`crate::fault`] — the node-weighted
    /// m-fold greedy and the weighted max-gain connectors — regardless
    /// of the configured algorithm, which then only labels the result.
    /// The configured root is validated but not used by this family.
    ///
    /// # Panics
    ///
    /// If `m` is outside `1..=3` (the family the differential suite
    /// covers; higher folds exceed what a unit-disk neighborhood can
    /// promise).
    pub fn m(mut self, m: usize) -> Self {
        assert!((1..=3).contains(&m), "m must be in 1..=3, got {m}");
        self.m = m;
        self
    }

    /// Appends the 2-connectivity augmentation pass
    /// ([`crate::fault::biconnect_augment`]) after phase 2, producing a
    /// `(2,m)` backbone that survives any single node failure with
    /// connectivity intact.  Fails with [`CdsError::NotBiconnected`]
    /// when the input graph itself has an unavoidable cut vertex.
    pub fn biconnect(mut self, on: bool) -> Self {
        self.biconnect = on;
        self
    }

    /// Optimizes for total node weight under `scheme` instead of raw
    /// size.  [`WeightScheme::Unit`] (the default) leaves every
    /// algorithm untouched; any other scheme routes both phases through
    /// the weighted constructions of [`crate::fault`] — even at
    /// `m = 1`, where it yields a minimum-weight CDS heuristic — and the
    /// configured [`Algorithm`] then only labels the result, exactly as
    /// [`Solver::m`] above 1 does.
    pub fn weight_scheme(mut self, scheme: WeightScheme) -> Self {
        self.weights = scheme;
        self
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured weight scheme.
    pub fn weights(&self) -> WeightScheme {
        self.weights
    }

    /// Runs the configured construction on `g`.
    ///
    /// # Errors
    ///
    /// * [`CdsError::EmptyGraph`] if `g` has no nodes,
    /// * [`CdsError::InvalidRoot`] if a configured root is out of range,
    /// * [`CdsError::DisconnectedGraph`] if `g` is disconnected,
    /// * any typed verification error when [`Solver::verify`] is on and
    ///   the construction produced an invalid set (a bug, not an input
    ///   condition),
    /// * [`CdsError::Stalled`] if connector selection wedges (likewise
    ///   impossible on valid inputs),
    /// * [`CdsError::NotBiconnected`] if [`Solver::biconnect`] is set
    ///   but the graph's own cut vertices make a 2-connected backbone
    ///   impossible.
    pub fn solve<G: RandomAccessGraph>(&self, g: &G) -> Result<Solution, CdsError> {
        let n = g.num_nodes();
        if n == 0 {
            return Err(CdsError::EmptyGraph);
        }
        if let Some(root) = self.root {
            if root >= n {
                return Err(CdsError::InvalidRoot { root, nodes: n });
            }
        }
        let root = self.root.unwrap_or(0);
        let _solve_span = mcds_obs::span("solve");
        let mut watch = Stopwatch::new(self.timings);
        let mut timings = PhaseTimings::default();

        let (dominators, mut connectors) = if self.m > 1 || self.weights != WeightScheme::Unit {
            // The fault-tolerant / weighted family: phases route through
            // the generalized m-fold constructions (see `Solver::m` and
            // `Solver::weight_scheme`).
            let pre = mcds_obs::span("solve.precheck");
            if !g.is_connected() {
                return Err(CdsError::DisconnectedGraph);
            }
            drop(pre);
            let weights = self.weights.weights(g);
            let p1 = mcds_obs::span("solve.phase1");
            let doms = fault::weighted_m_fold_dominators(g, &weights, self.m)?;
            drop(p1);
            timings.phase1 = watch.lap();
            let p2 = mcds_obs::span("solve.phase2");
            let conn = fault::weighted_max_gain_connectors(g, &doms, &weights)?;
            drop(p2);
            timings.phase2 = watch.lap();
            (doms, conn)
        } else {
            self.base_phases(g, root, &mut watch, &mut timings)?
        };
        if self.biconnect {
            let a = mcds_obs::span("solve.augment");
            let nodes: Vec<usize> =
                mcds_graph::node_set(dominators.iter().chain(&connectors).copied());
            let augmented = fault::biconnect_augment(g, &nodes)?;
            let dom_mask = mcds_graph::node_mask(n, &dominators);
            connectors = augmented.into_iter().filter(|&v| !dom_mask[v]).collect();
            drop(a);
            timings.augment = watch.lap();
        }
        mcds_obs::counter!("solve.runs");
        mcds_obs::counter!("solve.dominators", dominators.len() as u64);
        mcds_obs::counter!("solve.connectors", connectors.len() as u64);

        let mut cds = Cds::new(dominators, connectors);
        if self.verify {
            let v = mcds_obs::span("solve.verify");
            if self.m > 1 || self.biconnect {
                fault::check_m_cds(g, cds.nodes(), self.m)?;
                if self.biconnect {
                    fault::check_biconnected(g, cds.nodes())?;
                }
            } else {
                cds.verify(g)?;
            }
            drop(v);
            timings.verify = watch.lap();
        }
        let mut pruned_from = None;
        if self.prune {
            let p = mcds_obs::span("solve.prune");
            let kept = if self.m > 1 || self.biconnect {
                fault::prune_m_cds(g, cds.nodes(), self.m, self.biconnect)?
            } else {
                prune::prune_cds(g, cds.nodes())?
            };
            if kept.len() < cds.len() {
                pruned_from = Some(cds.len());
                mcds_obs::counter!("prune.removed", (cds.len() - kept.len()) as u64);
                let keep = |v: &&usize| kept.binary_search(v).is_ok();
                cds = Cds::new(
                    cds.dominators().iter().filter(keep).copied().collect(),
                    cds.connectors().iter().filter(keep).copied().collect(),
                );
            }
            drop(p);
            timings.prune = watch.lap();
        }

        Ok(Solution {
            algorithm: self.algorithm,
            cds,
            timings,
            pruned_from,
        })
    }

    /// The classic (m = 1) phase pair for the configured algorithm.
    fn base_phases<G: RandomAccessGraph>(
        &self,
        g: &G,
        root: usize,
        watch: &mut Stopwatch,
        timings: &mut PhaseTimings,
    ) -> Result<(Vec<usize>, Vec<usize>), CdsError> {
        Ok(match self.algorithm {
            Algorithm::WafTree => {
                let p1 = mcds_obs::span("solve.phase1");
                let phase1 = BfsMis::compute(g, root);
                if !phase1.tree().spans(g) {
                    return Err(CdsError::DisconnectedGraph);
                }
                let mis = phase1.mis().to_vec();
                drop(p1);
                timings.phase1 = watch.lap();
                let p2 = mcds_obs::span("solve.phase2");
                let connectors = waf::waf_connectors(g, &phase1, root);
                drop(p2);
                timings.phase2 = watch.lap();
                (mis, connectors)
            }
            Algorithm::GreedyConnect => {
                let p1 = mcds_obs::span("solve.phase1");
                let phase1 = BfsMis::compute(g, root);
                if !phase1.tree().spans(g) {
                    return Err(CdsError::DisconnectedGraph);
                }
                let mis = phase1.mis().to_vec();
                drop(p1);
                timings.phase1 = watch.lap();
                let p2 = mcds_obs::span("solve.phase2");
                let connectors = connect::max_gain_connectors(g, &mis).map_err(|e| match e {
                    // An MIS of a connected graph can never stall
                    // (Lemma 9); surface any other error as-is.
                    CdsError::Stalled(msg) => {
                        CdsError::Stalled(format!("unexpected on MIS seed: {msg}"))
                    }
                    other => other,
                })?;
                drop(p2);
                timings.phase2 = watch.lap();
                (mis, connectors)
            }
            Algorithm::ChvatalSetCover => {
                // The connectivity BFS is real work on large graphs;
                // span it so trace coverage accounts for it.
                let pre = mcds_obs::span("solve.precheck");
                if !g.is_connected() {
                    return Err(CdsError::DisconnectedGraph);
                }
                drop(pre);
                let p1 = mcds_obs::span("solve.phase1");
                let ds = setcover::chvatal_dominating_set(g);
                drop(p1);
                timings.phase1 = watch.lap();
                let p2 = mcds_obs::span("solve.phase2");
                let connectors = connect::path_connectors(g, &ds)?;
                drop(p2);
                timings.phase2 = watch.lap();
                (ds, connectors)
            }
            Algorithm::ArbitraryMis => {
                let pre = mcds_obs::span("solve.precheck");
                if !g.is_connected() {
                    return Err(CdsError::DisconnectedGraph);
                }
                drop(pre);
                let p1 = mcds_obs::span("solve.phase1");
                let mis = variants::lexicographic_mis(g);
                drop(p1);
                timings.phase1 = watch.lap();
                let p2 = mcds_obs::span("solve.phase2");
                let connectors = connect::max_gain_then_paths(g, &mis)?;
                drop(p2);
                timings.phase2 = watch.lap();
                (mis, connectors)
            }
            Algorithm::GreedyGrowth => {
                let pre = mcds_obs::span("solve.precheck");
                if !g.is_connected() {
                    return Err(CdsError::DisconnectedGraph);
                }
                drop(pre);
                // Single-phase: the whole grown set counts as phase 1.
                let p1 = mcds_obs::span("solve.phase1");
                let set = growth::grow(g);
                drop(p1);
                timings.phase1 = watch.lap();
                (set, Vec::new())
            }
        })
    }
}

/// The outcome of a [`Solver`] run: the [`Cds`] plus its provenance
/// (algorithm, per-phase timings, pruning effect, proven ratio bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    algorithm: Algorithm,
    cds: Cds,
    timings: PhaseTimings,
    pruned_from: Option<usize>,
}

impl Solution {
    /// The algorithm that produced this solution.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The constructed CDS with its phase roles.
    pub fn cds(&self) -> &Cds {
        &self.cds
    }

    /// All CDS nodes (sorted); shorthand for `self.cds().nodes()`.
    pub fn nodes(&self) -> &[usize] {
        self.cds.nodes()
    }

    /// Total CDS size.
    pub fn len(&self) -> usize {
        self.cds.len()
    }

    /// Returns `true` if the CDS has no nodes.
    pub fn is_empty(&self) -> bool {
        self.cds.is_empty()
    }

    /// Per-phase wall-clock accounting (zeros unless [`Solver::timings`]
    /// was enabled).
    pub fn timings(&self) -> &PhaseTimings {
        &self.timings
    }

    /// Folds the caller's instance-construction time into
    /// [`PhaseTimings::build`] (the solver never sees graph generation).
    pub fn set_build_time(&mut self, build: Duration) {
        self.timings.build = build;
    }

    /// Pre-pruning CDS size, if pruning was enabled and removed nodes.
    pub fn pruned_from(&self) -> Option<usize> {
        self.pruned_from
    }

    /// The proven approximation-ratio bound for this algorithm on unit-
    /// disk graphs, if a constant one is known (Theorems 8 and 10).
    pub fn ratio_bound(&self) -> Option<f64> {
        self.algorithm.ratio_bound()
    }

    /// Consumes the solution, keeping only the CDS.
    pub fn into_cds(self) -> Cds {
        self.cds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::WeightScheme;
    use mcds_graph::{properties, Graph};

    fn gnarly() -> Graph {
        Graph::from_edges(
            12,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (11, 0),
                (2, 8),
                (5, 11),
            ],
        )
    }

    #[test]
    fn solver_matches_free_functions() {
        let g = gnarly();
        for alg in Algorithm::ALL {
            let via_solver = Solver::new(alg).solve(&g).unwrap();
            let via_free = alg.run(&g).unwrap();
            assert_eq!(via_solver.cds(), &via_free, "{alg}");
            assert_eq!(via_solver.algorithm(), alg);
        }
    }

    #[test]
    fn rooted_solves_match_rooted_free_functions() {
        let g = gnarly();
        for root in 0..g.num_nodes() {
            let s = Solver::new(Algorithm::GreedyConnect)
                .root(root)
                .solve(&g)
                .unwrap();
            assert_eq!(s.cds(), &crate::greedy_cds_rooted(&g, root).unwrap());
            let w = Solver::new(Algorithm::WafTree)
                .root(root)
                .solve(&g)
                .unwrap();
            assert_eq!(w.cds(), &crate::waf_cds_rooted(&g, root).unwrap());
        }
    }

    #[test]
    fn typed_input_errors() {
        assert_eq!(
            Solver::new(Algorithm::WafTree).solve(&Graph::empty(0)),
            Err(CdsError::EmptyGraph)
        );
        assert_eq!(
            Solver::new(Algorithm::GreedyConnect)
                .root(7)
                .solve(&Graph::path(3)),
            Err(CdsError::InvalidRoot { root: 7, nodes: 3 })
        );
        // Baselines validate the root too, even though they ignore it.
        assert_eq!(
            Solver::new(Algorithm::GreedyGrowth)
                .root(99)
                .solve(&Graph::path(3)),
            Err(CdsError::InvalidRoot { root: 99, nodes: 3 })
        );
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        for alg in Algorithm::ALL {
            assert_eq!(
                Solver::new(alg).solve(&split),
                Err(CdsError::DisconnectedGraph),
                "{alg}"
            );
        }
    }

    #[test]
    fn verify_and_prune_flags() {
        let g = Graph::cycle(15);
        for alg in Algorithm::ALL {
            let sol = Solver::new(alg).verify(true).prune(true).solve(&g).unwrap();
            assert!(properties::is_connected_dominating_set(&g, sol.nodes()));
            if let Some(before) = sol.pruned_from() {
                assert!(sol.len() < before, "{alg}");
            }
            // Pruned roles stay a partition of the pruned set.
            let rebuilt: Vec<usize> = mcds_graph::node_set(
                sol.cds()
                    .dominators()
                    .iter()
                    .chain(sol.cds().connectors())
                    .copied(),
            );
            assert_eq!(rebuilt, sol.nodes(), "{alg}");
        }
    }

    #[test]
    fn timings_populated_only_on_request() {
        let g = Graph::cycle(40);
        let quiet = Solver::new(Algorithm::GreedyConnect).solve(&g).unwrap();
        assert_eq!(quiet.timings().total(), Duration::ZERO);
        let timed = Solver::new(Algorithm::GreedyConnect)
            .verify(true)
            .timings(true)
            .solve(&g)
            .unwrap();
        // phase1 must be nonzero on any real clock; total ≥ each part.
        assert!(timed.timings().total() >= timed.timings().phase1);
        let mut s = timed.clone();
        s.set_build_time(Duration::from_millis(3));
        assert_eq!(s.timings().build, Duration::from_millis(3));
        assert!(s.timings().total() >= Duration::from_millis(3));
    }

    #[test]
    fn ratio_bound_flows_from_algorithm() {
        let g = Graph::path(9);
        let sol = Solver::new(Algorithm::WafTree).solve(&g).unwrap();
        assert_eq!(sol.ratio_bound(), Algorithm::WafTree.ratio_bound());
        let sol = Solver::new(Algorithm::GreedyGrowth).solve(&g).unwrap();
        assert_eq!(sol.ratio_bound(), None);
    }

    #[test]
    fn fault_tolerant_family_through_the_builder() {
        let g = gnarly();
        for m in 1..=3 {
            for biconnect in [false, true] {
                let sol = Solver::new(Algorithm::GreedyConnect)
                    .m(m)
                    .biconnect(biconnect)
                    .verify(true)
                    .prune(true)
                    .solve(&g)
                    .unwrap();
                assert!(
                    crate::fault::check_m_cds(&g, sol.nodes(), m).is_ok(),
                    "m={m} biconnect={biconnect}"
                );
                if biconnect {
                    assert!(
                        crate::fault::check_biconnected(&g, sol.nodes()).is_ok(),
                        "m={m}"
                    );
                }
                // Roles stay a partition after m-aware pruning.
                let rebuilt: Vec<usize> = mcds_graph::node_set(
                    sol.cds()
                        .dominators()
                        .iter()
                        .chain(sol.cds().connectors())
                        .copied(),
                );
                assert_eq!(rebuilt, sol.nodes(), "m={m} biconnect={biconnect}");
            }
        }
        // The m = 1, no-augmentation configuration must stay bit-identical
        // to the classic path (the determinism contract).
        let classic = Solver::new(Algorithm::GreedyConnect).solve(&g).unwrap();
        let via_m = Solver::new(Algorithm::GreedyConnect)
            .m(1)
            .solve(&g)
            .unwrap();
        assert_eq!(classic.cds(), via_m.cds());
    }

    #[test]
    fn weighted_solves_are_valid_and_deterministic() {
        let g = gnarly();
        for scheme in [
            WeightScheme::Unit,
            WeightScheme::Degree,
            WeightScheme::Random(42),
        ] {
            for m in 1..=2 {
                let a = Solver::new(Algorithm::GreedyConnect)
                    .m(m)
                    .weight_scheme(scheme)
                    .verify(true)
                    .solve(&g)
                    .unwrap();
                let b = Solver::new(Algorithm::GreedyConnect)
                    .m(m)
                    .weight_scheme(scheme)
                    .verify(true)
                    .solve(&g)
                    .unwrap();
                assert_eq!(a.cds(), b.cds(), "{scheme:?} m={m}");
                assert!(properties::is_connected_dominating_set(&g, a.nodes()));
            }
        }
        // Unit weights must not perturb the classic m = 1 path.
        let classic = Solver::new(Algorithm::GreedyConnect).solve(&g).unwrap();
        let unit = Solver::new(Algorithm::GreedyConnect)
            .weight_scheme(WeightScheme::Unit)
            .solve(&g)
            .unwrap();
        assert_eq!(classic.cds(), unit.cds());
    }

    #[test]
    fn weight_scheme_vectors_and_totals() {
        let g = gnarly();
        let n = g.num_nodes();
        assert_eq!(WeightScheme::Unit.weights(&g), vec![1; n]);
        let deg = WeightScheme::Degree.weights(&g);
        assert!((0..n).all(|v| deg[v] == g.degree(v) as u64 + 1));
        let r1 = WeightScheme::Random(7).weights(&g);
        assert_eq!(r1, WeightScheme::Random(7).weights(&g));
        assert_ne!(r1, WeightScheme::Random(8).weights(&g));
        assert!(r1.iter().all(|&w| (1..=16).contains(&w)));
        assert_eq!(WeightScheme::Unit.total(&g, &[0, 3, 5]), 3);
        assert_eq!(
            WeightScheme::parse("degree", 0).unwrap(),
            WeightScheme::Degree
        );
        assert_eq!(
            WeightScheme::parse("random", 5).unwrap(),
            WeightScheme::Random(5)
        );
        assert!(WeightScheme::parse("bogus", 0).is_err());
    }

    #[test]
    fn biconnect_fails_typed_on_graphs_with_cut_vertices() {
        // Every backbone of a path must cross its interior cut vertices.
        let g = Graph::path(8);
        let err = Solver::new(Algorithm::GreedyConnect)
            .biconnect(true)
            .solve(&g)
            .unwrap_err();
        assert!(matches!(err, CdsError::NotBiconnected { .. }), "{err:?}");
    }

    #[test]
    #[should_panic(expected = "m must be in 1..=3")]
    fn out_of_family_m_panics() {
        let _ = Solver::new(Algorithm::WafTree).m(4);
    }

    #[test]
    fn pruning_whole_vertex_set_keeps_roles_consistent() {
        // A case where pruning definitely removes nodes: run the chvatal
        // baseline on a path, whose set-cover dominators + path connectors
        // can carry slack.
        let g = Graph::path(30);
        let sol = Solver::new(Algorithm::ChvatalSetCover)
            .prune(true)
            .solve(&g)
            .unwrap();
        assert!(properties::is_connected_dominating_set(&g, sol.nodes()));
    }
}
