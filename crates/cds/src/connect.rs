//! Generic connector-selection routines.
//!
//! * [`max_gain_connectors`] — the paper's Section-IV greedy rule: while
//!   `G[seed ∪ C]` has more than one component, add the node of maximum
//!   *gain* (components merged minus one).  Requires a seed with the
//!   2-hop separation property of Lemma 9: some node always touches two
//!   components.  The BFS-ordered first-fit MIS has it (every dominator
//!   is at distance exactly 2 from an earlier one, so the distance-2
//!   graph on dominators is connected).  An *arbitrary* MIS does not —
//!   its components can sit 3 hops apart (e.g. `{0, 3, 5}` on a 6-path),
//!   which is precisely why the paper's phase 1 picks the special MIS.
//! * [`path_connectors`] — a distance-based fallback that connects any
//!   dominating seed (components may be up to 3 hops apart, where a
//!   single node can never bridge them): repeatedly joins the closest
//!   pair of components along a shortest path.
//! * [`max_gain_then_paths`] — greedy merges while possible, shortest
//!   paths for whatever remains; total for any seed on a connected graph.
//!
//! The greedy merge loop has two kernels (see [`crate::kernel`]): the
//! scalar one rescans every candidate per selection; the bitset one
//! keeps each candidate's merge count in a lazy bucket queue and only
//! recomputes where a selection could have changed it.  Both pick the
//! identical connector sequence (`tests/kernel_equiv.rs`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mcds_graph::bitgraph::BitSet;
use mcds_graph::{node_mask, subsets, DisjointSets, RandomAccessGraph};

use crate::kernel::{self, Kernel};
use crate::CdsError;

/// Greedy max-gain connector selection (the paper's phase 2).
///
/// Returns the connector sequence in selection order.  Ties on gain go to
/// the smaller node id, making the algorithm deterministic.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] / [`CdsError::DisconnectedGraph`] on bad
///   graphs,
/// * [`CdsError::Stalled`] if no remaining node has positive gain while
///   more than one component remains (cannot happen when `seed` is an MIS
///   of a connected graph; can happen for weaker seeds).
pub fn max_gain_connectors<G: RandomAccessGraph>(
    g: &G,
    seed: &[usize],
) -> Result<Vec<usize>, CdsError> {
    max_gain_connectors_with(g, seed, kernel::select(g.num_nodes()))
}

/// [`max_gain_connectors`] with an explicit kernel choice (tests and
/// benches; the public entry point selects automatically).
///
/// # Errors
///
/// Same as [`max_gain_connectors`].
pub fn max_gain_connectors_with<G: RandomAccessGraph>(
    g: &G,
    seed: &[usize],
    kernel: Kernel,
) -> Result<Vec<usize>, CdsError> {
    if g.num_nodes() == 0 {
        return Err(CdsError::EmptyGraph);
    }
    if !g.is_connected() {
        return Err(CdsError::DisconnectedGraph);
    }
    let run = match kernel {
        Kernel::Scalar => merge_scalar(g, seed, false)?,
        Kernel::Bitset => merge_bitset(g, seed, false)?,
    };
    mcds_obs::counter!("connectors.candidates_scanned", run.scanned);
    mcds_obs::counter!("connectors.selected", run.connectors.len() as u64);
    Ok(run.connectors)
}

/// Max-gain merges while any node touches two components, then
/// shortest-path connectors for whatever remains.
///
/// Total for *any* seed on a connected graph — the connector rule for
/// baselines whose phase-1 sets lack the 2-hop separation property
/// (arbitrary MISs, set-cover dominators).
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] / [`CdsError::DisconnectedGraph`] on bad
///   graphs.
pub fn max_gain_then_paths<G: RandomAccessGraph>(
    g: &G,
    seed: &[usize],
) -> Result<Vec<usize>, CdsError> {
    max_gain_then_paths_with(g, seed, kernel::select(g.num_nodes()))
}

/// [`max_gain_then_paths`] with an explicit kernel choice.
///
/// # Errors
///
/// Same as [`max_gain_then_paths`].
pub fn max_gain_then_paths_with<G: RandomAccessGraph>(
    g: &G,
    seed: &[usize],
    kernel: Kernel,
) -> Result<Vec<usize>, CdsError> {
    if g.num_nodes() == 0 {
        return Err(CdsError::EmptyGraph);
    }
    if !g.is_connected() {
        return Err(CdsError::DisconnectedGraph);
    }
    let mut run = match kernel {
        Kernel::Scalar => merge_scalar(g, seed, true)?,
        Kernel::Bitset => merge_bitset(g, seed, true)?,
    };
    mcds_obs::counter!("connectors.candidates_scanned", run.scanned);
    if run.remaining > 1 {
        let mut grown: Vec<usize> = seed.to_vec();
        grown.extend(run.connectors.iter().copied());
        run.connectors.extend(path_connectors(g, &grown)?);
    }
    mcds_obs::counter!("connectors.selected", run.connectors.len() as u64);
    Ok(run.connectors)
}

/// Outcome of a greedy merge loop: the selections made, the number of
/// components left (1 unless the seed stalled), and how many candidate
/// gain evaluations it took (kernel-dependent; flushed to the
/// `connectors.candidates_scanned` counter by the callers).
struct MergeRun {
    connectors: Vec<usize>,
    remaining: usize,
    scanned: u64,
}

fn stall_error(q: usize) -> CdsError {
    CdsError::Stalled(format!(
        "{q} components remain but no node touches two of them \
         (seed lacks the 2-hop separation property)"
    ))
}

/// Original kernel: one full candidate scan per selection.
fn merge_scalar<G: RandomAccessGraph>(
    g: &G,
    seed: &[usize],
    allow_stall: bool,
) -> Result<MergeRun, CdsError> {
    let mut mask = node_mask(g.num_nodes(), seed);
    let mut dsu = subsets::components_dsu(g, &mask);
    let mut q = subsets::count_components(g, &mask);
    let mut connectors = Vec::new();
    // Accumulated locally and flushed once by the caller: the scan below
    // is the hot loop, and per-candidate counter updates would distort
    // what the counter is meant to profile.
    let mut scanned: u64 = 0;

    while q > 1 {
        // Find the node with the largest number of distinct adjacent
        // components (gain = that count − 1), ties toward smaller id.
        let mut best: Option<(usize, usize)> = None; // (count, node)
        for w in 0..g.num_nodes() {
            if mask[w] {
                continue;
            }
            scanned += 1;
            let adj = subsets::adjacent_components(g, &mask, &mut dsu, w);
            if adj.len() >= 2 {
                match best {
                    Some((c, _)) if c >= adj.len() => {}
                    _ => best = Some((adj.len(), w)),
                }
            }
        }
        let Some((count, w)) = best else {
            if allow_stall {
                return Ok(MergeRun {
                    connectors,
                    remaining: q,
                    scanned,
                });
            }
            return Err(stall_error(q));
        };
        mask[w] = true;
        for u in g.successors(w) {
            if mask[u] {
                dsu.union(w, u);
            }
        }
        q = q + 1 - count; // w joins `count` components and itself
        connectors.push(w);
        debug_assert_eq!(q, subsets::count_components(g, &mask));
    }
    Ok(MergeRun {
        connectors,
        remaining: q,
        scanned,
    })
}

/// Bitset kernel: incremental gain maintenance via a lazy bucket queue.
///
/// Every candidate `w ∉ mask` carries an *upper bound* `bucket_of[w]` on
/// its true merge count `|{distinct components adjacent to w}|`:
///
/// * selections only ever merge components, so counts of nodes **not**
///   adjacent to the selected `w` can only drop — their cached bound
///   stays valid;
/// * only neighbors of `w` can gain adjacency to the new component, and
///   those are recomputed exactly, right after the selection.
///
/// Buckets are keyed by the bound; popping the smallest id from the
/// highest non-empty bucket and confirming its true count against the
/// bucket level therefore yields exactly the scalar rule's argmax (max
/// count, smallest id on ties) — stale entries are lazily demoted on
/// pop.  Work per selection is `O(deg w · α)` for the refresh plus the
/// lazy pops, instead of a full `O(n · deg)` rescan.
fn merge_bitset<G: RandomAccessGraph>(
    g: &G,
    seed: &[usize],
    allow_stall: bool,
) -> Result<MergeRun, CdsError> {
    const UNQUEUED: u32 = u32::MAX;
    let n = g.num_nodes();
    let rows = kernel::maybe_rows(g);
    let rows = rows.as_ref();
    let mut mask = BitSet::from_nodes(n, seed);
    let mut dsu = DisjointSets::new(n);
    let mut members = 0usize;
    let mut merges = 0usize;
    for v in mask.iter_ones() {
        members += 1;
        kernel::for_each_neighbor(g, rows, v, |u| {
            if u < v && mask.contains(u) && dsu.union(u, v) {
                merges += 1;
            }
        });
    }
    let mut q = members - merges;
    let mut connectors = Vec::new();
    let mut scanned: u64 = 0;
    if q <= 1 {
        return Ok(MergeRun {
            connectors,
            remaining: q,
            scanned,
        });
    }

    // `bucket_of[w]`: the bucket currently holding w's live entry (an
    // upper bound on its true count); entries are only materialized in
    // the heaps for buckets ≥ 2, the only ones selection pops from.
    let mut bucket_of: Vec<u32> = vec![UNQUEUED; n];
    let mut buckets: Vec<BinaryHeap<Reverse<usize>>> = Vec::new();
    let mut top = 0usize;
    let mut roots: Vec<usize> = Vec::new();
    let mut to_refresh: Vec<usize> = Vec::new();
    for w in 0..n {
        if mask.contains(w) {
            continue;
        }
        scanned += 1;
        let c = adjacent_count(g, rows, &mask, &mut dsu, w, &mut roots);
        enqueue(&mut buckets, &mut bucket_of, &mut top, w, c);
    }

    while q > 1 {
        let mut best: Option<(usize, usize)> = None; // (count, node)
        loop {
            while top >= 2 && buckets.get(top).is_none_or(BinaryHeap::is_empty) {
                top -= 1;
            }
            if top < 2 {
                break;
            }
            let Reverse(x) = buckets[top].pop().expect("bucket checked non-empty");
            if bucket_of[x] as usize != top || mask.contains(x) {
                continue; // stale entry left behind by a reassignment
            }
            scanned += 1;
            let c = adjacent_count(g, rows, &mask, &mut dsu, x, &mut roots);
            debug_assert!(c <= top, "cached gain bound was not an upper bound");
            if c == top {
                best = Some((c, x));
                break;
            }
            // Lazy demotion to the true (lower) bucket.
            enqueue(&mut buckets, &mut bucket_of, &mut top, x, c);
        }
        let Some((count, w)) = best else {
            if allow_stall {
                return Ok(MergeRun {
                    connectors,
                    remaining: q,
                    scanned,
                });
            }
            return Err(stall_error(q));
        };
        mask.insert(w);
        bucket_of[w] = UNQUEUED;
        to_refresh.clear();
        kernel::for_each_neighbor(g, rows, w, |u| {
            if mask.contains(u) {
                dsu.union(w, u);
            } else {
                to_refresh.push(u);
            }
        });
        q = q + 1 - count;
        connectors.push(w);
        // Only neighbors of the selection can *gain* adjacency to the
        // merged component; recompute them exactly so the cached bounds
        // stay upper bounds.
        for &x in &to_refresh {
            scanned += 1;
            let c = adjacent_count(g, rows, &mask, &mut dsu, x, &mut roots);
            if c as u32 != bucket_of[x] {
                enqueue(&mut buckets, &mut bucket_of, &mut top, x, c);
            }
        }
        debug_assert_eq!(q, {
            let bool_mask: Vec<bool> = (0..n).map(|v| mask.contains(v)).collect();
            subsets::count_components(g, &bool_mask)
        });
    }
    Ok(MergeRun {
        connectors,
        remaining: q,
        scanned,
    })
}

/// Re-files `w` under bucket `c` (heap entry only for selectable `c ≥ 2`).
fn enqueue(
    buckets: &mut Vec<BinaryHeap<Reverse<usize>>>,
    bucket_of: &mut [u32],
    top: &mut usize,
    w: usize,
    c: usize,
) {
    bucket_of[w] = c as u32;
    if c >= 2 {
        if buckets.len() <= c {
            buckets.resize_with(c + 1, BinaryHeap::new);
        }
        buckets[c].push(Reverse(w));
        if c > *top {
            *top = c;
        }
    }
}

/// Number of distinct `G[mask]` components adjacent to `w` — the same
/// value `subsets::adjacent_components(..).len()` yields, without
/// materializing the sorted root list.
fn adjacent_count<G: RandomAccessGraph>(
    g: &G,
    rows: Option<&mcds_graph::bitgraph::BitRows>,
    mask: &BitSet,
    dsu: &mut DisjointSets,
    w: usize,
    roots: &mut Vec<usize>,
) -> usize {
    roots.clear();
    kernel::for_each_neighbor(g, rows, w, |u| {
        if mask.contains(u) {
            let r = dsu.find(u);
            if !roots.contains(&r) {
                roots.push(r);
            }
        }
    });
    roots.len()
}

/// The per-step gains of a connector sequence, recomputed from scratch —
/// a reference used in tests and by the Theorem-10 accounting experiment.
pub fn gain_trace<G: RandomAccessGraph>(g: &G, seed: &[usize], connectors: &[usize]) -> Vec<usize> {
    let mut mask = node_mask(g.num_nodes(), seed);
    let mut trace = Vec::with_capacity(connectors.len());
    let mut q = subsets::count_components(g, &mask);
    for &w in connectors {
        mask[w] = true;
        let q2 = subsets::count_components(g, &mask);
        trace.push(q - q2);
        q = q2;
    }
    trace
}

/// Connects an arbitrary dominating seed by repeatedly adding the interior
/// of a shortest path between the closest pair of components.
///
/// Works for any seed on a connected graph (unlike [`max_gain_connectors`],
/// which needs 2-hop-separated components).  Used by the Chvátal baseline,
/// whose set-cover dominators can be 3 hops apart.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] / [`CdsError::DisconnectedGraph`] on bad
///   graphs.
pub fn path_connectors<G: RandomAccessGraph>(
    g: &G,
    seed: &[usize],
) -> Result<Vec<usize>, CdsError> {
    if g.num_nodes() == 0 {
        return Err(CdsError::EmptyGraph);
    }
    if !g.is_connected() {
        return Err(CdsError::DisconnectedGraph);
    }
    let mut mask = node_mask(g.num_nodes(), seed);
    let mut connectors = Vec::new();
    loop {
        let q = subsets::count_components(g, &mask);
        if q <= 1 {
            break;
        }
        // Multi-source BFS from one component; stop at the first node of a
        // different component; add the interior of the path.
        let mut dsu = subsets::components_dsu(g, &mask);
        let start_root = {
            let first = (0..g.num_nodes())
                .find(|&v| mask[v])
                .expect("q > 1 implies nonempty seed");
            dsu.find(first)
        };
        let n = g.num_nodes();
        let mut parent = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for v in 0..n {
            if mask[v] && dsu.find(v) == start_root {
                seen[v] = true;
                queue.push_back(v);
            }
        }
        let mut hit = None;
        'bfs: while let Some(v) = queue.pop_front() {
            for u in g.successors(v) {
                if seen[u] {
                    continue;
                }
                seen[u] = true;
                parent[u] = v;
                if mask[u] {
                    hit = Some(u);
                    break 'bfs;
                }
                queue.push_back(u);
            }
        }
        let hit = hit.expect("connected graph: another component is reachable");
        // Walk back, adding interior (non-seed) nodes as connectors.
        let mut v = parent[hit];
        while v != usize::MAX && !mask[v] {
            mask[v] = true;
            connectors.push(v);
            v = parent[v];
        }
    }
    connectors.sort_unstable();
    Ok(connectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::{properties, Graph};
    use mcds_mis::BfsMis;

    #[test]
    fn max_gain_connects_mis_on_path() {
        let g = Graph::path(9);
        let mis = BfsMis::compute(&g, 0).mis().to_vec();
        let conn = max_gain_connectors(&g, &mis).unwrap();
        let mut all = mis.clone();
        all.extend(conn.iter().copied());
        assert!(properties::is_connected_dominating_set(&g, &all));
    }

    #[test]
    fn gains_are_monotone_nonincreasing_in_effect() {
        // Star of stars: center 0 connected to hubs 1..=3, each hub with
        // two leaves; max-gain should prefer high-gain nodes first.
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (1, 5),
                (2, 6),
                (2, 7),
                (3, 8),
                (3, 9),
            ],
        );
        let mis = vec![4, 5, 6, 7, 8, 9]; // leaves: independent, maximal? leaves dominate hubs, node 0 has no leaf neighbor
                                          // Node 0's neighbors are hubs only, so the leaf set is NOT
                                          // dominating; use a proper MIS instead.
        let mis = if properties::is_maximal_independent_set(&g, &mis) {
            mis
        } else {
            BfsMis::compute(&g, 4).mis().to_vec()
        };
        let conn = max_gain_connectors(&g, &mis).unwrap();
        let trace = gain_trace(&g, &mis, &conn);
        assert!(!trace.is_empty());
        // Every selected connector had positive gain.
        assert!(trace.iter().all(|&t| t >= 1), "{trace:?}");
    }

    #[test]
    fn max_gain_stalls_on_spread_seed() {
        // Path of 7 with seed {0, 6}: components 3 hops apart; no single
        // node touches both -> wait, distance from 0 to 6 is 6 hops; a
        // middle node touches neither two components... any node adjacent
        // to two components? Node 1 touches {0} only; node 5 touches {6}
        // only. Stall expected.
        let g = Graph::path(7);
        let err = max_gain_connectors(&g, &[0, 6]).unwrap_err();
        assert!(matches!(err, CdsError::Stalled(_)));
        // Both kernels stall with the identical diagnostic.
        let a = max_gain_connectors_with(&g, &[0, 6], Kernel::Scalar).unwrap_err();
        let b = max_gain_connectors_with(&g, &[0, 6], Kernel::Bitset).unwrap_err();
        assert_eq!(a, b);
    }

    #[test]
    fn path_connectors_handle_spread_seed() {
        let g = Graph::path(7);
        let conn = path_connectors(&g, &[0, 6]).unwrap();
        assert_eq!(conn, vec![1, 2, 3, 4, 5]);
        let mut all = vec![0, 6];
        all.extend(conn);
        assert!(properties::is_connected_dominating_set(&g, &all));
    }

    #[test]
    fn already_connected_seed_needs_no_connectors() {
        let g = Graph::path(5);
        assert!(max_gain_connectors(&g, &[1, 2, 3]).unwrap().is_empty());
        assert!(path_connectors(&g, &[1, 2, 3]).unwrap().is_empty());
        // Empty seed: zero components, nothing to connect.
        assert!(max_gain_connectors(&g, &[]).unwrap().is_empty());
        assert!(max_gain_connectors_with(&g, &[], Kernel::Bitset)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn errors_on_bad_graphs() {
        let empty = Graph::empty(0);
        assert_eq!(max_gain_connectors(&empty, &[]), Err(CdsError::EmptyGraph));
        assert_eq!(path_connectors(&empty, &[]), Err(CdsError::EmptyGraph));
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(
            max_gain_connectors(&split, &[0]),
            Err(CdsError::DisconnectedGraph)
        );
        assert_eq!(
            path_connectors(&split, &[0]),
            Err(CdsError::DisconnectedGraph)
        );
    }

    #[test]
    fn max_gain_then_paths_handles_three_hop_mis() {
        // {0, 3, 5} is a maximal independent set of P6 whose components
        // are pairwise ≥ 2 hops apart with one pair at distance 3 after
        // the first merge — the canonical stall case.
        let g = Graph::path(6);
        let mis = vec![0, 3, 5];
        assert!(properties::is_maximal_independent_set(&g, &mis));
        let conn = max_gain_then_paths(&g, &mis).unwrap();
        let mut all = mis.clone();
        all.extend(conn.iter().copied());
        assert!(properties::is_connected_dominating_set(&g, &all));
        // The stall-then-paths route agrees across kernels too.
        let b = max_gain_then_paths_with(&g, &mis, Kernel::Bitset).unwrap();
        assert_eq!(conn, b);
    }

    #[test]
    fn max_gain_then_paths_equals_max_gain_when_no_stall() {
        let g = Graph::cycle(12);
        let mis = BfsMis::compute(&g, 0).mis().to_vec();
        let a = max_gain_connectors(&g, &mis).unwrap();
        let b = max_gain_then_paths(&g, &mis).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gain_trace_matches_direct_computation() {
        let g = Graph::cycle(12);
        let mis = BfsMis::compute(&g, 0).mis().to_vec();
        let conn = max_gain_connectors(&g, &mis).unwrap();
        let trace = gain_trace(&g, &mis, &conn);
        let total: usize = trace.iter().sum();
        // Components drop from |mis| to 1.
        assert_eq!(total, mis.len() - 1);
    }

    #[test]
    fn kernels_pick_identical_connectors() {
        for g in [Graph::path(9), Graph::cycle(12), Graph::cycle(30)] {
            let mis = BfsMis::compute(&g, 0).mis().to_vec();
            let a = max_gain_connectors_with(&g, &mis, Kernel::Scalar).unwrap();
            let b = max_gain_connectors_with(&g, &mis, Kernel::Bitset).unwrap();
            assert_eq!(a, b);
            assert_eq!(gain_trace(&g, &mis, &a), gain_trace(&g, &mis, &b));
        }
    }
}
