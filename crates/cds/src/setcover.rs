//! Baseline two-phased constructions: Chvátal set-cover dominators \[2\]
//! and arbitrary-MIS dominators \[1\]/\[9\].

use mcds_graph::{node_mask, RandomAccessGraph};

use crate::{Algorithm, Cds, CdsError, Solution, Solver};

/// Chvátal's greedy Set Cover applied to domination: repeatedly pick the
/// node whose closed neighborhood covers the most still-uncovered nodes
/// (ties toward smaller id).
///
/// This is phase 1 of the Das–Bharghavan style algorithm \[2\]; its
/// approximation ratio for *domination* is `H(Δ+1)` (logarithmic), which
/// is why the paper's constant-ratio MIS-based algorithms supersede it.
///
/// The result is a dominating set but generally neither independent nor
/// connected.
pub fn chvatal_dominating_set<G: RandomAccessGraph>(g: &G) -> Vec<usize> {
    let n = g.num_nodes();
    let mut covered = vec![false; n];
    let mut remaining = n;
    let mut ds = Vec::new();
    while remaining > 0 {
        let mut best = (0usize, usize::MAX); // (new coverage, node)
        for v in 0..n {
            let mut cover = usize::from(!covered[v]);
            cover += g.successors(v).filter(|&u| !covered[u]).count();
            if cover > best.0 || (cover == best.0 && v < best.1) {
                best = (cover, v);
            }
        }
        let (gain, v) = best;
        debug_assert!(gain > 0, "some node must cover something new");
        ds.push(v);
        if !covered[v] {
            covered[v] = true;
            remaining -= 1;
        }
        for u in g.successors(v) {
            if !covered[u] {
                covered[u] = true;
                remaining -= 1;
            }
        }
    }
    ds.sort_unstable();
    ds
}

/// The full Chvátal-based two-phase baseline: greedy set-cover dominators,
/// then shortest-path connectors.
///
/// Set-cover dominators lack the 2-hop separation property (two dominator
/// components can be 3 hops apart), so the phase-2 rule is
/// [`crate::connect::path_connectors`] rather than the paper's max-gain
/// rule.  Thin wrapper over [`Solver`]; prefer
/// `Solver::new(Algorithm::ChvatalSetCover).solve(g)` in new code.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] if `g` has no nodes,
/// * [`CdsError::DisconnectedGraph`] if `g` is disconnected.
pub fn chvatal_cds<G: RandomAccessGraph>(g: &G) -> Result<Cds, CdsError> {
    Solver::new(Algorithm::ChvatalSetCover)
        .solve(g)
        .map(Solution::into_cds)
}

/// The arbitrary-MIS two-phase baseline of \[1\]/\[9\]: a lexicographic
/// first-fit MIS (oblivious to the topology) connected by max-gain
/// merges with a shortest-path fallback.
///
/// Unlike the paper's BFS-ordered MIS, an arbitrary MIS lacks the 2-hop
/// separation property — its components can be 3 hops apart, where no
/// single node merges two of them (e.g. `{0, 3, 5}` on a 6-path).  The
/// connector rule is therefore [`crate::connect::max_gain_then_paths`].
/// This structural difference is exactly the motivation for the special
/// MIS in \[4\]/\[8\]/\[10\].  Thin wrapper over [`Solver`]; prefer
/// `Solver::new(Algorithm::ArbitraryMis).solve(g)` in new code.
///
/// # Errors
///
/// * [`CdsError::EmptyGraph`] if `g` has no nodes,
/// * [`CdsError::DisconnectedGraph`] if `g` is disconnected.
pub fn arbitrary_mis_cds<G: RandomAccessGraph>(g: &G) -> Result<Cds, CdsError> {
    Solver::new(Algorithm::ArbitraryMis)
        .solve(g)
        .map(Solution::into_cds)
}

/// Verifies the set-cover invariant used in tests: every node is covered
/// by the returned set.
#[allow(dead_code)]
fn is_cover<G: RandomAccessGraph>(g: &G, set: &[usize]) -> bool {
    let mask = node_mask(g.num_nodes(), set);
    (0..g.num_nodes()).all(|v| mask[v] || g.successors(v).any(|u| mask[u]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::{properties, Graph};

    #[test]
    fn chvatal_ds_dominates() {
        let graphs = [
            Graph::path(11),
            Graph::cycle(9),
            Graph::star(7),
            Graph::complete(5),
            Graph::from_edges(6, [(0, 1), (2, 3), (4, 5)]), // disconnected is fine for DS
        ];
        for g in &graphs {
            let ds = chvatal_dominating_set(g);
            assert!(properties::is_dominating_set(g, &ds), "{g:?}");
        }
    }

    #[test]
    fn chvatal_picks_hub_on_star() {
        let g = Graph::star(20);
        assert_eq!(chvatal_dominating_set(&g), vec![0]);
        let cds = chvatal_cds(&g).unwrap();
        assert_eq!(cds.nodes(), &[0]);
    }

    #[test]
    fn chvatal_cds_is_valid() {
        let graphs = [Graph::path(13), Graph::cycle(10), Graph::complete(4)];
        for g in &graphs {
            let cds = chvatal_cds(g).unwrap();
            cds.verify(g).unwrap_or_else(|e| panic!("{g:?}: {e}"));
        }
    }

    #[test]
    fn arbitrary_mis_cds_is_valid() {
        let graphs = [Graph::path(13), Graph::cycle(10), Graph::star(8)];
        for g in &graphs {
            let cds = arbitrary_mis_cds(g).unwrap();
            cds.verify(g).unwrap_or_else(|e| panic!("{g:?}: {e}"));
            assert!(properties::is_maximal_independent_set(g, cds.dominators()));
        }
    }

    #[test]
    fn baselines_error_on_bad_graphs() {
        let empty = Graph::empty(0);
        assert_eq!(chvatal_cds(&empty), Err(CdsError::EmptyGraph));
        assert_eq!(arbitrary_mis_cds(&empty), Err(CdsError::EmptyGraph));
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(chvatal_cds(&split), Err(CdsError::DisconnectedGraph));
        assert_eq!(arbitrary_mis_cds(&split), Err(CdsError::DisconnectedGraph));
    }

    #[test]
    fn chvatal_handles_three_hop_dominator_gaps() {
        // Path of 7: Chvátal picks nodes 1 and 5 (coverage 3 each), which
        // are 4 hops apart -> needs the path connector fallback.
        let g = Graph::path(7);
        let ds = chvatal_dominating_set(&g);
        let cds = chvatal_cds(&g).unwrap();
        cds.verify(&g).unwrap();
        assert!(cds.len() >= ds.len());
    }
}
