//! Differential kernel suite: the scalar and bitset hot-path kernels
//! must be *byte-identical* — same `Solution`s, same connector
//! sequences, same gain traces, same pruned sets, same errors — on every
//! oracle-scale instance and on 200+ seeded UDG deployments.
//!
//! The bitset kernels (`mcds_cds::kernel`) are pure accelerators: a lazy
//! bucket queue for the phase-2 argmax and incremental cover counts +
//! masked Tarjan for the prune scan.  Anything short of bit-equality
//! here is a bug, not a tolerance.

use std::sync::Mutex;

use mcds_cds::connect::{gain_trace, max_gain_connectors_with, max_gain_then_paths_with};
use mcds_cds::kernel::{self, Kernel};
use mcds_cds::prune::prune_cds_with;
use mcds_cds::{Algorithm, CdsError, Solver};
use mcds_check::oracle::oracle_cases;
use mcds_check::Gen;
use mcds_graph::traversal::largest_component;
use mcds_graph::Graph;
use mcds_mis::BfsMis;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;
use mcds_udg::{gen, Udg};

/// Serializes tests that flip the process-global kernel override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// RAII: forces a kernel, restores auto selection on drop (even if the
/// assertion in between panics, so later tests aren't poisoned).
struct Forced;

impl Forced {
    fn new(k: Kernel) -> Forced {
        kernel::set_override(Some(k));
        Forced
    }
}

impl Drop for Forced {
    fn drop(&mut self) {
        kernel::set_override(None);
    }
}

/// Runs both phase-2 routines and the prune post-pass on `g` through both
/// kernels with explicit dispatch and asserts identical results.
fn assert_kernels_agree(g: &Graph, label: &str) {
    if g.num_nodes() < 2 {
        return;
    }
    // Phase 2 from the paper's BFS-first-fit MIS seed.
    let mis = BfsMis::compute(g, 0).mis().to_vec();
    let a = max_gain_connectors_with(g, &mis, Kernel::Scalar);
    let b = max_gain_connectors_with(g, &mis, Kernel::Bitset);
    assert_eq!(a, b, "{label}: max_gain_connectors diverged");
    if let Ok(conn) = &a {
        assert_eq!(
            gain_trace(g, &mis, conn),
            gain_trace(g, &mis, b.as_ref().unwrap()),
            "{label}: gain traces diverged"
        );
    }
    // The stall-tolerant variant from a weaker seed (set-cover
    // dominators can sit 3 hops apart and force the path fallback).
    let weak = mcds_cds::chvatal_dominating_set(g);
    let a = max_gain_then_paths_with(g, &weak, Kernel::Scalar);
    let b = max_gain_then_paths_with(g, &weak, Kernel::Bitset);
    assert_eq!(a, b, "{label}: max_gain_then_paths diverged");
    // Prune from a lean input (the greedy CDS) and from the fattest
    // possible input (every vertex, if V is connected-dominating).
    let cds = mcds_cds::greedy_cds(g).expect("connected instance solves");
    let a = prune_cds_with(g, cds.nodes(), Kernel::Scalar);
    let b = prune_cds_with(g, cds.nodes(), Kernel::Bitset);
    assert_eq!(a, b, "{label}: prune_cds diverged on greedy CDS");
    let all: Vec<usize> = (0..g.num_nodes()).collect();
    let a = prune_cds_with(g, &all, Kernel::Scalar);
    let b = prune_cds_with(g, &all, Kernel::Bitset);
    assert_eq!(a, b, "{label}: prune_cds diverged on V");
}

/// The giant-component UDG of a seeded deployment, or `None` if it is
/// too small to make a CDS instance.
fn giant_graph(points: Vec<mcds_geom::Point>) -> Option<Udg> {
    let udg = Udg::build(points);
    let giant = largest_component(udg.graph());
    (giant.len() >= 2).then(|| udg.restricted_to(&giant))
}

/// Every `mcds-check` oracle case (the ≤18-node instances the exact
/// differential suite uses) agrees across kernels on connectors, gain
/// traces, stall behavior, and pruning.
#[test]
fn oracle_cases_agree_across_kernels() {
    let gen = oracle_cases(18);
    let mut checked = 0usize;
    for seed in 0..150u64 {
        let mut rng = StdRng::from_stream(seed, 0xb175);
        let case = gen.generate(&mut rng);
        let Some(sub) = giant_graph(case.points) else {
            continue;
        };
        checked += 1;
        assert_kernels_agree(sub.graph(), &format!("oracle seed {seed} {:?}", case.kind));
    }
    assert!(checked >= 100, "only {checked} usable oracle cases");
}

/// 200+ seeded uniform/clustered/corridor deployments at realistic sizes
/// run through the full `Solver` (all five constructions, prune on)
/// under each forced kernel; the `Solution` values — CDS nodes, phase
/// roles, pruned_from, algorithm — must be byte-identical.
#[test]
fn solver_solutions_identical_on_200_udg_instances() {
    let guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut checked = 0usize;
    for family in ["uniform", "clustered", "corridor"] {
        for seed in 0..70u64 {
            let mut rng = StdRng::from_stream(seed, 0x817e);
            let n = 40 + (seed as usize % 7) * 20; // 40..160
            let side = (n as f64 * std::f64::consts::PI / 12.0).sqrt();
            let points = match family {
                "uniform" => gen::uniform_in_square(&mut rng, n, side),
                "clustered" => {
                    let clusters = (n / 20).max(2);
                    gen::clustered(&mut rng, clusters, n / clusters, side, 0.8)
                }
                "corridor" => gen::corridor(&mut rng, n, 3.0 * side, side / 3.0),
                _ => unreachable!(),
            };
            let Some(sub) = giant_graph(points) else {
                continue;
            };
            let g = sub.graph();
            checked += 1;
            for alg in Algorithm::ALL {
                let scalar = {
                    let _f = Forced::new(Kernel::Scalar);
                    Solver::new(alg).prune(true).verify(true).solve(g)
                };
                let bitset = {
                    let _f = Forced::new(Kernel::Bitset);
                    Solver::new(alg).prune(true).verify(true).solve(g)
                };
                assert_eq!(
                    scalar, bitset,
                    "{family} seed {seed} n {n} {alg:?}: solutions diverged"
                );
            }
        }
    }
    assert!(checked >= 200, "only {checked} usable instances");
    drop(guard);
}

/// The stall diagnostic is part of the contract: a seed without the
/// 2-hop separation property must produce the identical `Stalled` error
/// from both kernels, and the path fallback must pick identical nodes.
#[test]
fn stall_and_error_cases_agree() {
    let g = Graph::path(7);
    let a = max_gain_connectors_with(&g, &[0, 6], Kernel::Scalar).unwrap_err();
    let b = max_gain_connectors_with(&g, &[0, 6], Kernel::Bitset).unwrap_err();
    assert!(matches!(a, CdsError::Stalled(_)));
    assert_eq!(a, b);
    let a = max_gain_then_paths_with(&g, &[0, 6], Kernel::Scalar).unwrap();
    let b = max_gain_then_paths_with(&g, &[0, 6], Kernel::Bitset).unwrap();
    assert_eq!(a, b);
    // Three-hop arbitrary MIS: merge partially, then path out.
    let g = Graph::path(6);
    let a = max_gain_then_paths_with(&g, &[0, 3, 5], Kernel::Scalar).unwrap();
    let b = max_gain_then_paths_with(&g, &[0, 3, 5], Kernel::Bitset).unwrap();
    assert_eq!(a, b);
}

/// Hostile structured topologies: hubs, cliques, cycles, and word-
/// boundary sizes (63/64/65 nodes) where a bitset padding bug would bite.
#[test]
fn structured_graphs_agree_across_kernels() {
    let star = Graph::from_edges(65, (1..65).map(|v| (0, v)).collect::<Vec<_>>());
    for (g, label) in [
        (Graph::path(63), "path63"),
        (Graph::path(64), "path64"),
        (Graph::path(65), "path65"),
        (Graph::cycle(64), "cycle64"),
        (Graph::complete(20), "k20"),
        (star, "star65"),
    ] {
        assert_kernels_agree(&g, label);
    }
}

/// The threshold-zero route: with the override pinned to bitset, the
/// public (auto-selecting) entry points run the bitset kernels even far
/// below the size threshold and still match forced-scalar output.
#[test]
fn forced_override_matches_scalar_on_public_entry_points() {
    let guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = Graph::cycle(30);
    let mis = BfsMis::compute(&g, 0).mis().to_vec();
    let scalar_conn = {
        let _f = Forced::new(Kernel::Scalar);
        mcds_cds::connect::max_gain_connectors(&g, &mis).unwrap()
    };
    let bitset_conn = {
        let _f = Forced::new(Kernel::Bitset);
        mcds_cds::connect::max_gain_connectors(&g, &mis).unwrap()
    };
    assert_eq!(scalar_conn, bitset_conn);
    let all: Vec<usize> = (0..30).collect();
    let scalar_prune = {
        let _f = Forced::new(Kernel::Scalar);
        mcds_cds::prune::prune_cds(&g, &all).unwrap()
    };
    let bitset_prune = {
        let _f = Forced::new(Kernel::Bitset);
        mcds_cds::prune::prune_cds(&g, &all).unwrap()
    };
    assert_eq!(scalar_prune, bitset_prune);
    drop(guard);
}
