//! Property-based tests for the CDS algorithms on *general* random
//! graphs (not just UDGs): validity is topology-independent even though
//! the ratio guarantees are UDG-specific.

// Property tests need the external `proptest` crate, which is not
// available in hermetic (offline) builds; enable with
// `cargo test --features ext-tests` after restoring the dependency in
// the workspace manifest.
#![cfg(feature = "ext-tests")]

use mcds_cds::algorithms::Algorithm;
use mcds_cds::{connect, greedy_cds_rooted, prune, waf_cds_rooted};
use mcds_graph::{properties, traversal, Graph};
use mcds_mis::BfsMis;
use proptest::prelude::*;

fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 3))
            .prop_map(move |pairs| Graph::from_edges(n, pairs.into_iter().filter(|(u, v)| u != v)))
    })
}

/// Restricts to the largest component, which is connected by
/// construction.
fn giant(g: &Graph) -> Graph {
    let comp = traversal::largest_component(g);
    g.induced_subgraph(&comp).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_algorithms_valid_on_general_graphs(g0 in graph_strategy(26)) {
        let g = giant(&g0);
        prop_assume!(g.num_nodes() >= 2);
        for alg in Algorithm::ALL {
            let cds = alg.run(&g).expect("connected by construction");
            prop_assert!(cds.verify(&g).is_ok(), "{} invalid", alg);
        }
    }

    #[test]
    fn waf_connector_inequality(g0 in graph_strategy(26)) {
        // |C| ≤ |I| − |I(s)| + 1 implies |CDS| ≤ 2|I| + 1 always; the
        // stronger |CDS| ≤ 2|I| − 1 holds whenever |I(s)| ≥ 2.
        let g = giant(&g0);
        prop_assume!(g.num_nodes() >= 2);
        let cds = waf_cds_rooted(&g, 0).expect("connected");
        let i = cds.dominators().len();
        prop_assert!(cds.len() <= 2 * i + 1, "|CDS| {} > 2|I|+1 {}", cds.len(), 2 * i + 1);
    }

    #[test]
    fn greedy_gains_positive_and_terminating(g0 in graph_strategy(26)) {
        let g = giant(&g0);
        prop_assume!(g.num_nodes() >= 2);
        let mis = BfsMis::compute(&g, 0).mis().to_vec();
        let seq = connect::max_gain_connectors(&g, &mis).expect("Lemma 9");
        let trace = connect::gain_trace(&g, &mis, &seq);
        prop_assert!(trace.iter().all(|&t| t >= 1));
        let total: usize = trace.iter().sum();
        prop_assert_eq!(total + 1, mis.len().max(1));
        // Note: gains are NOT monotone across steps — a placed connector
        // becomes a member that later candidates can touch, so a later
        // step may out-gain the first.  The paper's Theorem-10 accounting
        // uses component-count thresholds, not monotonicity.
    }

    #[test]
    fn greedy_connectors_never_exceed_mis_minus_one(g0 in graph_strategy(26)) {
        // Each connector has gain ≥ 1 and the component count starts at
        // |I|, so |C| ≤ |I| − 1.
        let g = giant(&g0);
        prop_assume!(g.num_nodes() >= 2);
        let cds = greedy_cds_rooted(&g, 0).expect("connected");
        prop_assert!(cds.connectors().len() <= cds.dominators().len().saturating_sub(1));
    }

    #[test]
    fn pruning_is_idempotent(g0 in graph_strategy(22)) {
        let g = giant(&g0);
        prop_assume!(g.num_nodes() >= 2);
        let cds = greedy_cds_rooted(&g, 0).expect("connected");
        let once = prune::prune_cds(&g, cds.nodes()).expect("valid");
        let twice = prune::prune_cds(&g, &once).expect("still valid");
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn path_connectors_work_for_any_dominating_seed(g0 in graph_strategy(22), pick in proptest::collection::vec(any::<bool>(), 22)) {
        let g = giant(&g0);
        prop_assume!(g.num_nodes() >= 2);
        // Build an arbitrary dominating set: chosen bits plus greedy fill.
        let mut seed: Vec<usize> = (0..g.num_nodes()).filter(|&v| pick[v]).collect();
        let mut mask = mcds_graph::node_mask(g.num_nodes(), &seed);
        for v in 0..g.num_nodes() {
            let dominated = mask[v] || g.neighbors_iter(v).any(|u| mask[u]);
            if !dominated {
                mask[v] = true;
                seed.push(v);
            }
        }
        prop_assert!(properties::is_dominating_set(&g, &seed));
        let conn = connect::path_connectors(&g, &seed).expect("connected graph");
        let mut all = seed.clone();
        all.extend(conn);
        prop_assert!(properties::is_connected_dominating_set(&g, &all));
    }

    #[test]
    fn routing_over_cds_reaches_every_pair(g0 in graph_strategy(20)) {
        let g = giant(&g0);
        prop_assume!(g.num_nodes() >= 2);
        let cds = greedy_cds_rooted(&g, 0).expect("connected");
        let stats = mcds_cds::routing::stretch_stats(&g, cds.nodes())
            .expect("a CDS routes every pair");
        prop_assert_eq!(stats.pairs, g.num_nodes() * (g.num_nodes() - 1));
        prop_assert!(stats.mean >= 1.0 - 1e-12);
        prop_assert!(stats.max + 1e-12 >= stats.mean);
        // Full-vertex backbone has stretch exactly 1.
        let all: Vec<usize> = (0..g.num_nodes()).collect();
        let full = mcds_cds::routing::stretch_stats(&g, &all).expect("full set");
        prop_assert!((full.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn route_length_consistent_with_stretch(g0 in graph_strategy(16)) {
        let g = giant(&g0);
        prop_assume!(g.num_nodes() >= 3);
        let cds = greedy_cds_rooted(&g, 0).expect("connected");
        // Spot-check: per-pair route length is at least the true distance.
        for s in 0..g.num_nodes().min(4) {
            let true_d = mcds_graph::traversal::bfs_distances(&g, s);
            for (t, &td) in true_d.iter().enumerate() {
                if t == s { continue; }
                let r = mcds_cds::routing::backbone_route_length(&g, cds.nodes(), s, t)
                    .expect("CDS routes everything");
                prop_assert!(r >= td, "route shorter than shortest path?!");
            }
        }
    }

    #[test]
    fn max_gain_then_paths_total(g0 in graph_strategy(22), pick in proptest::collection::vec(any::<bool>(), 22)) {
        let g = giant(&g0);
        prop_assume!(g.num_nodes() >= 2);
        let mut seed: Vec<usize> = (0..g.num_nodes()).filter(|&v| pick[v]).collect();
        let mut mask = mcds_graph::node_mask(g.num_nodes(), &seed);
        for v in 0..g.num_nodes() {
            if !(mask[v] || g.neighbors_iter(v).any(|u| mask[u])) {
                mask[v] = true;
                seed.push(v);
            }
        }
        let conn = connect::max_gain_then_paths(&g, &seed).expect("connected graph");
        let mut all = seed.clone();
        all.extend(conn);
        prop_assert!(properties::is_connected_dominating_set(&g, &all));
    }
}
