//! Dependency-free seeded pseudo-randomness for the `mcds` workspace.
//!
//! Every experiment, generator and simulation in this workspace is
//! deterministic given a `u64` seed.  The external `rand` crate provided
//! that before, but it made the build depend on registry access, which
//! the reproduction environments do not always have.  This crate is a
//! small, hermetic replacement exposing the *subset* of the `rand 0.8`
//! API the workspace uses, with the same module layout, so call sites
//! only change their import path:
//!
//! ```text
//! use rand::{rngs::StdRng, Rng, SeedableRng};        // before
//! use mcds_rng::{rngs::StdRng, Rng, SeedableRng};    // after
//! ```
//!
//! The generator behind [`rngs::StdRng`] is **xoshiro256++** seeded via
//! SplitMix64 — a well-studied non-cryptographic PRNG with 256 bits of
//! state, far more than these simulations need.  Numerical streams are
//! *not* bit-compatible with `rand`'s `StdRng` (which is ChaCha-based);
//! seeds reproduce runs within a build of this workspace, not across the
//! migration.
//!
//! ```
//! use mcds_rng::{rngs::StdRng, Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();                 // uniform in [0, 1)
//! let k = rng.gen_range(0..10usize);      // uniform in {0, …, 9}
//! let t = rng.gen_range(-1.0..=1.0);      // uniform in [-1, 1]
//! assert!((0.0..1.0).contains(&x));
//! assert!(k < 10);
//! assert!((-1.0..=1.0).contains(&t));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random `u64`s plus the derived sampling helpers.
///
/// This mirrors the parts of `rand::Rng` the workspace uses.  All helpers
/// have default implementations in terms of [`Rng::next_u64`], so a
/// generator only implements that one method.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (see [`SampleRange`] for the
    /// supported range/element types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A sample from the type's standard distribution: `[0, 1)` for
    /// floats, full range for integers, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

/// Types that can be seeded from a `u64` — the only seeding mode the
/// workspace uses (mirrors `rand::SeedableRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator for logical sub-stream `stream` of `master` —
    /// seeding with [`split_seed`].  See that function for the contract.
    fn from_stream(master: u64, stream: u64) -> Self {
        Self::seed_from_u64(split_seed(master, stream))
    }
}

/// Derives an independent seed for logical sub-stream `stream` of
/// `master` — the workspace's RNG *stream splitting* primitive.
///
/// Parallel sweeps must not share one sequential generator across trials:
/// the values a trial draws would then depend on how many draws earlier
/// trials made, and any reordering (a thread pool, a skipped trial)
/// changes every later trial.  Instead, each task seeds its own generator
/// from `split_seed(master, task_index)`, making every task's randomness
/// a pure function of `(master, index)` — the foundation of the
/// determinism contract in `DESIGN.md`: results are bit-identical at any
/// thread count and under any schedule.
///
/// The derivation runs `(master, stream)` through two rounds of the
/// SplitMix64 finalizer (the same mixer [`rngs::StdRng`] seeding uses),
/// with the stream index pre-multiplied by an odd constant so that
/// consecutive indices land in unrelated parts of the seed space:
///
/// ```
/// use mcds_rng::{rngs::StdRng, split_seed, Rng, SeedableRng};
///
/// // Pure function of (master, stream):
/// assert_eq!(split_seed(42, 7), split_seed(42, 7));
/// assert_ne!(split_seed(42, 7), split_seed(42, 8));
/// assert_ne!(split_seed(42, 7), split_seed(43, 7));
///
/// // from_stream is the corresponding generator constructor:
/// let a: f64 = StdRng::from_stream(42, 7).gen();
/// let b: f64 = StdRng::from_stream(42, 7).gen();
/// assert_eq!(a, b);
/// ```
pub fn split_seed(master: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer — the reference avalanche mixer.
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let master = mix(master.wrapping_add(0x9E37_79B9_7F4A_7C15));
    let stream = mix(stream
        .wrapping_mul(0xD134_2543_DE82_EF95)
        .wrapping_add(0x9E37_79B9_7F4A_7C15));
    mix(master ^ stream.rotate_left(32))
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: **xoshiro256++**.
    ///
    /// 256 bits of state, period `2^256 − 1`, passes BigCrush; seeded via
    /// SplitMix64 so that every `u64` seed yields a well-mixed state
    /// (including seed 0).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64: the reference seeding procedure for xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Range shapes accepted by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The standard distribution of a type, mirroring `rand`'s `Standard`:
/// what `rng.gen::<T>()` produces.
pub trait Standard {
    /// Draws a sample of `Self`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// bits-to-double construction).
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform `u64` in `[0, bound)` by Lemire's multiply-shift with rejection
/// — unbiased without a modulo in the common case.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone: the low `threshold` multiples of 2^64 mod bound.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "empty range {}..{}",
            self.start,
            self.end
        );
        let u: f64 = f64::sample(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard the measure-zero case where rounding lands on `end`.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(
            self.start < self.end,
            "empty range {}..{}",
            self.start,
            self.end
        );
        self.start + bounded_u64(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + bounded_u64(rng, hi - lo + 1)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        (self.start as u64..self.end as u64).sample(rng) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        (*self.start() as u64..=*self.end() as u64).sample(rng) as usize
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn split_streams_are_distinct_and_deterministic() {
        // Distinctness across a block of (master, stream) pairs: any
        // collision here would alias two sweep trials.
        let mut seen = std::collections::HashSet::new();
        for master in 0..16u64 {
            for stream in 0..256u64 {
                assert!(
                    seen.insert(split_seed(master, stream)),
                    "collision at ({master}, {stream})"
                );
            }
        }
        // Stream 0 must differ from plain seeding (otherwise master-seeded
        // and stream-0 generators would correlate).
        let direct: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(5);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let split: Vec<u64> = {
            let mut r = StdRng::from_stream(5, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(direct, split);
    }

    #[test]
    fn split_streams_look_independent() {
        // Crude independence check: adjacent streams' outputs should not
        // correlate bitwise (popcount of XOR ≈ 32 of 64 bits on average).
        let mut total_bits = 0u32;
        let samples = 256;
        for stream in 0..samples {
            let a = StdRng::from_stream(99, stream).next_u64();
            let b = StdRng::from_stream(99, stream + 1).next_u64();
            total_bits += (a ^ b).count_ones();
        }
        let mean = f64::from(total_bits) / samples as f64;
        assert!((mean - 32.0).abs() < 3.0, "mean differing bits {mean}");
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        // SplitMix64 seeding means seed 0 must not produce the all-zero
        // state (which would be a fixed point of xoshiro).
        let mut rng = StdRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn f64_standard_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x), "{x}");
            let y = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&y), "{y}");
            let k = rng.gen_range(3..10usize);
            assert!((3..10).contains(&k), "{k}");
            let m = rng.gen_range(0..=4u64);
            assert!(m <= 4, "{m}");
        }
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(rng.gen_range(5..=5usize), 5);
        assert_eq!(rng.gen_range(1.25..=1.25), 1.25);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn small_integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // A 100-element shuffle leaving everything fixed has probability
        // 1/100!; treat it as a bug.
        assert!(v.iter().enumerate().any(|(i, &x)| i != x));
    }

    #[test]
    fn choose_covers_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_references() {
        // The workspace's generators take `&mut R where R: Rng + ?Sized`;
        // make sure the helper methods resolve in that position.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..=1.0)
        }
        let mut rng = StdRng::seed_from_u64(11);
        let x = draw(&mut rng);
        assert!((0.0..=1.0).contains(&x));
    }
}
