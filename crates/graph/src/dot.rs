//! Graphviz DOT export.
//!
//! Handy for eyeballing small instances: dominators, connectors and plain
//! nodes are colored differently so the two-phased structure is visible.

use crate::{node_mask, Graph};
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotStyle {
    /// Nodes drawn as filled "dominator" (phase-1) nodes.
    pub dominators: Vec<usize>,
    /// Nodes drawn as filled "connector" (phase-2) nodes.
    pub connectors: Vec<usize>,
    /// Optional `pos` attributes (x, y) per node, e.g. UDG coordinates.
    pub positions: Vec<(f64, f64)>,
}

/// Renders the graph in Graphviz DOT format.
///
/// ```
/// use mcds_graph::{Graph, dot::{to_dot, DotStyle}};
/// let g = Graph::path(3);
/// let dot = to_dot(&g, "demo", &DotStyle::default());
/// assert!(dot.starts_with("graph demo {"));
/// assert!(dot.contains("0 -- 1"));
/// ```
pub fn to_dot(g: &Graph, name: &str, style: &DotStyle) -> String {
    let n = g.num_nodes();
    let dom = if style.dominators.is_empty() {
        vec![false; n]
    } else {
        node_mask(n, &style.dominators)
    };
    let con = if style.connectors.is_empty() {
        vec![false; n]
    } else {
        node_mask(n, &style.connectors)
    };
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for v in 0..n {
        let mut attrs: Vec<String> = Vec::new();
        if dom[v] {
            attrs.push("style=filled fillcolor=black fontcolor=white".into());
        } else if con[v] {
            attrs.push("style=filled fillcolor=gray70".into());
        }
        if let Some(&(x, y)) = style.positions.get(v) {
            attrs.push(format!("pos=\"{x:.4},{y:.4}!\""));
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  {v};");
        } else {
            let _ = writeln!(out, "  {v} [{}];", attrs.join(" "));
        }
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_export_lists_all_nodes_and_edges() {
        let g = Graph::cycle(4);
        let dot = to_dot(&g, "c4", &DotStyle::default());
        for v in 0..4 {
            assert!(dot.contains(&format!("  {v};")));
        }
        assert_eq!(dot.matches(" -- ").count(), 4);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn styled_export_marks_roles() {
        let g = Graph::path(3);
        let style = DotStyle {
            dominators: vec![0],
            connectors: vec![1],
            positions: vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
        };
        let dot = to_dot(&g, "p3", &style);
        assert!(dot.contains("fillcolor=black"));
        assert!(dot.contains("fillcolor=gray70"));
        assert!(dot.contains("pos=\"1.0000,0.0000!\""));
    }
}
