//! Word-parallel bitset kernels — packed `u64` node sets and adjacency
//! rows for the hot inner loops of phase 2 and the prune post-pass.
//!
//! The paper's greedy connector phase and the pruning post-pass both
//! reduce to repeated set queries over node subsets: "which neighbors of
//! `w` are in the current set?", "is every vertex covered?", "does
//! removing `v` disconnect `G[S]`?".  This module provides the packed
//! representations those queries vectorize over:
//!
//! * [`BitSet`] — a fixed-capacity node set, one bit per node, with
//!   word-parallel union ([`BitSet::or_assign`]), intersection popcount
//!   ([`BitSet::and_count`]) and first-gap search
//!   ([`BitSet::first_unset`]),
//! * [`BitRows`] — packed adjacency rows (`n × ⌈n/64⌉` words) built once
//!   from any [`RandomAccessGraph`] backend, so a neighborhood is a word
//!   slice that ORs/ANDs against a [`BitSet`] without pointer chasing,
//! * [`masked_articulation_points`] — iterative Tarjan restricted to a
//!   [`BitSet`] mask with reusable scratch, the connectivity side of the
//!   incremental prune kernel (no induced subgraph is materialized).
//!
//! Trailing bits past the logical capacity are kept zero at all times;
//! every word-parallel routine relies on that invariant.

use crate::RandomAccessGraph;

const WORD_BITS: usize = 64;

/// A fixed-capacity set of node ids packed one bit per node into `u64`
/// words.
///
/// ```
/// use mcds_graph::bitgraph::BitSet;
/// let mut s = BitSet::from_nodes(130, &[0, 63, 64, 129]);
/// assert_eq!(s.count_ones(), 4);
/// assert!(s.contains(64));
/// s.remove(64);
/// assert_eq!(s.to_nodes(), vec![0, 63, 129]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    nbits: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for node ids `0..nbits`.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            nbits,
            words: vec![0; nbits.div_ceil(WORD_BITS)],
        }
    }

    /// Builds a set from a node list.
    ///
    /// # Panics
    ///
    /// Panics if any node index is `≥ nbits` (mirrors
    /// [`crate::node_mask`]).
    pub fn from_nodes(nbits: usize, nodes: &[usize]) -> Self {
        let mut s = BitSet::new(nbits);
        for &v in nodes {
            assert!(
                v < nbits,
                "node index {v} out of range for bitset of {nbits} bits"
            );
            s.insert(v);
        }
        s
    }

    /// Capacity in bits (the exclusive upper bound on stored ids).
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Number of set bits (word-parallel popcount).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Membership test.  Indices `≥ capacity` are reported absent.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / WORD_BITS)
            .is_some_and(|w| w >> (i % WORD_BITS) & 1 == 1)
    }

    /// Inserts `i`; returns `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.nbits, "bit {i} out of range ({} bits)", self.nbits);
        let (w, b) = (i / WORD_BITS, 1u64 << (i % WORD_BITS));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Removes `i`; returns `true` if it was set.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ capacity`.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.nbits, "bit {i} out of range ({} bits)", self.nbits);
        let (w, b) = (i / WORD_BITS, 1u64 << (i % WORD_BITS));
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        was
    }

    /// Clears every bit (capacity is unchanged).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Word-parallel union: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn or_assign(&mut self, other: &BitSet) {
        assert_eq!(self.nbits, other.nbits, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Word-parallel intersection popcount: `|self ∩ other|`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn and_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.nbits, other.nbits, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Smallest id `< capacity` that is *not* in the set, scanning a word
    /// (64 candidates) at a time — the early-exit "first uncovered
    /// vertex" query of the domination check.
    pub fn first_unset(&self) -> Option<usize> {
        for (k, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let i = k * WORD_BITS + (!w).trailing_zeros() as usize;
                // The gap may be in the zero padding past `nbits`.
                return (i < self.nbits).then_some(i);
            }
        }
        None
    }

    /// Iterates set bits in ascending order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The set as a sorted `Vec<usize>` (the workspace node-set shape).
    pub fn to_nodes(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// The raw word storage (trailing padding bits are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Ascending iterator over the set bits of a [`BitSet`].
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// Decodes the set bits of a word slice in ascending order.
fn for_each_word_one<F: FnMut(usize)>(words: &[u64], mut f: F) {
    for (k, &w) in words.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let tz = w.trailing_zeros() as usize;
            w &= w - 1;
            f(k * WORD_BITS + tz);
        }
    }
}

/// Packed `u64` adjacency rows: row `v` is the neighborhood `N(v)` as a
/// `⌈n/64⌉`-word bit vector.
///
/// Built once from any [`RandomAccessGraph`] backend; neighborhood
/// queries against a [`BitSet`] then run word-parallel.  Storage is
/// `n · ⌈n/64⌉ · 8` bytes (see [`BitRows::bytes_for`]), so rows are only
/// materialized below a size threshold — the kernel layers above pick
/// row-free variants of the same algorithms past it.
///
/// ```
/// use mcds_graph::{bitgraph::BitRows, Graph};
/// let g = Graph::path(5);
/// let rows = BitRows::build(&g);
/// assert_eq!(rows.edges(), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
/// ```
#[derive(Debug, Clone)]
pub struct BitRows {
    n: usize,
    wpr: usize,
    words: Vec<u64>,
}

impl BitRows {
    /// Packs every adjacency row of `g`.
    pub fn build<G: RandomAccessGraph>(g: &G) -> Self {
        let n = g.num_nodes();
        let wpr = n.div_ceil(WORD_BITS);
        let mut words = vec![0u64; n * wpr];
        for v in 0..n {
            let base = v * wpr;
            for u in g.successors(v) {
                words[base + u / WORD_BITS] |= 1 << (u % WORD_BITS);
            }
        }
        BitRows { n, wpr, words }
    }

    /// Number of nodes (rows).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Words per row (`⌈n/64⌉`).
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// Storage cost of packed rows for an `n`-node graph, in bytes.
    pub fn bytes_for(n: usize) -> usize {
        n * n.div_ceil(WORD_BITS) * std::mem::size_of::<u64>()
    }

    /// The packed row `N(v)`.
    pub fn row(&self, v: usize) -> &[u64] {
        &self.words[v * self.wpr..(v + 1) * self.wpr]
    }

    /// Word-parallel row OR: `out |= N(v)` — one step of building a
    /// coverage mask from closed neighborhoods.
    ///
    /// # Panics
    ///
    /// Panics if `out` was not sized for this graph.
    pub fn or_row_into(&self, v: usize, out: &mut BitSet) {
        assert_eq!(out.nbits, self.n, "bitset capacity mismatch");
        for (a, b) in out.words.iter_mut().zip(self.row(v)) {
            *a |= b;
        }
    }

    /// Word-parallel masked degree: `|N(v) ∩ mask|`.
    ///
    /// # Panics
    ///
    /// Panics if `mask` was not sized for this graph.
    pub fn row_and_count(&self, v: usize, mask: &BitSet) -> usize {
        assert_eq!(mask.nbits, self.n, "bitset capacity mismatch");
        self.row(v)
            .iter()
            .zip(&mask.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Visits the neighbors of `v` in ascending order (the same order a
    /// backend's sorted successor iterator yields).
    pub fn for_each_one<F: FnMut(usize)>(&self, v: usize, f: F) {
        for_each_word_one(self.row(v), f);
    }

    /// Visits `N(v) ∩ mask` in ascending order via a word-parallel AND.
    ///
    /// # Panics
    ///
    /// Panics if `mask` was not sized for this graph.
    pub fn for_each_and<F: FnMut(usize)>(&self, v: usize, mask: &BitSet, mut f: F) {
        assert_eq!(mask.nbits, self.n, "bitset capacity mismatch");
        for (k, (a, b)) in self.row(v).iter().zip(&mask.words).enumerate() {
            let mut w = a & b;
            while w != 0 {
                let tz = w.trailing_zeros() as usize;
                w &= w - 1;
                f(k * WORD_BITS + tz);
            }
        }
    }

    /// Decodes the rows back to a sorted `(u, v)` edge list with `u < v`
    /// — the round-trip counterpart of [`BitRows::build`], used by the
    /// equivalence tests.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for v in 0..self.n {
            for_each_word_one(self.row(v), |u| {
                if v < u {
                    out.push((v, u));
                }
            });
        }
        out
    }
}

/// Reusable `disc`/`low` buffers for [`masked_articulation_points`].
///
/// The incremental prune kernel recomputes articulation points after
/// every accepted removal; the scratch avoids an `O(n)` allocation per
/// call (only the mask's members are reset between calls).
#[derive(Debug, Default)]
pub struct ArticulationScratch {
    disc: Vec<usize>,
    low: Vec<usize>,
}

impl ArticulationScratch {
    /// Empty scratch; buffers grow lazily to the graph size on first use.
    pub fn new() -> Self {
        ArticulationScratch::default()
    }
}

/// Articulation points of the induced subgraph `G[mask]`, without
/// materializing it.
///
/// Iterative Tarjan lowlink over `g` restricted to `mask`: non-member
/// successors are skipped in place, so the cost is `O(Σ_{v∈mask} deg v)`
/// per call and no induced CSR is built.  Results land in `cut` (resized
/// and cleared as needed); `scratch` carries the timestamp buffers
/// across calls.  Node ids are in `g`'s numbering, exactly the set
/// `crate::traversal::articulation_points` would report on the
/// materialized induced subgraph mapped back through its node map.
///
/// # Panics
///
/// Panics if `mask` was not sized for `g`.
pub fn masked_articulation_points<G: RandomAccessGraph>(
    g: &G,
    mask: &BitSet,
    scratch: &mut ArticulationScratch,
    cut: &mut BitSet,
) {
    let n = g.num_nodes();
    assert_eq!(mask.capacity(), n, "mask capacity mismatch");
    if scratch.disc.len() < n {
        scratch.disc.resize(n, usize::MAX);
        scratch.low.resize(n, usize::MAX);
    }
    // Only member entries are ever read, so resetting members suffices no
    // matter what a previous call (with a different mask) left behind.
    for v in mask.iter_ones() {
        scratch.disc[v] = usize::MAX;
    }
    if cut.capacity() != n {
        *cut = BitSet::new(n);
    } else {
        cut.clear();
    }
    let disc = &mut scratch.disc;
    let low = &mut scratch.low;
    let mut timer = 0usize;
    for root in mask.iter_ones() {
        if disc[root] != usize::MAX {
            continue;
        }
        // Same frame layout as `traversal::articulation_points`: node,
        // parent, live successor iterator (resumable across pushes).
        let mut stack: Vec<(usize, usize, G::Successors<'_>)> =
            vec![(root, usize::MAX, g.successors(root))];
        let mut root_children = 0usize;
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(top) = stack.last_mut() {
            let (v, parent) = (top.0, top.1);
            if let Some(u) = top.2.next() {
                if !mask.contains(u) {
                    continue;
                }
                if disc[u] == usize::MAX {
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((u, v, g.successors(u)));
                } else if u != parent {
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                stack.pop();
                if let Some(prev) = stack.last_mut() {
                    let p = prev.0;
                    low[p] = low[p].min(low[v]);
                    if p != root && low[v] >= disc[p] {
                        cut.insert(p);
                    }
                }
            }
        }
        if root_children >= 2 {
            cut.insert(root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{subsets, traversal, Graph};

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = BitSet::new(100);
        assert!(s.insert(63));
        assert!(!s.insert(63));
        assert!(s.insert(64));
        assert!(s.contains(63) && s.contains(64) && !s.contains(65));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.to_nodes(), vec![64]);
        assert!(!s.contains(1000)); // past capacity: absent, not a panic
    }

    #[test]
    fn first_unset_respects_padding() {
        // All 65 bits set: the only gaps are padding, which must not leak.
        let all: Vec<usize> = (0..65).collect();
        let s = BitSet::from_nodes(65, &all);
        assert_eq!(s.first_unset(), None);
        let mut s = s;
        s.remove(64);
        assert_eq!(s.first_unset(), Some(64));
        s.remove(0);
        assert_eq!(s.first_unset(), Some(0));
    }

    #[test]
    fn word_parallel_ops_match_naive() {
        let a = BitSet::from_nodes(130, &[0, 1, 63, 64, 65, 128]);
        let b = BitSet::from_nodes(130, &[1, 64, 127, 129]);
        assert_eq!(a.and_count(&b), 2);
        let mut u = a.clone();
        u.or_assign(&b);
        assert_eq!(u.to_nodes(), vec![0, 1, 63, 64, 65, 127, 128, 129]);
        assert_eq!(u.count_ones(), 8);
    }

    #[test]
    fn rows_roundtrip_and_masked_queries() {
        let g = Graph::from_edges(70, [(0, 69), (0, 1), (63, 64), (2, 65)]);
        let rows = BitRows::build(&g);
        assert_eq!(rows.edges(), vec![(0, 1), (0, 69), (2, 65), (63, 64)]);
        let mask = BitSet::from_nodes(70, &[1, 64, 69]);
        assert_eq!(rows.row_and_count(0, &mask), 2);
        let mut seen = Vec::new();
        rows.for_each_and(0, &mask, |u| seen.push(u));
        assert_eq!(seen, vec![1, 69]);
        let mut cov = BitSet::new(70);
        rows.or_row_into(63, &mut cov);
        assert_eq!(cov.to_nodes(), vec![64]);
    }

    #[test]
    fn masked_articulation_matches_full_tarjan_on_full_mask() {
        for g in [
            Graph::path(9),
            Graph::cycle(8),
            Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (4, 6)]),
        ] {
            let full = BitSet::from_nodes(g.num_nodes(), &(0..g.num_nodes()).collect::<Vec<_>>());
            let mut scratch = ArticulationScratch::new();
            let mut cut = BitSet::new(g.num_nodes());
            masked_articulation_points(&g, &full, &mut scratch, &mut cut);
            assert_eq!(cut.to_nodes(), traversal::articulation_points(&g));
        }
    }

    #[test]
    fn masked_articulation_matches_induced_subgraph_and_scratch_reuses() {
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 4),
            ],
        );
        let mut scratch = ArticulationScratch::new();
        let mut cut = BitSet::new(g.num_nodes());
        // Two different masks through the same scratch: stale timestamps
        // from the first run must not poison the second.
        for members in [vec![0, 1, 2, 3, 4, 5], vec![3, 4, 5, 6, 7, 8, 9]] {
            let mask = BitSet::from_nodes(g.num_nodes(), &members);
            masked_articulation_points(&g, &mask, &mut scratch, &mut cut);
            let (sub, map) = subsets::induced_subgraph(&g, &members);
            let expect: Vec<usize> = traversal::articulation_points(&sub)
                .into_iter()
                .map(|v| map[v])
                .collect();
            assert_eq!(cut.to_nodes(), expect);
        }
    }
}
