//! The immutable CSR graph — the reference [`RandomAccessGraph`] backend.

use std::fmt;

use crate::{RandomAccessGraph, SequentialGraph};

/// Builds normalized adjacency lists from an edge iterator: validates
/// range and self-loops, sorts each list, merges duplicates.
///
/// This is the single normalization path shared by [`Graph::from_edges`]
/// and both `GraphBuilder` backends (`build`/`build_compact`), so the two
/// representations can never disagree on what the canonical graph is.
pub(crate) fn adjacency_from_edges<I>(n: usize, edges: I) -> Vec<Vec<u32>>
where
    I: IntoIterator<Item = (usize, usize)>,
{
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in edges {
        assert!(u < n && v < n, "edge ({u}, {v}) out of range for n = {n}");
        assert_ne!(u, v, "self-loop at node {u} is not allowed");
        adj[u].push(v as u32);
        adj[v].push(u as u32);
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// An immutable, undirected, simple graph in compressed-sparse-row form.
///
/// Nodes are `0..n`.  Neighbor lists are sorted, enabling `O(log d)`
/// adjacency tests and deterministic iteration order (important for the
/// paper's *first-fit* selections, which break ties by node id).
///
/// Construction normalizes input edges: self-loops are rejected, duplicate
/// and reversed duplicates are merged.
///
/// ```
/// use mcds_graph::Graph;
/// let g = Graph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    num_edges: usize,
}

impl Graph {
    /// Builds a graph with `n` nodes from an iterator of undirected edges.
    ///
    /// Edges may appear in any order and orientation; duplicates are
    /// merged.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `≥ n` or an edge is a self-loop.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let adj = adjacency_from_edges(n, edges);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        for list in &adj {
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        Graph::from_sorted_adjacency(offsets, targets)
    }

    /// Assembles a graph from already-normalized CSR parts (sorted,
    /// deduplicated, symmetric, self-loop-free).  Used by the compact
    /// backend's [`crate::CompactGraph::to_graph`]; the invariants are
    /// asserted in debug builds.
    pub(crate) fn from_sorted_adjacency(offsets: Vec<usize>, targets: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!({
            let n = offsets.len() - 1;
            (0..n).all(|v| {
                let list = &targets[offsets[v]..offsets[v + 1]];
                list.windows(2).all(|w| w[0] < w[1])
                    && list.iter().all(|&u| (u as usize) < n && u as usize != v)
            })
        });
        debug_assert_eq!(targets.len() % 2, 0);
        let num_edges = targets.len() / 2;
        Graph {
            offsets,
            targets,
            num_edges,
        }
    }

    /// The empty graph on `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph::from_edges(n, std::iter::empty())
    }

    /// The complete graph on `n` nodes.
    pub fn complete(n: usize) -> Self {
        let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v)));
        Graph::from_edges(n, edges)
    }

    /// The path graph `0 - 1 - … - (n-1)`.
    pub fn path(n: usize) -> Self {
        Graph::from_edges(n, (1..n).map(|v| (v - 1, v)))
    }

    /// The cycle graph on `n ≥ 3` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (smaller cycles are not simple graphs).
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "a simple cycle needs at least 3 nodes, got {n}");
        Graph::from_edges(n, (0..n).map(|v| (v, (v + 1) % n)))
    }

    /// The star graph: node 0 adjacent to every other node.
    pub fn star(n: usize) -> Self {
        Graph::from_edges(n, (1..n).map(|v| (0, v)))
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterator over the neighbors of `v` as `usize`.
    #[inline]
    pub fn neighbors_iter(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.neighbors(v).iter().map(|&u| u as usize)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Adjacency test in `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Bytes the adjacency arrays occupy (`4` per arc: the `u32` CSR
    /// target list).  Mirrors [`crate::CompactGraph::adjacency_bytes`]
    /// so backend footprints compare like for like (experiment E23).
    pub fn adjacency_bytes(&self) -> usize {
        self.targets.len() * std::mem::size_of::<u32>()
    }

    /// Bytes the per-node offset array occupies (`usize` per node + 1).
    /// Mirrors [`crate::CompactGraph::offset_bytes`].
    pub fn offset_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            self.neighbors_iter(u)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree (`2m / n`), or 0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_nodes() as f64
        }
    }

    /// Returns `true` if the graph is connected.
    ///
    /// The empty graph and singletons are connected by convention.
    pub fn is_connected(&self) -> bool {
        crate::traversal::connected_components(self).len() <= 1
    }

    /// The subgraph induced by `keep`, together with the mapping from new
    /// node indices to original ones.
    ///
    /// `keep` need not be sorted; duplicates are ignored.  The returned
    /// `Vec<usize>` maps new index `i` to the original node id.
    pub fn induced_subgraph(&self, keep: &[usize]) -> (Graph, Vec<usize>) {
        crate::subsets::induced_subgraph(self, keep)
    }
}

impl SequentialGraph for Graph {
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        Graph::num_edges(self)
    }

    fn for_each_adjacency<F: FnMut(usize, &[u32])>(&self, mut f: F) {
        for v in 0..Graph::num_nodes(self) {
            f(v, self.neighbors(v));
        }
    }
}

impl RandomAccessGraph for Graph {
    type Successors<'a> = SliceSuccessors<'a>;

    fn successors(&self, v: usize) -> SliceSuccessors<'_> {
        SliceSuccessors {
            inner: self.neighbors(v).iter(),
        }
    }

    fn degree(&self, v: usize) -> usize {
        Graph::degree(self, v)
    }

    fn has_edge(&self, u: usize, v: usize) -> bool {
        Graph::has_edge(self, u, v)
    }

    fn is_connected(&self) -> bool {
        Graph::is_connected(self)
    }
}

/// Sorted successor iterator over a CSR neighbor slice.
#[derive(Debug, Clone)]
pub struct SliceSuccessors<'a> {
    inner: std::slice::Iter<'a, u32>,
}

impl Iterator for SliceSuccessors<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        self.inner.next().map(|&u| u as usize)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for SliceSuccessors<'_> {}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, max_deg={})",
            self.num_nodes(),
            self.num_edges(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_merges_duplicates_and_orientations() {
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (0, 1), (2, 3)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = Graph::from_edges(2, [(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let _ = Graph::from_edges(2, [(0, 2)]);
    }

    #[test]
    fn named_families() {
        assert_eq!(Graph::empty(5).num_edges(), 0);
        assert_eq!(Graph::complete(5).num_edges(), 10);
        assert_eq!(Graph::path(5).num_edges(), 4);
        assert_eq!(Graph::cycle(5).num_edges(), 5);
        assert_eq!(Graph::star(5).num_edges(), 4);
        assert_eq!(Graph::star(5).degree(0), 4);
        assert_eq!(Graph::complete(0).num_nodes(), 0);
        assert_eq!(Graph::path(1).num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        let _ = Graph::cycle(2);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = Graph::cycle(4);
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
        assert_eq!(e.len(), g.num_edges());
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::star(5);
        assert_eq!(g.max_degree(), 4);
        assert!((g.avg_degree() - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(Graph::empty(0).max_degree(), 0);
        assert_eq!(Graph::empty(0).avg_degree(), 0.0);
    }

    #[test]
    fn connectivity() {
        assert!(Graph::path(5).is_connected());
        assert!(!Graph::from_edges(4, [(0, 1), (2, 3)]).is_connected());
        assert!(Graph::empty(1).is_connected());
        assert!(Graph::empty(0).is_connected());
        assert!(!Graph::empty(2).is_connected());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::cycle(5);
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(map, vec![0, 1, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 1); // only (0,1) survives
        assert!(sub.has_edge(0, 1));
        let (sub2, _) = g.induced_subgraph(&[]);
        assert_eq!(sub2.num_nodes(), 0);
    }

    #[test]
    fn debug_is_informative() {
        let s = format!("{:?}", Graph::path(3));
        assert!(s.contains("n=3"));
        assert!(s.contains("m=2"));
    }
}
