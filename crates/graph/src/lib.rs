//! Graph substrate for the `mcds` workspace.
//!
//! Every algorithm in the reproduction of *"Two-Phased Approximation
//! Algorithms for Minimum CDS in Wireless Ad Hoc Networks"* (Wan, Wang &
//! Yao, ICDCS 2008) operates on an undirected communication topology
//! `G = (V, E)`.  This crate provides that topology as a compact immutable
//! CSR structure plus the generic machinery the algorithm crates share:
//!
//! * [`SequentialGraph`] / [`RandomAccessGraph`] — the trait split every
//!   algorithm is generic over: streamed `(node, sorted-successors)`
//!   iteration, and per-node `successors`/`degree`/`has_edge` queries,
//! * [`Graph`] — immutable undirected graph in compressed-sparse-row form
//!   (the reference backend), with a [`GraphBuilder`] for incremental
//!   construction of either backend,
//! * [`CompactGraph`] — the gap-compressed adjacency backend ([`codec`]
//!   varint/zig-zag byte codes with per-node offsets), convertible
//!   from/to CSR and encodable in one streaming pass,
//! * [`traversal`] — BFS/DFS, [`traversal::BfsTree`] (the rooted spanning
//!   tree `T` of the paper's Section III), connected components,
//!   distances and diameters,
//! * [`DisjointSets`] — union–find, the engine behind the Section-IV greedy
//!   connector's component counting,
//! * [`subsets`] — induced-subgraph queries on node subsets: component
//!   counts of `G[I ∪ U]`, connectivity of a subset, neighborhoods,
//! * [`bitgraph`] — packed `u64` bitset node sets and adjacency rows with
//!   word-parallel popcount/intersect/union kernels, plus masked Tarjan
//!   articulation points (the hot-path substrate of phase 2 and prune),
//! * [`properties`] — the domination/independence predicates that define
//!   the paper's objects (dominating set, CDS, MIS),
//! * [`dot`] — Graphviz export for debugging and figures.
//!
//! Node identifiers are plain `usize` indices in `0..n`; algorithms that
//! need node *ranks* (BFS level, id) carry them separately.
//!
//! # Example
//!
//! ```
//! use mcds_graph::{Graph, properties};
//!
//! // A path 0 - 1 - 2 - 3.
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
//! assert!(g.is_connected());
//! assert!(properties::is_dominating_set(&g, &[1, 2]));
//! assert!(properties::is_connected_dominating_set(&g, &[1, 2]));
//! assert!(!properties::is_dominating_set(&g, &[0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod compact;
mod dsu;
mod graph;
mod traits;

pub mod bitgraph;
pub mod codec;
pub mod dot;
pub mod properties;
pub mod subsets;
pub mod traversal;

pub use builder::GraphBuilder;
pub use compact::{CompactGraph, CompactGraphBuilder, CompactSuccessors};
pub use dsu::DisjointSets;
pub use graph::{Graph, SliceSuccessors};
pub use properties::CdsViolation;
pub use traits::{RandomAccessGraph, SequentialGraph};

/// A set of nodes represented as a sorted, deduplicated `Vec<usize>`.
///
/// Most algorithm outputs (MIS, connector sets, CDSs) use this shape; the
/// helper normalizes arbitrary index iterators into it.
///
/// ```
/// let s = mcds_graph::node_set([3, 1, 3, 2]);
/// assert_eq!(s, vec![1, 2, 3]);
/// ```
pub fn node_set<I: IntoIterator<Item = usize>>(nodes: I) -> Vec<usize> {
    let mut v: Vec<usize> = nodes.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Converts a node set to a boolean membership mask over `0..n`.
///
/// # Panics
///
/// Panics if any node index is `≥ n`.
pub fn node_mask(n: usize, nodes: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &v in nodes {
        assert!(v < n, "node index {v} out of range for graph of {n} nodes");
        mask[v] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_set_normalizes() {
        assert_eq!(node_set([5, 1, 1, 0]), vec![0, 1, 5]);
        assert_eq!(node_set(std::iter::empty()), Vec::<usize>::new());
    }

    #[test]
    fn node_mask_roundtrip() {
        let mask = node_mask(5, &[0, 3]);
        assert_eq!(mask, vec![true, false, false, true, false]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_mask_rejects_out_of_range() {
        let _ = node_mask(3, &[3]);
    }
}
