//! Induced-subgraph queries on node subsets.
//!
//! Section IV of the paper reasons about `q(U)` — the number of connected
//! components of `G[I ∪ U]` — and about which components a candidate
//! connector is adjacent to.  These queries are provided here over a
//! membership mask, without materializing the induced subgraph.

use crate::{DisjointSets, Graph, RandomAccessGraph};

/// Number of connected components of the subgraph induced by the nodes
/// with `mask[v] == true`.
///
/// This is the paper's `q(·)` (with the subset being `I ∪ U`).  Runs one
/// DSU pass over the edges incident to the subset: `O(Σ_{v∈S} deg(v) α)`.
///
/// ```
/// use mcds_graph::{Graph, subsets::count_components};
/// let g = Graph::path(5);
/// let mask = vec![true, false, true, true, false];
/// assert_eq!(count_components(&g, &mask), 2); // {0} and {2,3}
/// ```
pub fn count_components<G: RandomAccessGraph>(g: &G, mask: &[bool]) -> usize {
    assert_eq!(
        mask.len(),
        g.num_nodes(),
        "mask length must equal node count"
    );
    let mut dsu = DisjointSets::new(g.num_nodes());
    let mut members = 0usize;
    let mut merges = 0usize;
    for v in 0..g.num_nodes() {
        if !mask[v] {
            continue;
        }
        members += 1;
        for u in g.successors(v) {
            if u < v && mask[u] && dsu.union(u, v) {
                merges += 1;
            }
        }
    }
    members - merges
}

/// Returns `true` if the subset given by `mask` induces a connected
/// subgraph.  The empty subset and singletons are connected by convention.
pub fn is_connected_subset<G: RandomAccessGraph>(g: &G, mask: &[bool]) -> bool {
    count_components(g, mask) <= 1
}

/// The distinct components of `G[mask]` adjacent to node `w`, identified
/// by DSU representative, given a `dsu` that already reflects `G[mask]`.
///
/// Used by the greedy connector: the *gain* of `w` is
/// `(number of adjacent components) − 1`.
pub fn adjacent_components<G: RandomAccessGraph>(
    g: &G,
    mask: &[bool],
    dsu: &mut DisjointSets,
    w: usize,
) -> Vec<usize> {
    let mut roots: Vec<usize> = g
        .successors(w)
        .filter(|&u| mask[u])
        .map(|u| dsu.find(u))
        .collect();
    roots.sort_unstable();
    roots.dedup();
    roots
}

/// Builds a [`DisjointSets`] whose sets are exactly the components of
/// `G[mask]` (non-members stay singletons).
pub fn components_dsu<G: RandomAccessGraph>(g: &G, mask: &[bool]) -> DisjointSets {
    assert_eq!(
        mask.len(),
        g.num_nodes(),
        "mask length must equal node count"
    );
    let mut dsu = DisjointSets::new(g.num_nodes());
    for v in 0..g.num_nodes() {
        if !mask[v] {
            continue;
        }
        for u in g.successors(v) {
            if u < v && mask[u] {
                dsu.union(u, v);
            }
        }
    }
    dsu
}

/// The open neighborhood of a subset: nodes outside `set` adjacent to at
/// least one member.  Returned sorted.
pub fn open_neighborhood<G: RandomAccessGraph>(g: &G, set: &[usize]) -> Vec<usize> {
    let mask = crate::node_mask(g.num_nodes(), set);
    let mut out: Vec<usize> = Vec::new();
    for &v in set {
        for u in g.successors(v) {
            if !mask[u] {
                out.push(u);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The closed neighborhood of a single node: `{v} ∪ N(v)`, sorted.
pub fn closed_neighborhood<G: RandomAccessGraph>(g: &G, v: usize) -> Vec<usize> {
    let mut out: Vec<usize> = g.successors(v).collect();
    out.push(v);
    out.sort_unstable();
    out
}

/// The subgraph induced by `keep` (materialized as a CSR [`Graph`]
/// regardless of the backend), together with the mapping from new node
/// indices to original ones.
///
/// `keep` need not be sorted; duplicates are ignored.  The returned
/// `Vec<usize>` maps new index `i` to the original node id.  This is the
/// generic engine behind [`Graph::induced_subgraph`].
///
/// # Panics
///
/// Panics if a member of `keep` is out of range.
pub fn induced_subgraph<G: RandomAccessGraph>(g: &G, keep: &[usize]) -> (Graph, Vec<usize>) {
    let keep = crate::node_set(keep.iter().copied());
    let n = g.num_nodes();
    let mut new_id = vec![usize::MAX; n];
    for (i, &v) in keep.iter().enumerate() {
        assert!(v < n, "node {v} out of range");
        new_id[v] = i;
    }
    let mut edges = Vec::new();
    for &v in &keep {
        for u in g.successors(v) {
            if u < v && new_id[u] != usize::MAX {
                edges.push((new_id[u], new_id[v]));
            }
        }
    }
    (Graph::from_edges(keep.len(), edges), keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_counts_on_path() {
        let g = Graph::path(6);
        assert_eq!(count_components(&g, &[false; 6]), 0);
        assert_eq!(count_components(&g, &[true; 6]), 1);
        let alt = [true, false, true, false, true, false];
        assert_eq!(count_components(&g, &alt), 3);
    }

    #[test]
    fn connected_subset_conventions() {
        let g = Graph::path(4);
        assert!(is_connected_subset(&g, &[false; 4]));
        let single = crate::node_mask(4, &[2]);
        assert!(is_connected_subset(&g, &single));
        let split = crate::node_mask(4, &[0, 3]);
        assert!(!is_connected_subset(&g, &split));
        let joined = crate::node_mask(4, &[0, 1, 2, 3]);
        assert!(is_connected_subset(&g, &joined));
    }

    #[test]
    fn adjacent_components_counts_distinct() {
        // Star: center 0, leaves 1..=4; subset = leaves -> 4 components,
        // center adjacent to all 4.
        let g = Graph::star(5);
        let mask = crate::node_mask(5, &[1, 2, 3, 4]);
        let mut dsu = components_dsu(&g, &mask);
        let comps = adjacent_components(&g, &mask, &mut dsu, 0);
        assert_eq!(comps.len(), 4);
        // A leaf has no neighbors in the subset other than... none (its
        // only neighbor is the center, not in subset).
        let comps1 = adjacent_components(&g, &mask, &mut dsu, 0);
        assert_eq!(comps1.len(), 4);
    }

    #[test]
    fn components_dsu_matches_count() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6), (2, 3)]);
        let mask = crate::node_mask(7, &[0, 1, 3, 4, 6]);
        let mut dsu = components_dsu(&g, &mask);
        // Components among {0,1,3,4,6}: {0,1}, {3,4}, {6}.
        assert_eq!(count_components(&g, &mask), 3);
        assert!(dsu.same_set(0, 1));
        assert!(dsu.same_set(3, 4));
        assert!(!dsu.same_set(1, 3));
    }

    #[test]
    fn neighborhoods() {
        let g = Graph::path(5);
        assert_eq!(open_neighborhood(&g, &[2]), vec![1, 3]);
        assert_eq!(open_neighborhood(&g, &[1, 2]), vec![0, 3]);
        assert_eq!(open_neighborhood(&g, &[]), Vec::<usize>::new());
        assert_eq!(closed_neighborhood(&g, 0), vec![0, 1]);
        assert_eq!(closed_neighborhood(&g, 2), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn mask_length_checked() {
        let g = Graph::path(3);
        let _ = count_components(&g, &[true]);
    }
}
