//! Union–find (disjoint-set union).

/// A union–find structure with path halving and union by size.
///
/// The Section-IV greedy connector algorithm repeatedly asks "how many
/// connected components does `G[I ∪ C]` have, and which of them touch a
/// candidate node `w`?" — `DisjointSets` answers both in near-constant
/// amortized time.
///
/// ```
/// use mcds_graph::DisjointSets;
/// let mut dsu = DisjointSets::new(4);
/// dsu.union(0, 1);
/// dsu.union(2, 3);
/// assert_eq!(dsu.num_sets(), 2);
/// assert!(dsu.same_set(0, 1));
/// assert!(!dsu.same_set(1, 2));
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of the set containing `x` (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if a merge happened (they were in different sets).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.num_sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_merges() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.num_sets(), 5);
        assert_eq!(d.len(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2)); // already merged
        assert_eq!(d.num_sets(), 3);
        assert_eq!(d.set_size(2), 3);
        assert_eq!(d.set_size(3), 1);
    }

    #[test]
    fn transitivity_of_same_set() {
        let mut d = DisjointSets::new(6);
        d.union(0, 1);
        d.union(2, 3);
        d.union(1, 3);
        for a in 0..4 {
            for b in 0..4 {
                assert!(d.same_set(a, b));
            }
        }
        assert!(!d.same_set(0, 4));
    }

    #[test]
    fn empty_structure() {
        let d = DisjointSets::new(0);
        assert!(d.is_empty());
        assert_eq!(d.num_sets(), 0);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut d = DisjointSets::new(n);
        for i in 1..n {
            d.union(i - 1, i);
        }
        assert_eq!(d.num_sets(), 1);
        assert_eq!(d.set_size(0), n);
        let r = d.find(n - 1);
        assert_eq!(d.find(0), r);
    }
}
