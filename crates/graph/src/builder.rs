//! Incremental graph construction.

use crate::{CompactGraph, CompactGraphBuilder, Graph};

/// An incremental builder for either graph backend.
///
/// Useful when edges are discovered one at a time (e.g. while scanning a
/// spatial index).  Follows the non-consuming builder convention: mutating
/// methods return `&mut Self`, and [`GraphBuilder::build`] /
/// [`GraphBuilder::build_compact`] read the accumulated state.  Both
/// finalizers share one normalization path (range/self-loop validation,
/// sorting, dedup), so the two backends always describe the same graph.
///
/// ```
/// use mcds_graph::GraphBuilder;
/// let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge.
    ///
    /// Validation (range, self-loops, duplicates) is deferred to
    /// [`GraphBuilder::build`], so edges can be streamed in without
    /// per-edge branching.
    pub fn edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds every edge from an iterator.
    pub fn edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, it: I) -> &mut Self {
        self.edges.extend(it);
        self
    }

    /// Grows the node count to at least `n` (never shrinks).
    pub fn ensure_nodes(&mut self, n: usize) -> &mut Self {
        self.n = self.n.max(n);
        self
    }

    /// Number of edges added so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into an immutable [`Graph`].
    ///
    /// # Panics
    ///
    /// Panics if any recorded edge is out of range or a self-loop (same
    /// contract as [`Graph::from_edges`]).
    pub fn build(&self) -> Graph {
        Graph::from_edges(self.n, self.edges.iter().copied())
    }

    /// Finalizes into a gap-compressed [`CompactGraph`].
    ///
    /// Runs the same normalization as [`GraphBuilder::build`], then feeds
    /// the sorted adjacency lists straight into the varint encoder.
    ///
    /// # Panics
    ///
    /// Panics if any recorded edge is out of range or a self-loop (same
    /// contract as [`Graph::from_edges`]).
    pub fn build_compact(&self) -> CompactGraph {
        let adj = crate::graph::adjacency_from_edges(self.n, self.edges.iter().copied());
        let mut b = CompactGraphBuilder::new(self.n);
        for list in &adj {
            b.push_adjacency(list);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_and_bulk_edges() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edges([(1, 2), (2, 3)]);
        assert_eq!(b.pending_edges(), 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut b = GraphBuilder::new(2);
        b.ensure_nodes(5).ensure_nodes(3);
        assert_eq!(b.build().num_nodes(), 5);
    }

    #[test]
    fn default_is_empty() {
        let g = GraphBuilder::default().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn build_validates_range() {
        GraphBuilder::new(1).edge(0, 1).build();
    }

    #[test]
    fn both_backends_from_one_builder_agree() {
        let mut b = GraphBuilder::new(5);
        // Duplicates and unordered endpoints exercise normalization.
        b.edges([(3, 1), (1, 3), (0, 1), (2, 4), (4, 2), (1, 2)]);
        let g = b.build();
        let c = b.build_compact();
        assert_eq!(CompactGraph::from_graph(&g), c);
        assert_eq!(c.to_graph(), g);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn build_compact_validates_self_loops() {
        GraphBuilder::new(3).edge(1, 1).build_compact();
    }
}
