//! The graph-access trait split: [`SequentialGraph`] for streamed
//! adjacency scans and [`RandomAccessGraph`] for per-node queries.
//!
//! Every algorithm in the workspace needs only sorted neighbor
//! enumeration; the traits capture exactly that, so the solvers run
//! unchanged over the reference CSR [`Graph`](crate::Graph) or the
//! gap-compressed [`CompactGraph`](crate::CompactGraph).  The split
//! follows the webgraph convention: a *sequential* graph can replay all
//! adjacencies in node order (enough for conversion, encoding, and
//! whole-graph statistics), while a *random-access* graph can answer
//! `successors(v)` for arbitrary `v` (what BFS, first-fit MIS and the
//! connector phases need).
//!
//! All implementations must present the same canonical view: simple,
//! undirected, nodes `0..n`, neighbor lists sorted ascending with no
//! duplicates and no self-loops.  Determinism of every solver rests on
//! that ordering, and the cross-backend byte-identical-solve gate in
//! `scripts/verify.sh` enforces it end to end.

/// Streamed access to a graph's adjacency lists in node order.
///
/// The visitor receives `(node, sorted neighbors)` for every node
/// `0..num_nodes()`, including isolated ones (with an empty slice).
pub trait SequentialGraph {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges.
    fn num_edges(&self) -> usize;

    /// Calls `f(v, neighbors)` for every node `v` in increasing order,
    /// with `neighbors` sorted ascending.
    fn for_each_adjacency<F: FnMut(usize, &[u32])>(&self, f: F);
}

/// Per-node random access to sorted neighbor lists.
///
/// This is the bound every solver takes.  Implementations provide the
/// successor iterator and degree; `has_edge` and `is_connected` have
/// default implementations in terms of them (overridable where a faster
/// path exists, e.g. binary search on a CSR slice).
pub trait RandomAccessGraph: SequentialGraph {
    /// The sorted successor iterator for one node.
    type Successors<'a>: Iterator<Item = usize> + 'a
    where
        Self: 'a;

    /// Iterates over the neighbors of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// May panic if `v ≥ num_nodes()`.
    fn successors(&self, v: usize) -> Self::Successors<'_>;

    /// Degree of `v`.
    fn degree(&self, v: usize) -> usize;

    /// Adjacency test; the default scans the sorted list with early exit.
    fn has_edge(&self, u: usize, v: usize) -> bool {
        for w in self.successors(u) {
            if w >= v {
                return w == v;
            }
        }
        false
    }

    /// Returns `true` if the graph is connected (BFS from node 0).
    ///
    /// The empty graph and singletons are connected by convention —
    /// matching [`Graph::is_connected`](crate::Graph::is_connected).
    fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(v) = stack.pop() {
            for u in self.successors(v) {
                if !seen[u] {
                    seen[u] = true;
                    reached += 1;
                    stack.push(u);
                }
            }
        }
        reached == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompactGraph, Graph};

    /// Exercises the trait surface through a generic bound only.
    fn degree_sum<G: RandomAccessGraph>(g: &G) -> usize {
        (0..g.num_nodes()).map(|v| g.degree(v)).sum()
    }

    fn collected<G: RandomAccessGraph>(g: &G, v: usize) -> Vec<usize> {
        g.successors(v).collect()
    }

    #[test]
    fn csr_and_compact_agree_through_the_traits() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (3, 4), (2, 5)]);
        let c = CompactGraph::from_graph(&g);
        assert_eq!(degree_sum(&g), 2 * g.num_edges());
        assert_eq!(degree_sum(&c), degree_sum(&g));
        for v in 0..g.num_nodes() {
            assert_eq!(collected(&g, v), collected(&c, v), "node {v}");
        }
        fn conn<G: RandomAccessGraph>(g: &G) -> bool {
            g.is_connected()
        }
        assert!(!conn(&g));
        assert!(!conn(&c));
        assert!(conn(&CompactGraph::from_graph(&Graph::path(5))));
    }

    #[test]
    fn default_has_edge_early_exits_correctly() {
        let g = Graph::cycle(7);
        let c = CompactGraph::from_graph(&g);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(c.has_edge(u, v), g.has_edge(u, v), "({u}, {v})");
            }
        }
    }

    #[test]
    fn sequential_visit_covers_every_node_in_order() {
        let g = Graph::star(5);
        let mut seen = Vec::new();
        g.for_each_adjacency(|v, ns| seen.push((v, ns.to_vec())));
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[0].1, vec![1, 2, 3, 4]);
        assert_eq!(seen[3], (3, vec![0]));
    }

    #[test]
    fn trait_connectivity_conventions_match_inherent() {
        for g in [Graph::empty(0), Graph::empty(1), Graph::empty(2)] {
            let c = CompactGraph::from_graph(&g);
            assert_eq!(RandomAccessGraph::is_connected(&g), g.is_connected());
            assert_eq!(RandomAccessGraph::is_connected(&c), g.is_connected());
        }
    }
}
