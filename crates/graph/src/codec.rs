//! Byte codes for the compressed adjacency backend.
//!
//! [`CompactGraph`](crate::CompactGraph) stores neighbor gaps as LEB128
//! varints, with the first neighbor of each node zig-zag mapped (it is a
//! signed delta from the node id).  The codes live in their own module —
//! public, zero-dependency, and fully checked on the read side — so the
//! property/fuzz suites can hammer the decoder with hostile byte streams
//! independently of any graph.
//!
//! Encoding: little-endian base-128 with a continuation bit (LEB128).  A
//! `u64` takes 1–10 bytes; the canonical form is the shortest one, and
//! [`read_varint`] rejects non-canonical (overlong) encodings as well as
//! truncated input, so every valid byte stream has exactly one parse.

use std::fmt;

/// Why a varint failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended inside a varint (a continuation bit was set on the
    /// final available byte, or the stream was empty).
    Truncated {
        /// Byte offset where decoding started.
        at: usize,
    },
    /// The encoding is longer than the canonical form: an 11th byte, a
    /// 10th byte with bits above the 64th, or a zero-valued continuation
    /// tail (e.g. `0x80 0x00` for 0).
    Overlong {
        /// Byte offset where decoding started.
        at: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { at } => write!(f, "truncated varint at byte {at}"),
            CodecError::Overlong { at } => write!(f, "overlong varint at byte {at}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `x` to `out` as a canonical LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one canonical LEB128 varint from `bytes` starting at `*pos`,
/// advancing `*pos` past it.
///
/// # Errors
///
/// * [`CodecError::Truncated`] if the stream ends mid-varint,
/// * [`CodecError::Overlong`] if the encoding is not the canonical
///   shortest form (trailing zero continuation, or overflow past 64 bits).
///
/// On error `*pos` is left at the start of the failed varint.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let start = *pos;
    let mut x: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(start + (shift / 7) as usize) else {
            return Err(CodecError::Truncated { at: start });
        };
        let payload = (byte & 0x7f) as u64;
        if shift == 63 {
            // 10th byte: only the low bit may carry payload, and it must.
            if byte > 1 {
                return Err(CodecError::Overlong { at: start });
            }
        } else if shift > 63 {
            return Err(CodecError::Overlong { at: start });
        }
        x |= payload << shift;
        if byte & 0x80 == 0 {
            // Canonical form: a multi-byte encoding never ends in a zero
            // payload byte (that byte would be droppable).
            if shift > 0 && payload == 0 {
                return Err(CodecError::Overlong { at: start });
            }
            *pos = start + (shift / 7) as usize + 1;
            return Ok(x);
        }
        shift += 7;
    }
}

/// Zig-zag maps a signed delta to an unsigned code: 0, -1, 1, -2, … →
/// 0, 1, 2, 3, … so small magnitudes get short varints either way.
#[inline]
pub fn zigzag_encode(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(x: u64) -> usize {
        let mut buf = Vec::new();
        write_varint(&mut buf, x);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), Ok(x), "value {x}");
        assert_eq!(pos, buf.len(), "value {x} must consume its whole code");
        buf.len()
    }

    #[test]
    fn varint_boundaries() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(16_383), 2);
        assert_eq!(roundtrip(16_384), 3);
        assert_eq!(roundtrip((1 << 35) - 1), 5);
        assert_eq!(roundtrip(1 << 35), 6);
        assert_eq!(roundtrip(u64::MAX - 1), 10);
        assert_eq!(roundtrip(u64::MAX), 10);
    }

    #[test]
    fn concatenated_varints_decode_in_sequence() {
        let values = [0u64, 1, 300, 127, 128, u64::MAX, 42];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Ok(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let mut pos = 0;
        assert_eq!(
            read_varint(&[], &mut pos),
            Err(CodecError::Truncated { at: 0 })
        );
        // A continuation bit with nothing after it.
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80], &mut pos),
            Err(CodecError::Truncated { at: 0 })
        );
        assert_eq!(pos, 0, "pos must not advance on error");
        // Ten continuation bytes, no terminator.
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0xff; 9], &mut pos),
            Err(CodecError::Truncated { at: 0 })
        );
    }

    #[test]
    fn overlong_encodings_are_rejected() {
        // 0 encoded in two bytes.
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80, 0x00], &mut pos),
            Err(CodecError::Overlong { at: 0 })
        );
        // 1 encoded in two bytes.
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x81, 0x00], &mut pos),
            Err(CodecError::Overlong { at: 0 })
        );
        // Overflow past 64 bits: 10th byte with a high payload bit.
        let mut pos = 0;
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert_eq!(
            read_varint(&bytes, &mut pos),
            Err(CodecError::Overlong { at: 0 })
        );
        // An 11th byte.
        let mut pos = 0;
        let bytes = [
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x81, 0x00,
        ];
        assert_eq!(
            read_varint(&bytes, &mut pos),
            Err(CodecError::Overlong { at: 0 })
        );
    }

    #[test]
    fn u64_max_is_canonical_ten_bytes() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        assert_eq!(
            buf,
            [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]
        );
    }

    #[test]
    fn zigzag_roundtrip_and_ordering() {
        for x in [-5i64, -1, 0, 1, 5, i64::MIN, i64::MAX, -1_000_000, 42] {
            assert_eq!(zigzag_decode(zigzag_encode(x)), x, "{x}");
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn error_display_names_the_offset() {
        assert!(CodecError::Truncated { at: 7 }.to_string().contains("7"));
        assert!(CodecError::Overlong { at: 3 }.to_string().contains("3"));
    }
}
