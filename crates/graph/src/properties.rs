//! The defining predicates of the paper's objects: dominating sets,
//! connected dominating sets, independent sets and maximal independent
//! sets.
//!
//! Every algorithm crate verifies its outputs against these reference
//! predicates, and the property-test suites assert them on random inputs.

use crate::{node_mask, subsets, Graph};

/// Returns `true` if `set` is a dominating set of `g`: every node outside
/// `set` has at least one neighbor in `set`.
///
/// Note the empty set dominates the empty graph, and an isolated node can
/// only be dominated by itself.
///
/// ```
/// use mcds_graph::{Graph, properties::is_dominating_set};
/// let g = Graph::star(5);
/// assert!(is_dominating_set(&g, &[0]));
/// assert!(!is_dominating_set(&g, &[1]));
/// ```
pub fn is_dominating_set(g: &Graph, set: &[usize]) -> bool {
    let mask = node_mask(g.num_nodes(), set);
    (0..g.num_nodes()).all(|v| mask[v] || g.neighbors_iter(v).any(|u| mask[u]))
}

/// Returns `true` if `set` is a *connected* dominating set (CDS) of `g`:
/// dominating, and `G[set]` is connected.
///
/// The paper additionally requires a CDS to be non-empty whenever the graph
/// has nodes (an empty set cannot dominate a non-empty graph, so this is
/// implied except for the vacuous empty graph).
pub fn is_connected_dominating_set(g: &Graph, set: &[usize]) -> bool {
    let mask = node_mask(g.num_nodes(), set);
    is_dominating_set(g, set) && subsets::is_connected_subset(g, &mask)
}

/// Returns `true` if `set` is an independent set of `g`: no two members
/// are adjacent.
pub fn is_independent_set(g: &Graph, set: &[usize]) -> bool {
    let mask = node_mask(g.num_nodes(), set);
    set.iter().all(|&v| g.neighbors_iter(v).all(|u| !mask[u]))
}

/// Returns `true` if `set` is a *maximal* independent set of `g`:
/// independent, and every node outside has a neighbor inside (i.e. it is
/// also a dominating set — the standard equivalence the two-phased
/// algorithms rely on).
pub fn is_maximal_independent_set(g: &Graph, set: &[usize]) -> bool {
    is_independent_set(g, set) && is_dominating_set(g, set)
}

/// Returns `true` if `set` has the *2-hop separation* property within the
/// connected graph `g`: for every member `u`, some other member lies at
/// hop distance exactly 2 — unless `set` is a singleton.
///
/// The BFS-ordered first-fit MIS of the paper satisfies this (it is what
/// makes Lemma 9 work: any two components of `G[I ∪ U]` can be bridged by
/// a single connector).
pub fn has_two_hop_separation(g: &Graph, set: &[usize]) -> bool {
    if set.len() <= 1 {
        return true;
    }
    let mask = node_mask(g.num_nodes(), set);
    set.iter().all(|&u| {
        // Some member at distance exactly 2: a neighbor's neighbor.
        g.neighbors_iter(u).any(|w| {
            g.neighbors_iter(w)
                .any(|x| x != u && mask[x] && !g.has_edge(u, x))
        })
    })
}

/// Counts how many members of `set` dominate node `v` (closed-neighborhood
/// membership).
pub fn domination_count(g: &Graph, set: &[usize], v: usize) -> usize {
    let mask = node_mask(g.num_nodes(), set);
    let self_dom = usize::from(mask[v]);
    self_dom + g.neighbors_iter(v).filter(|&u| mask[u]).count()
}

/// Verifies a CDS and explains the first violation found, for debuggable
/// assertions in tests and the experiment harness.
///
/// Returns `Ok(())` for a valid CDS, or `Err(reason)` naming the violated
/// property and a witness node.
pub fn check_cds(g: &Graph, set: &[usize]) -> Result<(), String> {
    let n = g.num_nodes();
    if n > 0 && set.is_empty() {
        return Err("empty set cannot dominate a non-empty graph".into());
    }
    let mask = node_mask(n, set);
    for v in 0..n {
        if !mask[v] && !g.neighbors_iter(v).any(|u| mask[u]) {
            return Err(format!("node {v} is not dominated"));
        }
    }
    if !subsets::is_connected_subset(g, &mask) {
        return Err("induced subgraph is disconnected".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination_on_star_and_path() {
        let star = Graph::star(6);
        assert!(is_dominating_set(&star, &[0]));
        assert!(is_dominating_set(&star, &[0, 3]));
        assert!(!is_dominating_set(&star, &[1, 2]));
        let path = Graph::path(6);
        assert!(is_dominating_set(&path, &[1, 4]));
        assert!(!is_dominating_set(&path, &[1, 3])); // node 5 uncovered
    }

    #[test]
    fn cds_needs_connectivity() {
        let path = Graph::path(6);
        assert!(is_dominating_set(&path, &[1, 4]));
        assert!(!is_connected_dominating_set(&path, &[1, 4]));
        assert!(is_connected_dominating_set(&path, &[1, 2, 3, 4]));
    }

    #[test]
    fn independence_and_maximality() {
        let cycle = Graph::cycle(6);
        assert!(is_independent_set(&cycle, &[0, 2, 4]));
        assert!(is_maximal_independent_set(&cycle, &[0, 2, 4]));
        assert!(is_independent_set(&cycle, &[0, 3]));
        assert!(is_maximal_independent_set(&cycle, &[0, 3])); // {0,3} dominates C6
        assert!(!is_maximal_independent_set(&cycle, &[0])); // node 3 undominated
        assert!(!is_independent_set(&cycle, &[0, 1]));
        assert!(is_independent_set(&cycle, &[]));
        assert!(!is_maximal_independent_set(&cycle, &[]));
    }

    #[test]
    fn two_hop_separation() {
        // Path of 5: MIS {0, 2, 4} has 2-hop separation.
        let path = Graph::path(5);
        assert!(has_two_hop_separation(&path, &[0, 2, 4]));
        // {0, 3} on a path of 6: hop distance 3, no 2-hop neighbor for 0.
        let path6 = Graph::path(6);
        assert!(!has_two_hop_separation(&path6, &[0, 3]));
        assert!(has_two_hop_separation(&path6, &[2]));
        assert!(has_two_hop_separation(&path6, &[]));
    }

    #[test]
    fn domination_count_examples() {
        let star = Graph::star(5);
        assert_eq!(domination_count(&star, &[0], 3), 1);
        assert_eq!(domination_count(&star, &[0, 3], 3), 2);
        assert_eq!(domination_count(&star, &[1, 2], 3), 0);
    }

    #[test]
    fn check_cds_diagnostics() {
        let path = Graph::path(5);
        assert!(check_cds(&path, &[1, 2, 3]).is_ok());
        let err = check_cds(&path, &[1, 3]).unwrap_err();
        assert!(err.contains("disconnected"), "{err}");
        let err2 = check_cds(&path, &[0, 1]).unwrap_err();
        assert!(err2.contains("not dominated"), "{err2}");
        let err3 = check_cds(&path, &[]).unwrap_err();
        assert!(err3.contains("empty"), "{err3}");
        assert!(check_cds(&Graph::empty(0), &[]).is_ok());
    }

    #[test]
    fn empty_graph_conventions() {
        let g = Graph::empty(0);
        assert!(is_dominating_set(&g, &[]));
        assert!(is_connected_dominating_set(&g, &[]));
        assert!(is_independent_set(&g, &[]));
        assert!(is_maximal_independent_set(&g, &[]));
    }
}
