//! The defining predicates of the paper's objects: dominating sets,
//! connected dominating sets, independent sets and maximal independent
//! sets.
//!
//! Every algorithm crate verifies its outputs against these reference
//! predicates, and the property-test suites assert them on random inputs.
//! All predicates are generic over [`RandomAccessGraph`], so they apply
//! unchanged to the CSR [`crate::Graph`] and the compressed
//! [`crate::CompactGraph`] — existing `&Graph` callers compile as before.

use std::fmt;

use crate::{node_mask, subsets, RandomAccessGraph};

/// The first violated CDS property of a candidate set, as found by
/// [`check_cds`].
///
/// The `Display` output reproduces the historical string diagnostics
/// verbatim, so anything that printed the old `Result<(), String>` error
/// (CLI output, test messages) is unchanged; the variants make the
/// witness data (node ids, component counts) programmatically available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdsViolation {
    /// The set is empty while the graph has nodes.
    EmptySet,
    /// A set member is not a node of the graph.
    NotInGraph {
        /// The first out-of-range member found.
        node: usize,
    },
    /// Some node has no dominator: neither itself nor any neighbor is in
    /// the set.
    NotDominating {
        /// The first node found undominated.
        node: usize,
    },
    /// The subgraph induced by the set is disconnected.
    NotConnected {
        /// Number of connected components of the induced subgraph.
        components: usize,
    },
}

impl fmt::Display for CdsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdsViolation::EmptySet => {
                write!(f, "empty set cannot dominate a non-empty graph")
            }
            CdsViolation::NotInGraph { node } => {
                write!(f, "node {node} is not a node of the graph")
            }
            CdsViolation::NotDominating { node } => write!(f, "node {node} is not dominated"),
            CdsViolation::NotConnected { .. } => write!(f, "induced subgraph is disconnected"),
        }
    }
}

impl std::error::Error for CdsViolation {}

/// Returns `true` if `set` is a dominating set of `g`: every node outside
/// `set` has at least one neighbor in `set`.
///
/// Note the empty set dominates the empty graph, and an isolated node can
/// only be dominated by itself.
///
/// ```
/// use mcds_graph::{Graph, properties::is_dominating_set};
/// let g = Graph::star(5);
/// assert!(is_dominating_set(&g, &[0]));
/// assert!(!is_dominating_set(&g, &[1]));
/// ```
pub fn is_dominating_set<G: RandomAccessGraph>(g: &G, set: &[usize]) -> bool {
    let mask = node_mask(g.num_nodes(), set);
    (0..g.num_nodes()).all(|v| mask[v] || g.successors(v).any(|u| mask[u]))
}

/// Returns `true` if `set` is a *connected* dominating set (CDS) of `g`:
/// dominating, and `G[set]` is connected.
///
/// The paper additionally requires a CDS to be non-empty whenever the graph
/// has nodes (an empty set cannot dominate a non-empty graph, so this is
/// implied except for the vacuous empty graph).
pub fn is_connected_dominating_set<G: RandomAccessGraph>(g: &G, set: &[usize]) -> bool {
    let mask = node_mask(g.num_nodes(), set);
    is_dominating_set(g, set) && subsets::is_connected_subset(g, &mask)
}

/// Returns `true` if `set` is an independent set of `g`: no two members
/// are adjacent.
pub fn is_independent_set<G: RandomAccessGraph>(g: &G, set: &[usize]) -> bool {
    let mask = node_mask(g.num_nodes(), set);
    set.iter().all(|&v| g.successors(v).all(|u| !mask[u]))
}

/// Returns `true` if `set` is a *maximal* independent set of `g`:
/// independent, and every node outside has a neighbor inside (i.e. it is
/// also a dominating set — the standard equivalence the two-phased
/// algorithms rely on).
pub fn is_maximal_independent_set<G: RandomAccessGraph>(g: &G, set: &[usize]) -> bool {
    is_independent_set(g, set) && is_dominating_set(g, set)
}

/// Returns `true` if `set` has the *2-hop separation* property within the
/// connected graph `g`: for every member `u`, some other member lies at
/// hop distance exactly 2 — unless `set` is a singleton.
///
/// The BFS-ordered first-fit MIS of the paper satisfies this (it is what
/// makes Lemma 9 work: any two components of `G[I ∪ U]` can be bridged by
/// a single connector).
pub fn has_two_hop_separation<G: RandomAccessGraph>(g: &G, set: &[usize]) -> bool {
    if set.len() <= 1 {
        return true;
    }
    let mask = node_mask(g.num_nodes(), set);
    set.iter().all(|&u| {
        // Some member at distance exactly 2: a neighbor's neighbor.
        g.successors(u).any(|w| {
            g.successors(w)
                .any(|x| x != u && mask[x] && !g.has_edge(u, x))
        })
    })
}

/// Counts how many members of `set` dominate node `v` (closed-neighborhood
/// membership).
pub fn domination_count<G: RandomAccessGraph>(g: &G, set: &[usize], v: usize) -> usize {
    let mask = node_mask(g.num_nodes(), set);
    let self_dom = usize::from(mask[v]);
    self_dom + g.successors(v).filter(|&u| mask[u]).count()
}

/// Verifies a CDS and explains the first violation found, for debuggable
/// assertions in tests and the experiment harness.
///
/// Returns `Ok(())` for a valid CDS, or the typed [`CdsViolation`] naming
/// the violated property and a witness.  Unlike the membership-mask
/// predicates above, out-of-range members are reported as
/// [`CdsViolation::NotInGraph`] rather than panicking.
///
/// # Errors
///
/// The first violation in checking order: set well-formedness, then
/// domination, then induced connectivity.
pub fn check_cds<G: RandomAccessGraph>(g: &G, set: &[usize]) -> Result<(), CdsViolation> {
    let n = g.num_nodes();
    if n > 0 && set.is_empty() {
        return Err(CdsViolation::EmptySet);
    }
    let mut mask = vec![false; n];
    for &v in set {
        if v >= n {
            return Err(CdsViolation::NotInGraph { node: v });
        }
        mask[v] = true;
    }
    for v in 0..n {
        if !mask[v] && !g.successors(v).any(|u| mask[u]) {
            return Err(CdsViolation::NotDominating { node: v });
        }
    }
    let components = subsets::count_components(g, &mask);
    if components > 1 {
        return Err(CdsViolation::NotConnected { components });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompactGraph, Graph};

    #[test]
    fn domination_on_star_and_path() {
        let star = Graph::star(6);
        assert!(is_dominating_set(&star, &[0]));
        assert!(is_dominating_set(&star, &[0, 3]));
        assert!(!is_dominating_set(&star, &[1, 2]));
        let path = Graph::path(6);
        assert!(is_dominating_set(&path, &[1, 4]));
        assert!(!is_dominating_set(&path, &[1, 3])); // node 5 uncovered
    }

    #[test]
    fn cds_needs_connectivity() {
        let path = Graph::path(6);
        assert!(is_dominating_set(&path, &[1, 4]));
        assert!(!is_connected_dominating_set(&path, &[1, 4]));
        assert!(is_connected_dominating_set(&path, &[1, 2, 3, 4]));
    }

    #[test]
    fn independence_and_maximality() {
        let cycle = Graph::cycle(6);
        assert!(is_independent_set(&cycle, &[0, 2, 4]));
        assert!(is_maximal_independent_set(&cycle, &[0, 2, 4]));
        assert!(is_independent_set(&cycle, &[0, 3]));
        assert!(is_maximal_independent_set(&cycle, &[0, 3])); // {0,3} dominates C6
        assert!(!is_maximal_independent_set(&cycle, &[0])); // node 3 undominated
        assert!(!is_independent_set(&cycle, &[0, 1]));
        assert!(is_independent_set(&cycle, &[]));
        assert!(!is_maximal_independent_set(&cycle, &[]));
    }

    #[test]
    fn two_hop_separation() {
        // Path of 5: MIS {0, 2, 4} has 2-hop separation.
        let path = Graph::path(5);
        assert!(has_two_hop_separation(&path, &[0, 2, 4]));
        // {0, 3} on a path of 6: hop distance 3, no 2-hop neighbor for 0.
        let path6 = Graph::path(6);
        assert!(!has_two_hop_separation(&path6, &[0, 3]));
        assert!(has_two_hop_separation(&path6, &[2]));
        assert!(has_two_hop_separation(&path6, &[]));
    }

    #[test]
    fn domination_count_examples() {
        let star = Graph::star(5);
        assert_eq!(domination_count(&star, &[0], 3), 1);
        assert_eq!(domination_count(&star, &[0, 3], 3), 2);
        assert_eq!(domination_count(&star, &[1, 2], 3), 0);
    }

    #[test]
    fn check_cds_diagnostics() {
        let path = Graph::path(5);
        assert!(check_cds(&path, &[1, 2, 3]).is_ok());
        let err = check_cds(&path, &[1, 3]).unwrap_err();
        assert_eq!(err, CdsViolation::NotConnected { components: 2 });
        assert!(err.to_string().contains("disconnected"), "{err}");
        let err2 = check_cds(&path, &[0, 1]).unwrap_err();
        assert_eq!(err2, CdsViolation::NotDominating { node: 3 });
        assert!(err2.to_string().contains("not dominated"), "{err2}");
        let err3 = check_cds(&path, &[]).unwrap_err();
        assert_eq!(err3, CdsViolation::EmptySet);
        assert!(err3.to_string().contains("empty"), "{err3}");
        assert!(check_cds(&Graph::empty(0), &[]).is_ok());
    }

    #[test]
    fn check_cds_reports_out_of_range_instead_of_panicking() {
        let path = Graph::path(3);
        assert_eq!(
            check_cds(&path, &[1, 9]),
            Err(CdsViolation::NotInGraph { node: 9 })
        );
        assert!(CdsViolation::NotInGraph { node: 9 }
            .to_string()
            .contains("node 9"));
    }

    #[test]
    fn display_strings_match_the_historical_diagnostics() {
        assert_eq!(
            CdsViolation::EmptySet.to_string(),
            "empty set cannot dominate a non-empty graph"
        );
        assert_eq!(
            CdsViolation::NotDominating { node: 7 }.to_string(),
            "node 7 is not dominated"
        );
        assert_eq!(
            CdsViolation::NotConnected { components: 3 }.to_string(),
            "induced subgraph is disconnected"
        );
    }

    #[test]
    fn predicates_agree_across_backends() {
        let g = Graph::cycle(9);
        let c = CompactGraph::from_graph(&g);
        for set in [
            vec![],
            vec![0],
            vec![0, 3, 6],
            vec![0, 1, 2, 3, 4, 5, 6],
            (0..9).collect::<Vec<_>>(),
        ] {
            assert_eq!(
                is_connected_dominating_set(&g, &set),
                is_connected_dominating_set(&c, &set),
                "{set:?}"
            );
            assert_eq!(check_cds(&g, &set), check_cds(&c, &set), "{set:?}");
        }
    }

    #[test]
    fn empty_graph_conventions() {
        let g = Graph::empty(0);
        assert!(is_dominating_set(&g, &[]));
        assert!(is_connected_dominating_set(&g, &[]));
        assert!(is_independent_set(&g, &[]));
        assert!(is_maximal_independent_set(&g, &[]));
    }
}
