//! The gap-compressed adjacency backend.
//!
//! [`CompactGraph`] stores each sorted neighbor list as byte codes
//! (webgraph-style, but dependency-free): per node, a varint degree, the
//! first neighbor as a zig-zag varint of its delta from the node id, and
//! every following neighbor as a varint of `gap − 1` from its
//! predecessor.  A `Vec<u64>` of per-node byte offsets gives random
//! access.  On spatially ordered instances (the streaming UDG builder
//! relabels nodes in grid-sweep order) gaps are small and most arcs cost
//! one byte, versus four in the CSR `targets` array — the ≥3× adjacency
//! compression the E23 experiment gates on.
//!
//! The decode side trusts nothing: every varint read is checked (see
//! [`crate::codec`]), so a corrupted stream panics with a diagnostic
//! instead of producing a silently wrong graph.  Streams built through
//! [`CompactGraphBuilder`] are valid by construction.

use std::fmt;

use crate::codec::{read_varint, write_varint, zigzag_decode, zigzag_encode};
use crate::{Graph, RandomAccessGraph, SequentialGraph};

/// An immutable, undirected, simple graph with gap-compressed sorted
/// adjacency — the compact counterpart of the CSR [`Graph`].
///
/// Both backends present the identical canonical view through
/// [`SequentialGraph`]/[`RandomAccessGraph`], so every solver produces
/// byte-identical output on either (the `substrate` gate in
/// `scripts/verify.sh` checks exactly this).
///
/// ```
/// use mcds_graph::{CompactGraph, Graph, RandomAccessGraph};
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let c = CompactGraph::from_graph(&g);
/// assert_eq!(c.num_nodes(), 4);
/// assert_eq!(c.successors(1).collect::<Vec<_>>(), vec![0, 2]);
/// assert_eq!(c.to_graph(), g);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CompactGraph {
    n: usize,
    m: usize,
    offsets: Vec<u64>,
    bytes: Vec<u8>,
}

impl CompactGraph {
    /// Encodes any [`SequentialGraph`] (one streaming pass).
    pub fn from_sequential<G: SequentialGraph>(g: &G) -> Self {
        let mut b = CompactGraphBuilder::new(g.num_nodes());
        g.for_each_adjacency(|_, neighbors| {
            b.push_adjacency(neighbors);
        });
        let c = b.finish();
        debug_assert_eq!(c.num_edges(), g.num_edges());
        c
    }

    /// Encodes a CSR [`Graph`].
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_sequential(g)
    }

    /// Decodes back into a CSR [`Graph`] (the inverse of
    /// [`CompactGraph::from_graph`]; round-trips are lossless).
    pub fn to_graph(&self) -> Graph {
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        let mut targets = Vec::with_capacity(2 * self.m);
        self.for_each_adjacency(|_, neighbors| {
            targets.extend_from_slice(neighbors);
            offsets.push(targets.len());
        });
        Graph::from_sorted_adjacency(offsets, targets)
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        let mut pos = self.offsets[v] as usize;
        decode(read_varint(&self.bytes, &mut pos)) as usize
    }

    /// Iterator over the sorted neighbors of `v`.
    pub fn successors(&self, v: usize) -> CompactSuccessors<'_> {
        let mut pos = self.offsets[v] as usize;
        let remaining = decode(read_varint(&self.bytes, &mut pos)) as usize;
        CompactSuccessors {
            bytes: &self.bytes,
            pos,
            remaining,
            node: v as i64,
            prev: 0,
            first: true,
        }
    }

    /// Adjacency test via the sorted gap stream (early exit).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        RandomAccessGraph::has_edge(self, u, v)
    }

    /// Bytes spent on the compressed adjacency stream — the number the
    /// E23 experiment compares against the CSR's `4 · 2m` target bytes.
    #[inline]
    pub fn adjacency_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Bytes spent on the per-node offset index (reported separately:
    /// both backends pay an offsets array).
    #[inline]
    pub fn offset_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
    }
}

impl SequentialGraph for CompactGraph {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn for_each_adjacency<F: FnMut(usize, &[u32])>(&self, mut f: F) {
        let mut buf: Vec<u32> = Vec::new();
        for v in 0..self.n {
            buf.clear();
            buf.extend(self.successors(v).map(|u| u as u32));
            f(v, &buf);
        }
    }
}

impl RandomAccessGraph for CompactGraph {
    type Successors<'a> = CompactSuccessors<'a>;

    fn successors(&self, v: usize) -> CompactSuccessors<'_> {
        CompactGraph::successors(self, v)
    }

    fn degree(&self, v: usize) -> usize {
        CompactGraph::degree(self, v)
    }
}

impl fmt::Debug for CompactGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompactGraph(n={}, m={}, adj_bytes={})",
            self.n,
            self.m,
            self.bytes.len()
        )
    }
}

/// Unwraps a codec read from an in-memory stream.  Builder-produced
/// streams are valid by construction, so a failure here means memory
/// corruption or a hand-assembled graph — panic with the diagnostic.
#[inline]
fn decode(r: Result<u64, crate::codec::CodecError>) -> u64 {
    match r {
        Ok(x) => x,
        Err(e) => panic!("corrupt CompactGraph stream: {e}"),
    }
}

/// Sorted successor iterator decoding the gap stream of one node.
#[derive(Debug, Clone)]
pub struct CompactSuccessors<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    node: i64,
    prev: u64,
    first: bool,
}

impl Iterator for CompactSuccessors<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let code = decode(read_varint(self.bytes, &mut self.pos));
        let value = if self.first {
            self.first = false;
            let first = self.node + zigzag_decode(code);
            debug_assert!(first >= 0, "negative neighbor in stream");
            first as u64
        } else {
            self.prev + code + 1
        };
        self.prev = value;
        Some(value as usize)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for CompactSuccessors<'_> {}

/// Incremental encoder accepting `(node, sorted neighbors)` in increasing
/// node order — the write half of [`CompactGraph`], used by
/// [`CompactGraph::from_sequential`], `GraphBuilder::build_compact`, and
/// the streaming UDG builder (which never materializes an edge list).
///
/// The caller must push one adjacency list per node, in node order, and
/// the lists must together describe an undirected graph (each edge
/// present from both endpoints).  Per-list invariants (sorted, strictly
/// ascending, in-range, no self-loop) are asserted eagerly; symmetry is
/// the caller's contract, cheaply cross-checked by the arc count in
/// [`CompactGraphBuilder::finish`].
#[derive(Debug, Clone)]
pub struct CompactGraphBuilder {
    n: usize,
    next_node: usize,
    arcs: usize,
    offsets: Vec<u64>,
    bytes: Vec<u8>,
}

impl CompactGraphBuilder {
    /// Starts an encoder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        CompactGraphBuilder {
            n,
            next_node: 0,
            arcs: 0,
            offsets,
            bytes: Vec::new(),
        }
    }

    /// The node id the next [`CompactGraphBuilder::push_adjacency`] call
    /// will encode.
    pub fn next_node(&self) -> usize {
        self.next_node
    }

    /// Encodes the sorted neighbor list of the next node.
    ///
    /// # Panics
    ///
    /// Panics if all `n` lists were already pushed, if `neighbors` is not
    /// strictly ascending, or if an entry is out of range or a self-loop.
    pub fn push_adjacency(&mut self, neighbors: &[u32]) -> &mut Self {
        let v = self.next_node;
        assert!(
            v < self.n,
            "adjacency list for node {v} exceeds n = {}",
            self.n
        );
        write_varint(&mut self.bytes, neighbors.len() as u64);
        let mut prev: Option<u32> = None;
        for &u in neighbors {
            assert!(
                (u as usize) < self.n,
                "neighbor {u} out of range for n = {}",
                self.n
            );
            assert!(u as usize != v, "self-loop at node {v} is not allowed");
            match prev {
                None => write_varint(&mut self.bytes, zigzag_encode(u as i64 - v as i64)),
                Some(p) => {
                    assert!(p < u, "neighbors of node {v} not strictly ascending");
                    write_varint(&mut self.bytes, (u - p - 1) as u64);
                }
            }
            prev = Some(u);
        }
        self.arcs += neighbors.len();
        self.offsets.push(self.bytes.len() as u64);
        self.next_node += 1;
        self
    }

    /// Finalizes into a [`CompactGraph`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` lists were pushed, or if the total arc
    /// count is odd (the cheap witness of an asymmetric input).
    pub fn finish(self) -> CompactGraph {
        assert_eq!(
            self.next_node, self.n,
            "got adjacency lists for {} of {} nodes",
            self.next_node, self.n
        );
        assert!(
            self.arcs.is_multiple_of(2),
            "odd arc count {}: adjacency lists are not symmetric",
            self.arcs
        );
        CompactGraph {
            n: self.n,
            m: self.arcs / 2,
            offsets: self.offsets,
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_named_families() {
        for g in [
            Graph::empty(0),
            Graph::empty(5),
            Graph::path(9),
            Graph::cycle(6),
            Graph::star(8),
            Graph::complete(7),
            Graph::from_edges(6, [(0, 5), (1, 4), (0, 1)]),
        ] {
            let c = CompactGraph::from_graph(&g);
            assert_eq!(c.num_nodes(), g.num_nodes());
            assert_eq!(c.num_edges(), g.num_edges());
            for v in 0..g.num_nodes() {
                assert_eq!(c.degree(v), g.degree(v), "{g:?} node {v}");
                assert_eq!(
                    c.successors(v).collect::<Vec<_>>(),
                    g.neighbors_iter(v).collect::<Vec<_>>(),
                    "{g:?} node {v}"
                );
            }
            assert_eq!(c.to_graph(), g, "{g:?}");
        }
    }

    #[test]
    fn gap_encoding_is_small_on_local_graphs() {
        // A path has gaps of ±1 everywhere: every arc costs one byte.
        let g = Graph::path(1000);
        let c = CompactGraph::from_graph(&g);
        let arcs = 2 * g.num_edges();
        // degree byte per node + one byte per arc.
        assert_eq!(c.adjacency_bytes(), 1000 + arcs);
        assert!(c.adjacency_bytes() < 4 * arcs / 3 + 1000);
    }

    #[test]
    fn successors_is_exact_size() {
        let g = Graph::star(6);
        let c = CompactGraph::from_graph(&g);
        let it = c.successors(0);
        assert_eq!(it.len(), 5);
        assert_eq!(it.size_hint(), (5, Some(5)));
    }

    #[test]
    fn builder_validates_eagerly() {
        let r = std::panic::catch_unwind(|| {
            CompactGraphBuilder::new(3).push_adjacency(&[1, 1]);
        });
        assert!(r.is_err(), "duplicate neighbor must panic");
        let r = std::panic::catch_unwind(|| {
            CompactGraphBuilder::new(3).push_adjacency(&[3]);
        });
        assert!(r.is_err(), "out-of-range neighbor must panic");
        let r = std::panic::catch_unwind(|| {
            CompactGraphBuilder::new(3).push_adjacency(&[0]);
        });
        assert!(r.is_err(), "self-loop must panic");
        let r = std::panic::catch_unwind(|| {
            let mut b = CompactGraphBuilder::new(2);
            b.push_adjacency(&[1]);
            b.push_adjacency(&[0]);
            b.push_adjacency(&[]);
        });
        assert!(r.is_err(), "extra list must panic");
    }

    #[test]
    fn finish_checks_completeness_and_symmetry() {
        let r = std::panic::catch_unwind(|| {
            CompactGraphBuilder::new(2).finish();
        });
        assert!(r.is_err(), "missing lists must panic");
        let r = std::panic::catch_unwind(|| {
            let mut b = CompactGraphBuilder::new(2);
            b.push_adjacency(&[1]);
            b.push_adjacency(&[]);
            b.finish();
        });
        assert!(r.is_err(), "odd arc count must panic");
    }

    #[test]
    fn far_apart_first_neighbors_still_roundtrip() {
        // First-neighbor deltas can be large and of either sign.
        let n = 100_000;
        let g = Graph::from_edges(n, [(0, n - 1), (1, n - 2), (50_000, 50_001)]);
        let c = CompactGraph::from_graph(&g);
        assert_eq!(c.to_graph(), g);
        assert!(c.has_edge(0, n - 1));
        assert!(c.has_edge(n - 1, 0));
        assert!(!c.has_edge(0, 1));
    }

    #[test]
    fn debug_is_informative() {
        let c = CompactGraph::from_graph(&Graph::path(3));
        let s = format!("{c:?}");
        assert!(s.contains("n=3"));
        assert!(s.contains("m=2"));
    }
}
