//! Breadth-first search, spanning trees, components and distances.
//!
//! The paper's phase-1 MIS is selected "in the first-fit manner in the
//! breadth-first-search ordering" of a rooted spanning tree `T`
//! (Section III); [`BfsTree`] is exactly that object, carrying root,
//! parents, levels and the BFS visit order.

use crate::RandomAccessGraph;

/// A rooted BFS spanning tree of (one component of) a graph.
///
/// * `parent[v]` is the BFS parent, `None` for the root and for nodes
///   unreachable from it,
/// * `level[v]` is the hop distance from the root (`usize::MAX` if
///   unreachable),
/// * `order` lists the reached nodes in BFS visit order (root first).
///   Within a level, nodes are visited in increasing id — the tie-break
///   the first-fit MIS uses.
///
/// ```
/// use mcds_graph::{Graph, traversal::BfsTree};
/// let g = Graph::path(4);
/// let t = BfsTree::rooted_at(&g, 0);
/// assert_eq!(t.level(3), Some(3));
/// assert_eq!(t.parent(3), Some(2));
/// assert_eq!(t.order(), &[0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct BfsTree {
    root: usize,
    parent: Vec<Option<usize>>,
    level: Vec<usize>,
    order: Vec<usize>,
}

impl BfsTree {
    /// Runs BFS from `root`.
    ///
    /// Parents are *canonical*: the parent of `v` is the minimum-id
    /// neighbor one level closer to the root.  This makes the tree a pure
    /// function of the graph and root — the property that lets the
    /// distributed protocol in `mcds-distsim` reconstruct the identical
    /// tree from purely local information.
    ///
    /// # Panics
    ///
    /// Panics if `root ≥ g.num_nodes()`.
    pub fn rooted_at<G: RandomAccessGraph>(g: &G, root: usize) -> Self {
        let n = g.num_nodes();
        assert!(root < n, "root {root} out of range for n = {n}");
        let mut parent = vec![None; n];
        let mut level = vec![usize::MAX; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        level[root] = 0;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for u in g.successors(v) {
                if level[u] == usize::MAX {
                    level[u] = level[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        // Canonical parents: min-id neighbor one level up.
        for &v in &order {
            if v == root {
                continue;
            }
            parent[v] = g.successors(v).find(|&u| level[u] + 1 == level[v]);
        }
        BfsTree {
            root,
            parent,
            level,
            order,
        }
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// BFS parent of `v` (`None` for the root or unreachable nodes).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Hop distance of `v` from the root, `None` if unreachable.
    pub fn level(&self, v: usize) -> Option<usize> {
        if self.level[v] == usize::MAX {
            None
        } else {
            Some(self.level[v])
        }
    }

    /// Nodes in BFS visit order (reached nodes only).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of nodes reached from the root.
    pub fn reached(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if every node of the graph was reached.
    pub fn spans<G: RandomAccessGraph>(&self, g: &G) -> bool {
        self.reached() == g.num_nodes()
    }

    /// Nodes sorted by the rank `(level, id)` — the canonical first-fit
    /// processing order of the paper's phase 1.  Unreachable nodes are
    /// excluded.
    pub fn rank_order(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.order.clone();
        v.sort_by_key(|&x| (self.level[x], x));
        v
    }

    /// The deepest level in the tree (eccentricity of the root), or `None`
    /// if the tree reaches only the root.
    pub fn depth(&self) -> usize {
        self.order.iter().map(|&v| self.level[v]).max().unwrap_or(0)
    }

    /// Tree edges `(parent, child)` for all reached non-root nodes.
    pub fn tree_edges(&self) -> Vec<(usize, usize)> {
        self.order
            .iter()
            .filter_map(|&v| self.parent[v].map(|p| (p, v)))
            .collect()
    }
}

/// Connected components of a graph; each component is a sorted node list,
/// and components are ordered by their smallest node.
///
/// ```
/// use mcds_graph::{Graph, traversal::connected_components};
/// let g = Graph::from_edges(5, [(0, 1), (3, 4)]);
/// let comps = connected_components(&g);
/// assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
/// ```
pub fn connected_components<G: RandomAccessGraph>(g: &G) -> Vec<Vec<usize>> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            comp.push(v);
            for u in g.successors(v) {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// The largest connected component (sorted node list).  Returns an empty
/// vector for the empty graph.  Ties are broken toward the component with
/// the smallest minimum node id (the first found).
pub fn largest_component<G: RandomAccessGraph>(g: &G) -> Vec<usize> {
    connected_components(g)
        .into_iter()
        .max_by(|a, b| a.len().cmp(&b.len()).then(b[0].cmp(&a[0])))
        .unwrap_or_default()
}

/// Single-source shortest (hop) distances; `usize::MAX` marks unreachable
/// nodes.
pub fn bfs_distances<G: RandomAccessGraph>(g: &G, source: usize) -> Vec<usize> {
    let t = BfsTree::rooted_at(g, source);
    (0..g.num_nodes())
        .map(|v| t.level(v).unwrap_or(usize::MAX))
        .collect()
}

/// Hop diameter of a connected graph: the largest shortest-path distance
/// over all pairs, computed by `n` BFS runs (`O(nm)`).
///
/// Returns `None` if the graph is disconnected or has no nodes.
///
/// The CDS literature uses `γ_c(G) ≥ diam(G) − 1` as a cheap lower bound;
/// the experiment harness relies on this function for it.
pub fn diameter<G: RandomAccessGraph>(g: &G) -> Option<usize> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let mut best = 0usize;
    for s in 0..n {
        let d = bfs_distances(g, s);
        for &x in &d {
            if x == usize::MAX {
                return None; // disconnected
            }
            best = best.max(x);
        }
    }
    Some(best)
}

/// Eccentricity of every node (max hop distance to any other node), or
/// `None` if the graph is disconnected or empty.  `O(n·m)`.
pub fn eccentricities<G: RandomAccessGraph>(g: &G) -> Option<Vec<usize>> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for s in 0..n {
        let d = bfs_distances(g, s);
        let mut ecc = 0usize;
        for &x in &d {
            if x == usize::MAX {
                return None;
            }
            ecc = ecc.max(x);
        }
        out.push(ecc);
    }
    Some(out)
}

/// A center of the graph: a node of minimum eccentricity (smallest id on
/// ties), or `None` if disconnected/empty.
///
/// Rooting the BFS phase at a center minimizes tree depth, which the E11
/// ablation uses to probe root-choice sensitivity.
pub fn graph_center<G: RandomAccessGraph>(g: &G) -> Option<usize> {
    let ecc = eccentricities(g)?;
    (0..g.num_nodes()).min_by_key(|&v| (ecc[v], v))
}

/// The graph radius (minimum eccentricity), or `None` if
/// disconnected/empty.
pub fn radius<G: RandomAccessGraph>(g: &G) -> Option<usize> {
    eccentricities(g).map(|e| e.into_iter().min().unwrap_or(0))
}

/// Articulation points (cut vertices) of the graph, sorted ascending —
/// iterative Tarjan lowlink, `O(n + m)`.
///
/// In backbone terms these are the single points of failure: removing
/// one disconnects its component.  The `node_failure` example and the
/// robustness analyses use this.
pub fn articulation_points<G: RandomAccessGraph>(g: &G) -> Vec<usize> {
    let n = g.num_nodes();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS: each frame stores the node, its parent, and its
        // live successor iterator (resumable across pushes — the generic
        // counterpart of the old CSR cursor).
        let mut stack: Vec<(usize, usize, G::Successors<'_>)> =
            vec![(root, usize::MAX, g.successors(root))];
        let mut root_children = 0usize;
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(top) = stack.last_mut() {
            let (v, parent) = (top.0, top.1);
            if let Some(u) = top.2.next() {
                if disc[u] == usize::MAX {
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((u, v, g.successors(u)));
                } else if u != parent {
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                stack.pop();
                if let Some(prev) = stack.last_mut() {
                    let p = prev.0;
                    low[p] = low[p].min(low[v]);
                    if p != root && low[v] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root] = true;
        }
    }
    (0..n).filter(|&v| is_cut[v]).collect()
}

/// Bridges (cut edges) of the graph as `(u, v)` pairs with `u < v`,
/// sorted — iterative Tarjan lowlink, `O(n + m)`.
///
/// A bridge in a backbone is a link whose loss splits it; together with
/// [`articulation_points`] this quantifies backbone fragility.
pub fn bridges<G: RandomAccessGraph>(g: &G) -> Vec<(usize, usize)> {
    let n = g.num_nodes();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut out = Vec::new();
    let mut timer = 0usize;
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // (node, parent, successor iterator, parent_edge_used): graphs
        // are simple, so one parent edge exists per child; skip the single
        // (child, parent) back-edge exactly once.
        let mut stack: Vec<(usize, usize, G::Successors<'_>, bool)> =
            vec![(root, usize::MAX, g.successors(root), false)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(top) = stack.last_mut() {
            let (v, parent) = (top.0, top.1);
            if let Some(u) = top.2.next() {
                if u == parent && !top.3 {
                    top.3 = true;
                    continue;
                }
                if disc[u] == usize::MAX {
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    stack.push((u, v, g.successors(u), false));
                } else {
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                stack.pop();
                if let Some(prev) = stack.last_mut() {
                    let p = prev.0;
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        out.push((p.min(v), p.max(v)));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// DFS preorder from `source` (neighbors in sorted order).
pub fn dfs_preorder<G: RandomAccessGraph>(g: &G, source: usize) -> Vec<usize> {
    let n = g.num_nodes();
    assert!(source < n, "source {source} out of range");
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    // Explicit stack; push neighbors in reverse-sorted order so the
    // smallest is popped first, matching recursive DFS with sorted lists.
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        if seen[v] {
            continue;
        }
        seen[v] = true;
        out.push(v);
        let before = stack.len();
        for u in g.successors(v) {
            if !seen[u] {
                stack.push(u);
            }
        }
        // Reverse the just-pushed block so the smallest neighbor pops
        // first, matching recursive DFS with sorted lists.
        stack[before..].reverse();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn bfs_tree_on_path() {
        let g = Graph::path(5);
        let t = BfsTree::rooted_at(&g, 2);
        assert_eq!(t.root(), 2);
        assert_eq!(t.level(0), Some(2));
        assert_eq!(t.level(4), Some(2));
        assert_eq!(t.parent(0), Some(1));
        assert_eq!(t.parent(2), None);
        assert_eq!(t.depth(), 2);
        assert!(t.spans(&g));
        assert_eq!(t.tree_edges().len(), 4);
    }

    #[test]
    fn bfs_tree_unreachable_nodes() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let t = BfsTree::rooted_at(&g, 0);
        assert_eq!(t.level(3), None);
        assert_eq!(t.parent(3), None);
        assert_eq!(t.reached(), 2);
        assert!(!t.spans(&g));
    }

    #[test]
    fn rank_order_sorts_by_level_then_id() {
        // Star with center 3: levels are {3:0, others:1}.
        let g = Graph::from_edges(4, [(3, 0), (3, 1), (3, 2)]);
        let t = BfsTree::rooted_at(&g, 3);
        assert_eq!(t.rank_order(), vec![3, 0, 1, 2]);
    }

    #[test]
    fn components_and_largest() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(largest_component(&g), vec![0, 1, 2]);
        assert!(largest_component(&Graph::empty(0)).is_empty());
    }

    #[test]
    fn distances_and_diameter() {
        let g = Graph::cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(diameter(&g), Some(3));
        assert_eq!(diameter(&Graph::from_edges(3, [(0, 1)])), None);
        assert_eq!(diameter(&Graph::empty(0)), None);
        assert_eq!(diameter(&Graph::empty(1)), Some(0));
    }

    #[test]
    fn dfs_preorder_visits_once_in_sorted_tiebreak() {
        let g = Graph::from_edges(5, [(0, 2), (0, 1), (1, 3), (2, 3), (3, 4)]);
        let order = dfs_preorder(&g, 0);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1); // smallest neighbor first
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_root_out_of_range() {
        let _ = BfsTree::rooted_at(&Graph::empty(1), 1);
    }

    #[test]
    fn articulation_points_of_named_families() {
        // Path: all interior nodes are cuts.
        assert_eq!(articulation_points(&Graph::path(5)), vec![1, 2, 3]);
        // Cycle: 2-connected, no cuts.
        assert!(articulation_points(&Graph::cycle(6)).is_empty());
        // Star: the hub.
        assert_eq!(articulation_points(&Graph::star(5)), vec![0]);
        // Complete graph: none.
        assert!(articulation_points(&Graph::complete(5)).is_empty());
        // Two triangles sharing a vertex: the shared vertex.
        let bowtie = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        assert_eq!(articulation_points(&bowtie), vec![2]);
        // Disconnected graph: per-component cuts.
        let two_paths = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert_eq!(articulation_points(&two_paths), vec![1, 4]);
        assert!(articulation_points(&Graph::empty(3)).is_empty());
    }

    #[test]
    fn bridges_of_named_families() {
        // Path: every edge is a bridge.
        assert_eq!(bridges(&Graph::path(4)), vec![(0, 1), (1, 2), (2, 3)]);
        // Cycle: none.
        assert!(bridges(&Graph::cycle(5)).is_empty());
        // Star: every edge.
        assert_eq!(bridges(&Graph::star(4)).len(), 3);
        // Bowtie (two triangles sharing a vertex): none.
        let bowtie = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        assert!(bridges(&bowtie).is_empty());
        // Two triangles joined by one edge: exactly that edge.
        let dumbbell =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(bridges(&dumbbell), vec![(2, 3)]);
        assert!(bridges(&Graph::empty(3)).is_empty());
    }

    #[test]
    fn bridges_match_brute_force() {
        let mut s = 313u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..20 {
            let n = 9;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 30 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, edges);
            let fast = bridges(&g);
            let base = connected_components(&g).len();
            let brute: Vec<(usize, usize)> = g
                .edges()
                .filter(|&(u, v)| {
                    let remaining: Vec<(usize, usize)> =
                        g.edges().filter(|&e| e != (u, v)).collect();
                    let h = Graph::from_edges(n, remaining);
                    connected_components(&h).len() > base
                })
                .collect();
            assert_eq!(fast, brute, "{g:?}");
        }
    }

    #[test]
    fn articulation_matches_brute_force() {
        // Brute force: v is a cut iff removing it increases the component
        // count among the remaining nodes of its component.
        let mut s = 777u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..25 {
            let n = 10;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 28 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, edges);
            let fast = articulation_points(&g);
            let base_comps = connected_components(&g).len();
            let brute: Vec<usize> = (0..n)
                .filter(|&v| {
                    if g.degree(v) == 0 {
                        return false;
                    }
                    let keep: Vec<usize> = (0..n).filter(|&u| u != v).collect();
                    let (sub, _) = g.induced_subgraph(&keep);
                    // Removing v removes one node; if v was a cut, the
                    // component count (ignoring v's own loss) grows.
                    connected_components(&sub).len() > base_comps
                })
                .collect();
            assert_eq!(fast, brute, "{g:?}");
        }
    }

    #[test]
    fn eccentricities_center_radius() {
        let g = Graph::path(7);
        let ecc = eccentricities(&g).unwrap();
        assert_eq!(ecc, vec![6, 5, 4, 3, 4, 5, 6]);
        assert_eq!(graph_center(&g), Some(3));
        assert_eq!(radius(&g), Some(3));
        assert_eq!(diameter(&g), Some(6));
        // Disconnected and empty.
        assert_eq!(eccentricities(&Graph::from_edges(3, [(0, 1)])), None);
        assert_eq!(graph_center(&Graph::empty(0)), None);
        assert_eq!(radius(&Graph::empty(1)), Some(0));
        // Star center.
        assert_eq!(graph_center(&Graph::star(6)), Some(0));
    }
}
