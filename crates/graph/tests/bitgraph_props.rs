//! Property tests for the word-parallel bitset primitives: every packed
//! operation must agree with a naive bit-by-bit reference, including on
//! hostile patterns — empty sets, all-ones, single bits at the 63/64/65
//! word boundaries, capacities that are not multiples of 64 — and packed
//! adjacency rows must round-trip `RandomAccessGraph` → rows → edge list
//! on both graph backends.

use mcds_check::gen::{usizes, vecs};
use mcds_check::{Property, TestResult};
use mcds_graph::bitgraph::{masked_articulation_points, ArticulationScratch, BitRows, BitSet};
use mcds_graph::{subsets, traversal, CompactGraph, Graph, RandomAccessGraph};

/// Naive boolean-vector model of a [`BitSet`].
fn model(bits: usize, nodes: &[usize]) -> Vec<bool> {
    let mut m = vec![false; bits];
    for &v in nodes {
        m[v] = true;
    }
    m
}

/// Clamps generated ids into `0..bits` (the generators don't know the
/// capacity drawn alongside them).
fn clamp(bits: usize, raw: &[usize]) -> Vec<usize> {
    raw.iter().map(|&v| v % bits).collect()
}

#[test]
fn popcount_membership_and_gap_match_naive_model() {
    Property::new("bitset_matches_bool_model").cases(128).run(
        &(usizes(1..=300), vecs(usizes(0..=1023), 0..=400)),
        |(bits, raw)| {
            let bits = *bits;
            let nodes = clamp(bits, raw);
            let m = model(bits, &nodes);
            let s = BitSet::from_nodes(bits, &nodes);
            if s.count_ones() != m.iter().filter(|&&b| b).count() {
                return TestResult::Fail("popcount diverged".into());
            }
            if (0..bits).any(|i| s.contains(i) != m[i]) {
                return TestResult::Fail("membership diverged".into());
            }
            let naive_gap = m.iter().position(|&b| !b);
            if s.first_unset() != naive_gap {
                return TestResult::Fail(format!(
                    "first_unset {:?} != naive {naive_gap:?}",
                    s.first_unset()
                ));
            }
            let naive_ones: Vec<usize> = (0..bits).filter(|&i| m[i]).collect();
            if s.to_nodes() != naive_ones {
                return TestResult::Fail("iter_ones diverged".into());
            }
            TestResult::Pass
        },
    );
}

#[test]
fn intersection_and_union_match_naive_loops() {
    Property::new("bitset_and_or_match_naive").cases(128).run(
        &(
            usizes(1..=300),
            vecs(usizes(0..=1023), 0..=300),
            vecs(usizes(0..=1023), 0..=300),
        ),
        |(bits, raw_a, raw_b)| {
            let bits = *bits;
            let (na, nb) = (clamp(bits, raw_a), clamp(bits, raw_b));
            let (ma, mb) = (model(bits, &na), model(bits, &nb));
            let (a, b) = (BitSet::from_nodes(bits, &na), BitSet::from_nodes(bits, &nb));
            let naive_and = (0..bits).filter(|&i| ma[i] && mb[i]).count();
            if a.and_count(&b) != naive_and {
                return TestResult::Fail(format!(
                    "and_count {} != naive {naive_and}",
                    a.and_count(&b)
                ));
            }
            let mut u = a.clone();
            u.or_assign(&b);
            let naive_or: Vec<usize> = (0..bits).filter(|&i| ma[i] || mb[i]).collect();
            if u.to_nodes() != naive_or {
                return TestResult::Fail("or_assign diverged".into());
            }
            TestResult::Pass
        },
    );
}

/// The explicitly hostile patterns from the issue: empty, all-ones, a
/// single bit at each side of a word boundary, capacities off the
/// 64-bit grid.
#[test]
fn hostile_patterns_are_exact() {
    for bits in [1usize, 63, 64, 65, 127, 128, 129, 200] {
        let empty = BitSet::new(bits);
        assert_eq!(empty.count_ones(), 0, "bits={bits}");
        assert_eq!(empty.first_unset(), Some(0), "bits={bits}");
        assert_eq!(empty.to_nodes(), Vec::<usize>::new());
        let all: Vec<usize> = (0..bits).collect();
        let full = BitSet::from_nodes(bits, &all);
        assert_eq!(full.count_ones(), bits, "bits={bits}");
        assert_eq!(full.first_unset(), None, "bits={bits}");
        assert_eq!(full.to_nodes(), all, "bits={bits}");
        assert_eq!(full.and_count(&empty), 0);
        let mut u = empty.clone();
        u.or_assign(&full);
        assert_eq!(u, full);
    }
    for single in [63usize, 64, 65] {
        let s = BitSet::from_nodes(130, &[single]);
        assert_eq!(s.count_ones(), 1);
        assert!(s.contains(single));
        assert!(!s.contains(single - 1) && !s.contains(single + 1));
        assert_eq!(s.to_nodes(), vec![single]);
        assert_eq!(s.first_unset(), Some(0));
    }
}

/// Random edge lists round-trip `Graph` → [`BitRows`] → edge list on
/// both backends, and the packed masked-degree equals a naive filtered
/// count.
#[test]
fn rows_roundtrip_both_backends() {
    Property::new("bitrows_roundtrip").cases(96).run(
        &(
            usizes(2..=150),
            vecs((usizes(0..=1023), usizes(0..=1023)), 0..=300),
            vecs(usizes(0..=1023), 0..=60),
        ),
        |(n, raw_edges, raw_mask)| {
            let n = *n;
            let edges: Vec<(usize, usize)> = raw_edges
                .iter()
                .map(|&(u, v)| (u % n, v % n))
                .filter(|&(u, v)| u != v)
                .collect();
            let g = Graph::from_edges(n, edges);
            let want: Vec<(usize, usize)> = (0..n)
                .flat_map(|v| {
                    g.successors(v)
                        .filter(move |&u| v < u)
                        .map(move |u| (v, u))
                        .collect::<Vec<_>>()
                })
                .collect();
            let rows = BitRows::build(&g);
            if rows.edges() != want {
                return TestResult::Fail("CSR row round-trip diverged".into());
            }
            let compact = CompactGraph::from_graph(&g);
            let crows = BitRows::build(&compact);
            if crows.edges() != want {
                return TestResult::Fail("compact row round-trip diverged".into());
            }
            let mask = BitSet::from_nodes(n, &clamp(n, raw_mask));
            for v in 0..n {
                let naive = g.successors(v).filter(|&u| mask.contains(u)).count();
                if rows.row_and_count(v, &mask) != naive {
                    return TestResult::Fail(format!("masked degree diverged at {v}"));
                }
                let mut seen = Vec::new();
                rows.for_each_and(v, &mask, |u| seen.push(u));
                let naive_list: Vec<usize> =
                    g.successors(v).filter(|&u| mask.contains(u)).collect();
                if seen != naive_list {
                    return TestResult::Fail(format!("masked row iteration diverged at {v}"));
                }
            }
            TestResult::Pass
        },
    );
}

/// Masked Tarjan equals materialize-then-Tarjan on random subsets of
/// random graphs, with the scratch reused across cases (stale timestamps
/// must never leak between masks).
#[test]
fn masked_articulation_matches_induced_reference() {
    Property::new("masked_articulation_matches_induced")
        .cases(96)
        .run(
            &(
                usizes(2..=80),
                vecs((usizes(0..=1023), usizes(0..=1023)), 0..=200),
                vecs(usizes(0..=1023), 0..=60),
            ),
            |(n, raw_edges, raw_mask)| {
                let n = *n;
                let edges: Vec<(usize, usize)> = raw_edges
                    .iter()
                    .map(|&(u, v)| (u % n, v % n))
                    .filter(|&(u, v)| u != v)
                    .collect();
                let g = Graph::from_edges(n, edges);
                let members = mcds_graph::node_set(clamp(n, raw_mask));
                let mask = BitSet::from_nodes(n, &members);
                let mut scratch = ArticulationScratch::new();
                let mut cut = BitSet::new(n);
                masked_articulation_points(&g, &mask, &mut scratch, &mut cut);
                let (sub, map) = subsets::induced_subgraph(&g, &members);
                let want: Vec<usize> = traversal::articulation_points(&sub)
                    .into_iter()
                    .map(|v| map[v])
                    .collect();
                if cut.to_nodes() != want {
                    return TestResult::Fail(format!(
                        "cut set {:?} != induced reference {want:?}",
                        cut.to_nodes()
                    ));
                }
                TestResult::Pass
            },
        );
}
