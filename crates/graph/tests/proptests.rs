//! Property-based tests for the graph substrate, over random edge lists.

// Property tests need the external `proptest` crate, which is not
// available in hermetic (offline) builds; enable with
// `cargo test --features ext-tests` after restoring the dependency in
// the workspace manifest.
#![cfg(feature = "ext-tests")]

use mcds_graph::{
    node_mask, node_set, properties, subsets,
    traversal::{bfs_distances, connected_components, BfsTree},
    DisjointSets, Graph, GraphBuilder,
};
use proptest::prelude::*;

/// Strategy: a random simple graph with up to `max_n` nodes.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 3)).prop_map(move |pairs| {
            let edges = pairs.into_iter().filter(|(u, v)| u != v);
            Graph::from_edges(n, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn edge_iterator_agrees_with_has_edge(g in graph_strategy(24)) {
        let mut count = 0usize;
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
            count += 1;
        }
        prop_assert_eq!(count, g.num_edges());
        let degree_sum: usize = (0..g.num_nodes()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn components_partition_nodes(g in graph_strategy(24)) {
        let comps = connected_components(&g);
        let all: Vec<usize> = comps.iter().flatten().copied().collect();
        prop_assert_eq!(node_set(all), (0..g.num_nodes()).collect::<Vec<_>>());
        // No edges cross components.
        for (u, v) in g.edges() {
            let cu = comps.iter().position(|c| c.contains(&u));
            let cv = comps.iter().position(|c| c.contains(&v));
            prop_assert_eq!(cu, cv);
        }
    }

    #[test]
    fn dsu_components_match_traversal(g in graph_strategy(24)) {
        let mut dsu = DisjointSets::new(g.num_nodes());
        for (u, v) in g.edges() {
            dsu.union(u, v);
        }
        prop_assert_eq!(dsu.num_sets(), connected_components(&g).len());
    }

    #[test]
    fn bfs_levels_are_consistent(g in graph_strategy(24)) {
        let t = BfsTree::rooted_at(&g, 0);
        // Edge levels differ by at most 1 within the reached set.
        for (u, v) in g.edges() {
            if let (Some(lu), Some(lv)) = (t.level(u), t.level(v)) {
                prop_assert!(lu.abs_diff(lv) <= 1);
            }
        }
        // Parent is one level up and adjacent.
        for v in 0..g.num_nodes() {
            if let Some(p) = t.parent(v) {
                prop_assert!(g.has_edge(p, v));
                prop_assert_eq!(t.level(p).unwrap() + 1, t.level(v).unwrap());
                // Canonical: p is the min-id neighbor one level up.
                let min_up = g.neighbors_iter(v)
                    .filter(|&u| t.level(u) == Some(t.level(v).unwrap() - 1))
                    .min();
                prop_assert_eq!(Some(p), min_up);
            }
        }
        // bfs_distances agrees with tree levels.
        let d = bfs_distances(&g, 0);
        for (v, &dist) in d.iter().enumerate() {
            prop_assert_eq!(t.level(v).unwrap_or(usize::MAX), dist);
        }
    }

    #[test]
    fn induced_subgraph_edge_subset(g in graph_strategy(20), keep_bits in proptest::collection::vec(any::<bool>(), 20)) {
        let keep: Vec<usize> = (0..g.num_nodes()).filter(|&v| keep_bits[v]).collect();
        let (sub, map) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.num_nodes(), keep.len());
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(map[a], map[b]));
        }
        // Every internal edge of the kept set survives.
        let mask = node_mask(g.num_nodes(), &keep);
        let internal = g.edges().filter(|&(u, v)| mask[u] && mask[v]).count();
        prop_assert_eq!(internal, sub.num_edges());
    }

    #[test]
    fn count_components_matches_induced_graph(g in graph_strategy(20), keep_bits in proptest::collection::vec(any::<bool>(), 20)) {
        let mask: Vec<bool> = (0..g.num_nodes()).map(|v| keep_bits[v]).collect();
        let keep: Vec<usize> = (0..g.num_nodes()).filter(|&v| mask[v]).collect();
        let (sub, _) = g.induced_subgraph(&keep);
        prop_assert_eq!(
            subsets::count_components(&g, &mask),
            connected_components(&sub).len()
        );
    }

    #[test]
    fn mis_predicates_are_consistent(g in graph_strategy(20)) {
        // Build a maximal independent set greedily and check the predicate
        // algebra: MIS => independent and dominating.
        let mut mis: Vec<usize> = Vec::new();
        let mut blocked = vec![false; g.num_nodes()];
        for v in 0..g.num_nodes() {
            if !blocked[v] {
                mis.push(v);
                blocked[v] = true;
                for u in g.neighbors_iter(v) {
                    blocked[u] = true;
                }
            }
        }
        prop_assert!(properties::is_independent_set(&g, &mis));
        prop_assert!(properties::is_dominating_set(&g, &mis));
        prop_assert!(properties::is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn builder_equals_direct_construction(n in 2usize..20, pairs in proptest::collection::vec((0usize..20, 0usize..20), 0..40)) {
        let edges: Vec<(usize, usize)> = pairs
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .filter(|(u, v)| u != v)
            .collect();
        let direct = Graph::from_edges(n, edges.iter().copied());
        let mut b = GraphBuilder::new(n);
        b.edges(edges);
        prop_assert_eq!(direct, b.build());
    }
}
