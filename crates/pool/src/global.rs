//! Process-wide pool configuration.
//!
//! Library layers (UDG construction, the maintenance engine) should not
//! thread a `&ThreadPool` through every signature just in case the caller
//! wants parallelism.  Instead, entry points (`mcds-cli --threads`,
//! experiment binaries' `--threads`) call [`configure`] once, and
//! libraries pick the width up with [`pool`].
//!
//! The default width is **1** — sequential — so that nothing in the
//! workspace changes behavior unless a front end opts in.  Sequential and
//! parallel runs produce identical results everywhere this workspace uses
//! the pool (see the determinism contract in the crate docs); the opt-in
//! exists so that libraries embedded in other processes never spawn
//! threads behind their host's back.

use crate::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide pool width (clamped to at least 1).
///
/// Call once at startup, before parallel regions run.  Later calls win —
/// tests use that to switch widths — but concurrent parallel regions are
/// unaffected by reconfiguration (each region snapshots its width).
pub fn configure(threads: usize) {
    CONFIGURED_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// Sets the process-wide width to [`crate::default_parallelism`].
pub fn configure_default() {
    configure(crate::default_parallelism());
}

/// The currently configured process-wide width.
pub fn threads() -> usize {
    CONFIGURED_THREADS.load(Ordering::Relaxed)
}

/// A pool handle at the configured process-wide width.
pub fn pool() -> ThreadPool {
    ThreadPool::new(threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential_and_configure_clamps() {
        // Note: this test mutates process-global state; it restores the
        // sequential default so sibling tests see the documented baseline.
        assert!(threads() >= 1);
        configure(0);
        assert_eq!(threads(), 1);
        configure(8);
        assert_eq!(threads(), 8);
        assert_eq!(pool().threads(), 8);
        configure(1);
    }
}
