//! Hermetic work-stealing parallelism for the `mcds` workspace.
//!
//! The workspace is dependency-free by design (see the workspace
//! `Cargo.toml`), so this crate provides the parallel substrate that
//! `rayon` would otherwise supply: a [`ThreadPool`] with a
//! [`ThreadPool::scope`]/[`PoolScope::spawn`] API for fire-and-forget
//! subtasks and a deterministic, order-preserving
//! [`ThreadPool::parallel_map`] for fan-out/fan-in over a work list.
//!
//! # Scheduling
//!
//! Each parallel region runs a team of scoped worker threads (one per
//! configured thread).  Spawned jobs land in per-worker deques,
//! round-robin; a worker pops its own deque from the front and, when it
//! runs dry, *steals* from the back of a sibling's deque.  The team is
//! created per region with [`std::thread::scope`], which keeps the whole
//! crate in safe Rust and lets jobs borrow from the caller's stack —
//! exactly what the sweep harness needs.  Worker startup is a few tens of
//! microseconds; the workloads this crate exists for (UDG construction,
//! experiment trials) are milliseconds to seconds per region.
//!
//! # Determinism contract
//!
//! [`ThreadPool::parallel_map`] returns results **in input order**, no
//! matter which worker ran which item or in what interleaving.  Combined
//! with per-task RNG stream splitting (`mcds_rng::split_seed`), a sweep
//! that derives each trial's generator from `(master_seed, trial_index)`
//! produces bit-identical output at any thread count — `--threads 4`
//! reproduces `--threads 1` exactly.  See `DESIGN.md` for the full
//! contract.
//!
//! ```
//! use mcds_pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.parallel_map((0..100u64).collect(), |i, x| {
//!     debug_assert_eq!(i as u64, x);
//!     x * x
//! });
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

pub mod global;

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A work-stealing thread pool of a fixed logical width.
///
/// The pool itself is a lightweight handle (the worker team is raised per
/// parallel region; see the crate docs), so it is cheap to construct,
/// clone and pass around.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool that runs parallel regions on `threads` workers.
    ///
    /// `threads` is clamped to at least 1; a one-thread pool executes
    /// everything inline on the calling thread (no workers, no locks),
    /// which is the reference schedule parallel runs must reproduce.
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// A pool as wide as [`std::thread::available_parallelism`] (falling
    /// back to 1 if the platform cannot report it).
    pub fn with_default_parallelism() -> Self {
        ThreadPool::new(default_parallelism())
    }

    /// The configured logical width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`PoolScope`] on which subtasks can be spawned.
    ///
    /// All spawned jobs complete before `scope` returns.  Jobs may borrow
    /// anything that outlives the `scope` call.  If a job panics, the
    /// panic is re-raised on the calling thread after the region drains.
    ///
    /// ```
    /// use mcds_pool::ThreadPool;
    /// use std::sync::atomic::{AtomicUsize, Ordering};
    ///
    /// let pool = ThreadPool::new(3);
    /// let hits = AtomicUsize::new(0);
    /// pool.scope(|scope| {
    ///     for _ in 0..32 {
    ///         scope.spawn(|| {
    ///             hits.fetch_add(1, Ordering::Relaxed);
    ///         });
    ///     }
    /// });
    /// assert_eq!(hits.load(Ordering::Relaxed), 32);
    /// ```
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        if self.threads == 1 {
            // Inline reference schedule: jobs run immediately on spawn.
            let shared = Shared::new(1);
            let scope = PoolScope {
                shared: &shared,
                next_queue: AtomicUsize::new(0),
                inline: true,
            };
            let result = f(&scope);
            if let Some(payload) = shared.take_panic() {
                resume_unwind(payload);
            }
            return result;
        }
        let shared = Shared::new(self.threads);
        let result = std::thread::scope(|s| {
            for worker in 0..self.threads {
                let shared = &shared;
                s.spawn(move || shared.worker_loop(worker));
            }
            // Close the region even if `f` panics, so the workers always
            // drain and exit and `std::thread::scope` can join them.
            let _guard = CloseGuard { shared: &shared };
            let scope = PoolScope {
                shared: &shared,
                next_queue: AtomicUsize::new(0),
                inline: false,
            };
            f(&scope)
        });
        if let Some(payload) = shared.take_panic() {
            resume_unwind(payload);
        }
        result
    }

    /// Applies `f` to every item concurrently and returns the results **in
    /// input order** — the cornerstone of the workspace's deterministic
    /// parallelism (see the crate docs).
    ///
    /// `f` receives `(index, item)`.  With one thread (or at most one
    /// item) the map runs inline, sequentially, in index order; that
    /// schedule is what wider pools reproduce.  A panic inside `f` is
    /// re-raised on the calling thread.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let n = items.len();
        let (tx, rx) = mpsc::channel::<(usize, Result<R, PanicPayload>)>();
        let f = &f;
        self.scope(move |scope| {
            for (i, item) in items.into_iter().enumerate() {
                let tx = tx.clone();
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                    // The region owner holds the receiver for exactly `n`
                    // messages; a send can only fail if it panicked, in
                    // which case the job outcome is moot.
                    let _ = tx.send((i, out.map_err(|p| p as PanicPayload)));
                });
            }
            drop(tx);
            let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
            for (i, out) in rx {
                match out {
                    Ok(r) => slots[i] = Some(r),
                    Err(payload) => resume_unwind(payload),
                }
            }
            slots
                .into_iter()
                .map(|s| s.expect("every spawned job reports exactly once"))
                .collect()
        })
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::with_default_parallelism()
    }
}

/// The number of logical CPUs, or 1 when the platform will not say.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Handle for spawning subtasks inside [`ThreadPool::scope`].
pub struct PoolScope<'pool, 'env> {
    shared: &'pool Shared<'env>,
    next_queue: AtomicUsize,
    inline: bool,
}

impl<'env> PoolScope<'_, 'env> {
    /// Queues `job` for execution by the region's workers.
    ///
    /// Jobs are dealt to per-worker deques round-robin; idle workers
    /// steal.  On a one-thread pool the job runs immediately, inline.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'env) {
        if self.inline {
            let start = mcds_obs::enabled().then(std::time::Instant::now);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                self.shared.record_panic(payload);
            }
            if let Some(start) = start {
                mcds_obs::counter!("pool.jobs_spawned");
                mcds_obs::observe_duration("pool.task_ns", start.elapsed());
            }
            return;
        }
        let target = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.push(target, Box::new(job));
    }
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope")
            .field("workers", &self.shared.queues.len())
            .field("inline", &self.inline)
            .finish()
    }
}

struct CloseGuard<'pool, 'env> {
    shared: &'pool Shared<'env>,
}

impl Drop for CloseGuard<'_, '_> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

/// Region state shared between the owner thread and the worker team.
struct Shared<'env> {
    /// One deque per worker; owners pop the front, thieves pop the back.
    queues: Vec<Mutex<VecDeque<Job<'env>>>>,
    /// Progress accounting, guarded by one mutex so the condvar protocol
    /// has a single source of truth.
    state: Mutex<RegionState>,
    idle: Condvar,
    first_panic: Mutex<Option<PanicPayload>>,
}

struct RegionState {
    /// Jobs spawned and not yet finished (queued or running).
    pending: usize,
    /// Jobs queued and not yet claimed by any worker.
    unclaimed: usize,
    /// The region owner finished spawning; workers may exit once
    /// `pending` reaches zero.
    closed: bool,
}

impl<'env> Shared<'env> {
    fn new(workers: usize) -> Self {
        Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(RegionState {
                pending: 0,
                unclaimed: 0,
                closed: false,
            }),
            idle: Condvar::new(),
            first_panic: Mutex::new(None),
        }
    }

    fn push(&self, target: usize, job: Job<'env>) {
        let depth = {
            let mut st = self.state.lock().expect("pool state poisoned");
            st.pending += 1;
            st.unclaimed += 1;
            st.unclaimed
        };
        mcds_obs::counter!("pool.jobs_spawned");
        mcds_obs::gauge_set("pool.queue_depth", depth as i64);
        self.queues[target]
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
        self.idle.notify_one();
    }

    /// Claims one job: own deque front first, then steal siblings' backs.
    fn grab(&self, me: usize) -> Option<Job<'env>> {
        let width = self.queues.len();
        for offset in 0..width {
            let k = (me + offset) % width;
            let mut q = self.queues[k].lock().expect("pool queue poisoned");
            let job = if offset == 0 {
                q.pop_front()
            } else {
                q.pop_back()
            };
            if let Some(job) = job {
                drop(q);
                if offset > 0 && mcds_obs::enabled() {
                    // A claim from a sibling's deque is a steal.
                    mcds_obs::counter("pool.steals").incr();
                    mcds_obs::counter(&format!("pool.worker.{me}.steals")).incr();
                }
                let mut st = self.state.lock().expect("pool state poisoned");
                st.unclaimed -= 1;
                mcds_obs::gauge_set("pool.queue_depth", st.unclaimed as i64);
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(&self, me: usize) {
        loop {
            if let Some(job) = self.grab(me) {
                let start = mcds_obs::enabled().then(std::time::Instant::now);
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    self.record_panic(payload);
                }
                if let Some(start) = start {
                    mcds_obs::observe_duration("pool.task_ns", start.elapsed());
                    mcds_obs::counter(&format!("pool.worker.{me}.jobs")).incr();
                }
                let mut st = self.state.lock().expect("pool state poisoned");
                st.pending -= 1;
                if st.pending == 0 && st.closed {
                    self.idle.notify_all();
                }
                continue;
            }
            let mut st = self.state.lock().expect("pool state poisoned");
            loop {
                if st.closed && st.pending == 0 {
                    return;
                }
                if st.unclaimed > 0 {
                    // A job was (or is being) published; go claim it.
                    break;
                }
                st = self.idle.wait(st).expect("pool state poisoned");
            }
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("pool state poisoned");
        st.closed = true;
        drop(st);
        self.idle.notify_all();
    }

    fn record_panic(&self, payload: PanicPayload) {
        let mut slot = self.first_panic.lock().expect("panic slot poisoned");
        slot.get_or_insert(payload);
    }

    fn take_panic(&self) -> Option<PanicPayload> {
        self.first_panic.lock().expect("panic slot poisoned").take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let got = pool.parallel_map(items.clone(), |_, x| x * 3 + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_passes_matching_indices() {
        let pool = ThreadPool::new(4);
        let got = pool.parallel_map((0..64usize).collect(), |i, x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let pool = ThreadPool::new(4);
        let empty: Vec<u8> = pool.parallel_map(Vec::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(pool.parallel_map(vec![9], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn scope_runs_all_spawned_jobs() {
        let pool = ThreadPool::new(3);
        let sum = AtomicU64::new(0);
        pool.scope(|scope| {
            for k in 1..=100u64 {
                let sum = &sum;
                scope.spawn(move || {
                    sum.fetch_add(k, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn jobs_can_borrow_caller_state() {
        let pool = ThreadPool::new(2);
        let data: Vec<u64> = (0..32).collect();
        let doubled = pool.parallel_map((0..data.len()).collect(), |_, i| data[i] * 2);
        assert_eq!(doubled[31], 62);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // Front-load all the heavy items; a non-stealing scheduler with a
        // static split would serialize them on one worker.  We only check
        // correctness here — the schedule itself is unobservable by design.
        let pool = ThreadPool::new(4);
        let got = pool.parallel_map((0..40u64).collect(), |i, x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(got, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn zero_width_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.parallel_map(vec![1, 2], |_, x| x), vec![1, 2]);
    }

    #[test]
    fn nested_parallel_maps_work() {
        let outer = ThreadPool::new(2);
        let inner_width = 2;
        let got = outer.parallel_map((0..4u64).collect(), move |_, x| {
            let inner = ThreadPool::new(inner_width);
            inner
                .parallel_map((0..8u64).collect(), move |_, y| x * 8 + y)
                .iter()
                .sum::<u64>()
        });
        assert_eq!(got.iter().sum::<u64>(), (0..32u64).sum());
    }

    #[test]
    fn panic_in_job_propagates() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.parallel_map((0..16).collect::<Vec<u32>>(), |_, x| {
                    assert!(x != 7, "boom at {x}");
                    x
                })
            }));
            assert!(result.is_err(), "threads = {threads}");
        }
    }

    #[test]
    fn scope_panic_propagates_and_region_drains() {
        let pool = ThreadPool::new(2);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                for k in 0..8usize {
                    let done = &done;
                    scope.spawn(move || {
                        if k == 3 {
                            panic!("job 3 fails");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn obs_counters_aggregate_across_workers() {
        // Concurrent increments from real worker threads must never lose
        // updates, and the pool's own instrumentation must fire.
        mcds_obs::test_support::with_enabled(true, || {
            let pool = ThreadPool::new(4);
            let counter = mcds_obs::counter("test.pool.concurrent_increments");
            let before = counter.value();
            let spawned_before = mcds_obs::counter_value("pool.jobs_spawned");
            let tasks_before = mcds_obs::histogram("pool.task_ns").count();
            pool.scope(|scope| {
                for _ in 0..256 {
                    let counter = counter.clone();
                    scope.spawn(move || counter.incr());
                }
            });
            assert_eq!(counter.value() - before, 256);
            assert!(mcds_obs::counter_value("pool.jobs_spawned") - spawned_before >= 256);
            assert!(mcds_obs::histogram("pool.task_ns").count() - tasks_before >= 256);
        });
    }

    #[test]
    fn default_pool_reports_width() {
        let pool = ThreadPool::default();
        assert!(pool.threads() >= 1);
        assert_eq!(pool.threads(), default_parallelism());
    }
}
