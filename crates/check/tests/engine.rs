//! Meta-tests of the checking engine itself: end-to-end failure
//! reports, corpus replay determinism across thread counts, and the
//! differential oracle run as a real property.

use mcds_check::corpus::Case;
use mcds_check::gen::{usizes, vecs};
use mcds_check::oracle::{check_oracle_case, oracle_cases};
use mcds_check::runner::replay_outcome;
use mcds_check::{prop_assert, Property, TestResult};
use mcds_pool::ThreadPool;

#[test]
fn oracle_property_holds_on_a_quick_random_batch() {
    Property::new("oracle_quick_batch")
        .cases(40)
        .run(&oracle_cases(14), check_oracle_case);
}

#[test]
fn run_panics_with_a_replayable_report() {
    let result = std::panic::catch_unwind(|| {
        Property::new("meta_failing")
            .cases(50)
            .run(&vecs(usizes(0..=40), 0..=12), |v| {
                prop_assert!(v.len() < 4, "length {} reached 4", v.len());
                TestResult::Pass
            });
    });
    let report = *result
        .expect_err("must panic")
        .downcast::<String>()
        .unwrap();
    assert!(
        report.contains("property `meta_failing` failed"),
        "{report}"
    );
    assert!(report.contains("MCDS_CHECK_REPLAY="), "{report}");
    assert!(report.contains("shrunk counterexample"), "{report}");
    // The shrunk vector is minimal for `len >= 4`: exactly 4 elements.
    let shrunk_line = report
        .lines()
        .find(|l| l.contains("shrunk counterexample"))
        .unwrap();
    assert_eq!(shrunk_line.matches(',').count(), 3, "{shrunk_line}");
}

/// The corpus replay contract of ISSUE satellite 4: one `.case` entry
/// must reproduce the identical outcome at any thread count.  The
/// outcome string is computed through `replay_outcome` inside worker
/// pools of width 1 and 4 and diffed.
#[test]
fn corpus_replay_is_thread_count_invariant() {
    let case = Case {
        prop: "pool_invariance".into(),
        master: 0xDEAD_BEEF,
        stream: 3,
    };
    // A property with a real failure surface so the replay exercises
    // generation, failure, and shrinking — not just a pass.
    let outcome_under = |threads: usize| -> Vec<String> {
        let pool = ThreadPool::new(threads);
        let cases: Vec<Case> = (0..8).map(|_| case.clone()).collect();
        pool.parallel_map(cases, |_i, c| {
            replay_outcome(&c, &vecs(usizes(0..=99), 0..=16), |v| {
                if v.iter().sum::<usize>() >= 50 {
                    TestResult::Fail(format!("sum {} >= 50", v.iter().sum::<usize>()))
                } else {
                    TestResult::Pass
                }
            })
        })
    };
    let t1 = outcome_under(1);
    let t4 = outcome_under(4);
    assert_eq!(t1, t4, "replay outcome differs between 1 and 4 threads");
    // All 8 replays of the same case agree with each other too.
    assert!(t1.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn oracle_replay_is_thread_count_invariant() {
    // Same contract, through the heavyweight differential oracle.
    let case = Case {
        prop: "oracle_pool_invariance".into(),
        master: 0xC0FFEE,
        stream: 11,
    };
    let gen = oracle_cases(12);
    let outcome_under = |threads: usize| {
        ThreadPool::new(threads).parallel_map(vec![case.clone(); 4], |_i, c| {
            replay_outcome(&c, &gen, check_oracle_case)
        })
    };
    assert_eq!(outcome_under(1), outcome_under(4));
}

#[test]
fn check_macro_compiles_and_runs() {
    mcds_check::check!(macro_smoke, cases = 16, usizes(1..=9), |v| {
        prop_assert!(*v >= 1 && *v <= 9);
        TestResult::Pass
    });
}
