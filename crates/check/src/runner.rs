//! The property runner: corpus replay, random exploration, shrinking,
//! and failure reporting.
//!
//! # Seed derivation
//!
//! Every run has a *master seed* (default [`DEFAULT_SEED`], overridable
//! with [`Property::seed`] or the `MCDS_CHECK_SEED` environment
//! variable).  The property's name is folded in with
//! [`mcds_rng::split_seed`], and case `i` draws from
//! `StdRng::from_stream(property_master, i)` — so each case's input is a
//! pure function of `(seed, name, i)`, independent of execution order,
//! thread count, and every other property in the binary.
//!
//! # Replay
//!
//! A failure report prints `MCDS_CHECK_REPLAY=<master>:<stream>`.
//! Exporting that variable makes every property in the process replay
//! exactly that one case (properties whose derived master does not match
//! simply pass), which turns a red CI log into a local single-case
//! debugging session.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use mcds_rng::rngs::StdRng;
use mcds_rng::{split_seed, SeedableRng};

use crate::corpus::{self, Case};
use crate::gen::Gen;

/// The default master seed: the paper's venue year, ICDCS 2008.
pub const DEFAULT_SEED: u64 = 2008;

/// The default number of passing cases a property must accumulate.
pub const DEFAULT_CASES: usize = 64;

/// The outcome of running a property on one generated value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestResult {
    /// The property held.
    Pass,
    /// The input did not satisfy the property's preconditions; the case
    /// counts toward neither passes nor failures.
    Discard,
    /// The property failed with the given message.
    Fail(String),
}

/// Runner configuration (normally reached through the [`Property`]
/// builder methods).
#[derive(Debug, Clone)]
pub struct Config {
    /// Passing cases required (default [`DEFAULT_CASES`]).
    pub cases: usize,
    /// Master seed (default [`DEFAULT_SEED`]).
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_steps: usize,
    /// Directory of `*.case` regression files to replay before random
    /// exploration, and into which new failures are persisted.
    pub corpus_dir: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            max_shrink_steps: 1000,
            corpus_dir: None,
        }
    }
}

/// Statistics of a passing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Random cases that passed.
    pub cases: usize,
    /// Cases discarded by `prop_assume!`.
    pub discards: usize,
    /// Corpus entries replayed (all passed).
    pub corpus_replayed: usize,
    /// True if exploration stopped early because the discard budget
    /// (10× the case count) ran out.  [`Property::run`] treats this as
    /// an error; `run_report` callers can inspect it.
    pub gave_up: bool,
}

/// A failed property: the replay coordinates, the original failing
/// input, and the shrunk counterexample.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// The property name.
    pub property: String,
    /// The derived master seed generation used (print-ready for
    /// `MCDS_CHECK_REPLAY`).
    pub master: u64,
    /// The failing case's stream index.
    pub stream: u64,
    /// The input as originally generated.
    pub original: T,
    /// The smallest failing input shrinking reached (equals `original`
    /// when nothing smaller failed).
    pub shrunk: T,
    /// Property evaluations spent shrinking.
    pub shrink_steps: usize,
    /// The failure message of the *shrunk* counterexample.
    pub message: String,
    /// The corpus file this failure was replayed from, if any.
    pub replayed_from: Option<PathBuf>,
    /// Where the failure was persisted, if a corpus directory is
    /// configured and the write succeeded.
    pub persisted_to: Option<PathBuf>,
}

impl<T: Debug> Failure<T> {
    /// The human-readable report [`Property::run`] panics with.
    pub fn report(&self) -> String {
        let mut out = format!(
            "property `{}` failed\n  replay: MCDS_CHECK_REPLAY={}:{} (master:stream)\n",
            self.property, self.master, self.stream
        );
        if let Some(path) = &self.replayed_from {
            out.push_str(&format!("  replayed from corpus: {}\n", path.display()));
        }
        out.push_str(&format!(
            "  original input (case {}): {:?}\n  shrunk counterexample ({} steps): {:?}\n  failure: {}\n",
            self.stream, self.original, self.shrink_steps, self.shrunk, self.message
        ));
        if let Some(path) = &self.persisted_to {
            out.push_str(&format!("  persisted to corpus: {}\n", path.display()));
        }
        out
    }
}

/// A named property with its run configuration.  See the crate docs for
/// an end-to-end example.
#[derive(Debug, Clone)]
pub struct Property {
    name: String,
    config: Config,
}

impl Property {
    /// A property named `name` with default configuration, honoring the
    /// `MCDS_CHECK_SEED` and `MCDS_CHECK_CASES` environment overrides.
    pub fn new(name: &str) -> Self {
        let mut config = Config::default();
        if let Some(seed) = env_u64("MCDS_CHECK_SEED") {
            config.seed = seed;
        }
        if let Some(cases) = env_u64("MCDS_CHECK_CASES") {
            config.cases = cases as usize;
        }
        Property {
            name: name.to_string(),
            config,
        }
    }

    /// Sets the number of passing cases required.
    pub fn cases(mut self, cases: usize) -> Self {
        self.config.cases = cases;
        self
    }

    /// Sets the master seed (still overridden by `MCDS_CHECK_SEED` set
    /// in [`Property::new`] only if the variable is present).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Caps the property evaluations spent shrinking one failure.
    pub fn max_shrink_steps(mut self, steps: usize) -> Self {
        self.config.max_shrink_steps = steps;
        self
    }

    /// Points the property at a regression-corpus directory: matching
    /// `*.case` files replay before random exploration, and new
    /// failures are persisted there.
    pub fn corpus(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.corpus_dir = Some(dir.into());
        self
    }

    /// The property's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The derived master seed this property generates from.
    pub fn derived_master(&self) -> u64 {
        split_seed(self.config.seed, name_hash(&self.name))
    }

    /// Runs the property, panicking with a [`Failure::report`] on the
    /// first (shrunk) counterexample, or if the discard budget runs out.
    pub fn run<G, P>(&self, gen: &G, prop: P)
    where
        G: Gen,
        P: Fn(&G::Value) -> TestResult,
    {
        match self.run_report(gen, prop) {
            Ok(stats) if stats.gave_up => panic!(
                "property `{}` gave up: {} discards before reaching {} cases \
                 (weaken the prop_assume! or strengthen the generator)",
                self.name, stats.discards, self.config.cases
            ),
            Ok(_) => {}
            Err(failure) => panic!("{}", failure.report()),
        }
    }

    /// Runs the property and returns the outcome instead of panicking —
    /// the meta-testable core of [`Property::run`].
    ///
    /// # Errors
    ///
    /// The shrunk [`Failure`] of the first counterexample found.
    pub fn run_report<G, P>(&self, gen: &G, prop: P) -> Result<RunStats, Box<Failure<G::Value>>>
    where
        G: Gen,
        P: Fn(&G::Value) -> TestResult,
    {
        let master = self.derived_master();

        // Focused replay of a single case, when requested.
        if let Some((replay_master, replay_stream)) = env_replay() {
            if replay_master == master {
                if let Some(failure) = self.run_case(gen, &prop, master, replay_stream, None) {
                    return Err(failure);
                }
            }
            return Ok(RunStats::default());
        }

        let mut stats = RunStats::default();

        // Phase 1: replay the regression corpus.
        if let Some(dir) = &self.config.corpus_dir {
            let entries = corpus::load_dir(dir)
                .unwrap_or_else(|e| panic!("property `{}`: corpus: {e}", self.name));
            for (path, case) in entries {
                if case.prop != self.name {
                    continue;
                }
                if let Some(failure) =
                    self.run_case(gen, &prop, case.master, case.stream, Some(path))
                {
                    return Err(failure);
                }
                stats.corpus_replayed += 1;
            }
        }

        // Phase 2: random exploration on split streams.
        let max_attempts = self.config.cases.saturating_mul(10).max(1);
        let mut stream = 0u64;
        while stats.cases < self.config.cases {
            if (stream as usize) >= max_attempts {
                stats.gave_up = true;
                return Ok(stats);
            }
            let value = gen.generate(&mut StdRng::from_stream(master, stream));
            match run_protected(&prop, &value) {
                TestResult::Pass => stats.cases += 1,
                TestResult::Discard => stats.discards += 1,
                TestResult::Fail(message) => {
                    let mut failure = self.shrink(gen, &prop, master, stream, value, message);
                    if let Some(dir) = &self.config.corpus_dir {
                        let case = Case {
                            prop: self.name.clone(),
                            master,
                            stream,
                        };
                        // Persistence is best-effort: a read-only
                        // checkout must not mask the real failure.
                        failure.persisted_to = corpus::save_case(dir, &case).ok();
                    }
                    return Err(failure);
                }
            }
            stream += 1;
        }
        Ok(stats)
    }

    /// Replays one `(master, stream)` case: generate, test, and shrink
    /// on failure.  Returns `None` when the case passes or discards.
    fn run_case<G, P>(
        &self,
        gen: &G,
        prop: &P,
        master: u64,
        stream: u64,
        replayed_from: Option<PathBuf>,
    ) -> Option<Box<Failure<G::Value>>>
    where
        G: Gen,
        P: Fn(&G::Value) -> TestResult,
    {
        let value = gen.generate(&mut StdRng::from_stream(master, stream));
        match run_protected(prop, &value) {
            TestResult::Pass | TestResult::Discard => None,
            TestResult::Fail(message) => {
                let mut failure = self.shrink(gen, prop, master, stream, value, message);
                failure.replayed_from = replayed_from;
                Some(failure)
            }
        }
    }

    /// Greedy shrink descent: try candidates in generator order, move to
    /// the first that still fails, repeat until a local minimum or the
    /// step budget.
    fn shrink<G, P>(
        &self,
        gen: &G,
        prop: &P,
        master: u64,
        stream: u64,
        original: G::Value,
        mut message: String,
    ) -> Box<Failure<G::Value>>
    where
        G: Gen,
        P: Fn(&G::Value) -> TestResult,
    {
        let mut current = original.clone();
        let mut steps = 0usize;
        'descend: while steps < self.config.max_shrink_steps {
            for candidate in gen.shrink(&current) {
                steps += 1;
                if let TestResult::Fail(m) = run_protected(prop, &candidate) {
                    current = candidate;
                    message = m;
                    continue 'descend;
                }
                if steps >= self.config.max_shrink_steps {
                    break 'descend;
                }
            }
            break; // No candidate failed: `current` is locally minimal.
        }
        Box::new(Failure {
            property: self.name.clone(),
            master,
            stream,
            original,
            shrunk: current,
            shrink_steps: steps,
            message,
            replayed_from: None,
            persisted_to: None,
        })
    }
}

/// Replays one corpus [`Case`] against a generator and property,
/// returning a canonical outcome string (`"pass"`, `"discard"`, or the
/// full shrunk failure report).
///
/// The string is a pure function of the case and the code under test —
/// no clocks, no thread identity — which is what the thread-count
/// invariance regression tests diff.
pub fn replay_outcome<G, P>(case: &Case, gen: &G, prop: P) -> String
where
    G: Gen,
    P: Fn(&G::Value) -> TestResult,
{
    let value = gen.generate(&mut StdRng::from_stream(case.master, case.stream));
    match run_protected(&prop, &value) {
        TestResult::Pass => "pass".to_string(),
        TestResult::Discard => "discard".to_string(),
        TestResult::Fail(message) => {
            let failure = Property::new(&case.prop).shrink(
                gen,
                &prop,
                case.master,
                case.stream,
                value,
                message,
            );
            failure.report()
        }
    }
}

/// Runs the property, converting panics (plain `assert!` in ported
/// suites) into [`TestResult::Fail`] so they shrink like any other
/// failure.
fn run_protected<T, P>(prop: &P, value: &T) -> TestResult
where
    P: Fn(&T) -> TestResult,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panicked with a non-string payload".to_string()
            };
            TestResult::Fail(format!("panic: {msg}"))
        }
    }
}

/// FNV-1a, folding a property name into the seed space.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{key} must be a u64, got `{raw}`"),
    }
}

/// Parses `MCDS_CHECK_REPLAY=<master>:<stream>`.
fn env_replay() -> Option<(u64, u64)> {
    let raw = std::env::var("MCDS_CHECK_REPLAY").ok()?;
    let parsed = raw
        .split_once(':')
        .and_then(|(m, s)| Some((m.parse().ok()?, s.parse().ok()?)));
    match parsed {
        Some(pair) => Some(pair),
        None => panic!("MCDS_CHECK_REPLAY must be `<master>:<stream>`, got `{raw}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{usizes, vecs};

    #[test]
    fn passing_property_reports_stats() {
        let stats = Property::new("always_passes")
            .cases(40)
            .run_report(&usizes(0..=10), |_| TestResult::Pass)
            .unwrap();
        assert_eq!(stats.cases, 40);
        assert_eq!(stats.discards, 0);
        assert!(!stats.gave_up);
    }

    #[test]
    fn discards_do_not_count_as_cases() {
        let stats = Property::new("half_discarded")
            .cases(30)
            .run_report(&usizes(0..=9), |v| {
                if *v < 5 {
                    TestResult::Discard
                } else {
                    TestResult::Pass
                }
            })
            .unwrap();
        assert_eq!(stats.cases, 30);
        assert!(stats.discards > 0);
    }

    #[test]
    fn impossible_assumption_gives_up() {
        let stats = Property::new("always_discarded")
            .cases(10)
            .run_report(&usizes(0..=9), |_| TestResult::Discard)
            .unwrap();
        assert!(stats.gave_up);
        assert_eq!(stats.cases, 0);
    }

    #[test]
    fn failure_shrinks_to_the_minimal_counterexample() {
        // Fails iff any element is >= 10: the unique minimal failing
        // input under this generator is the one-element vector [10].
        let failure = Property::new("all_elements_small")
            .cases(200)
            .run_report(&vecs(usizes(0..=100), 0..=30), |v| {
                if v.iter().any(|&x| x >= 10) {
                    TestResult::Fail(format!("element >= 10 in {v:?}"))
                } else {
                    TestResult::Pass
                }
            })
            .expect_err("property must fail");
        assert_eq!(failure.shrunk, vec![10], "not fully shrunk");
        assert!(failure.shrunk.len() <= failure.original.len());
        assert!(failure.shrink_steps > 0);
        let report = failure.report();
        assert!(report.contains("MCDS_CHECK_REPLAY="), "{report}");
        assert!(report.contains(&format!("{}:{}", failure.master, failure.stream)));
        assert!(report.contains("[10]"), "{report}");
    }

    #[test]
    fn failures_are_deterministic_across_runs() {
        let run = || {
            Property::new("det")
                .cases(100)
                .run_report(&vecs(usizes(0..=50), 0..=20), |v| {
                    if v.len() >= 3 {
                        TestResult::Fail("too long".into())
                    } else {
                        TestResult::Pass
                    }
                })
                .expect_err("fails")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.original, b.original);
        assert_eq!(a.shrunk, b.shrunk);
        assert_eq!(a.report(), b.report());
        assert_eq!(a.shrunk.len(), 3, "minimal length for `len >= 3`");
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let failure = Property::new("panicky")
            .cases(50)
            .run_report(&usizes(0..=100), |v| {
                assert!(*v < 7, "boom at {v}");
                TestResult::Pass
            })
            .expect_err("must fail");
        assert_eq!(failure.shrunk, 7);
        assert!(failure.message.contains("panic"), "{}", failure.message);
        assert!(failure.message.contains("boom"), "{}", failure.message);
    }

    #[test]
    fn different_properties_draw_different_streams() {
        let value_of = |name: &str| {
            let p = Property::new(name);
            let mut rng = StdRng::from_stream(p.derived_master(), 0);
            vecs(usizes(0..=1000), 5..=5).generate(&mut rng)
        };
        assert_ne!(value_of("prop_a"), value_of("prop_b"));
    }

    #[test]
    fn seed_changes_the_explored_inputs() {
        let explore = |seed: u64| {
            let p = Property::new("seeded").seed(seed);
            let mut rng = StdRng::from_stream(p.derived_master(), 3);
            usizes(0..=1_000_000).generate(&mut rng)
        };
        assert_eq!(explore(1), explore(1));
        assert_ne!(explore(1), explore(2));
    }

    #[test]
    fn replay_outcome_is_canonical() {
        let case = Case {
            prop: "replayable".into(),
            master: 99,
            stream: 4,
        };
        let gen = vecs(usizes(0..=20), 0..=10);
        let pass = replay_outcome(&case, &gen, |_| TestResult::Pass);
        assert_eq!(pass, "pass");
        let fail_a = replay_outcome(&case, &gen, |v| {
            if v.iter().sum::<usize>() > 0 {
                TestResult::Fail("nonzero".into())
            } else {
                TestResult::Pass
            }
        });
        let fail_b = replay_outcome(&case, &gen, |v| {
            if v.iter().sum::<usize>() > 0 {
                TestResult::Fail("nonzero".into())
            } else {
                TestResult::Pass
            }
        });
        assert_eq!(fail_a, fail_b);
        assert!(fail_a == "pass" || fail_a.contains("replayable"));
    }

    #[test]
    fn corpus_failures_persist_and_replay_first() {
        let dir =
            std::env::temp_dir().join(format!("mcds-check-runner-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gen = usizes(0..=1000);
        let prop = |v: &usize| {
            if *v >= 500 {
                TestResult::Fail(format!("{v} too big"))
            } else {
                TestResult::Pass
            }
        };
        let failure = Property::new("persists")
            .cases(100)
            .corpus(&dir)
            .run_report(&gen, prop)
            .expect_err("must fail");
        let persisted = failure.persisted_to.clone().expect("persisted");
        assert!(persisted.exists());
        assert_eq!(failure.shrunk, 500);

        // A second run replays the corpus entry before exploring and
        // reproduces the identical shrunk counterexample.
        let replayed = Property::new("persists")
            .cases(100)
            .corpus(&dir)
            .run_report(&gen, prop)
            .expect_err("corpus replay must fail");
        assert_eq!(replayed.replayed_from.as_deref(), Some(persisted.as_path()));
        assert_eq!(replayed.shrunk, failure.shrunk);
        assert_eq!(replayed.stream, failure.stream);

        // Cases for other properties are skipped.
        let stats = Property::new("unrelated")
            .cases(5)
            .corpus(&dir)
            .run_report(&gen, |_| TestResult::Pass)
            .unwrap();
        assert_eq!(stats.corpus_replayed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
