//! Differential checking of the fault-tolerant `(k, m)` backbone family.
//!
//! The classic oracle ([`crate::oracle::check_oracle_case`]) pins the
//! paper's two-phased constructions to the exact `γ_c`.  This module
//! does the same for the robustness extension of [`mcds_cds::fault`]:
//! on the giant component of a random small deployment it solves the
//! `(1, m)` and `(2, m)` variants for every `m ∈ 1..=3` and checks each
//! output against the *independent* exact-side predicates of
//! [`mcds_exact`] (`is_m_dominating`, `is_biconnected`) rather than the
//! construction's own verifier — a genuine differential check across
//! two implementations of the contract:
//!
//! * every `(1, m)` output is a connected, m-fold dominating set,
//! * the `(1, 2)` output is no smaller than the exact `(1, 2)`-CDS
//!   optimum of [`mcds_exact::try_min_12cds`] (small instances, bounded
//!   budget),
//! * on biconnected giants, every `(2, m)` output is biconnected and
//!   m-fold dominating, and the m-aware prune
//!   ([`mcds_cds::fault::prune_m_cds`]) is contract-preserving and
//!   idempotent on it.
//!
//! Giants that are not themselves 2-vertex-connected cannot host a
//! biconnected backbone, so the `(2, m)` checks apply only when the
//! giant is biconnected (the `(1, m)` checks always run).

use mcds_cds::{fault, Algorithm, Solver};
use mcds_graph::{properties, traversal::largest_component};
use mcds_udg::Udg;

use crate::oracle::OracleCase;
use crate::runner::TestResult;

/// Node count up to which the exact `(1, 2)`-CDS oracle is consulted.
/// Raised from 14 after the oracle's branch & bound gained forced-node
/// pre-application and a top-r gains bound (see `mcds_exact::fault`).
pub const MAX_12CDS_NODES: usize = 16;

/// Branch & bound step budget for the `(1, 2)` oracle; exhaustion skips
/// the optimality floor for that case (the structural checks still run).
const ORACLE_BUDGET: u64 = 2_000_000;

/// Runs the fault-tolerant family check on one [`OracleCase`].
///
/// Returns [`TestResult::Discard`] when the giant component has fewer
/// than 2 nodes, [`TestResult::Fail`] on the first violated invariant,
/// and [`TestResult::Pass`] otherwise.
pub fn check_fault_case(case: &OracleCase) -> TestResult {
    let udg = Udg::build(case.points.clone());
    let giant = largest_component(udg.graph());
    if giant.len() < 2 {
        return TestResult::Discard;
    }
    let sub = udg.restricted_to(&giant);
    let g = sub.graph();
    let n = g.num_nodes();

    // (1, m): connected + m-fold dominating for every family member.
    for m in 1..=3 {
        let sol = match Solver::new(Algorithm::GreedyConnect).m(m).solve(g) {
            Ok(sol) => sol,
            Err(e) => {
                return TestResult::Fail(format!(
                    "{:?}: (1,{m}) solve errored on a connected instance: {e}",
                    case.kind
                ))
            }
        };
        let nodes = sol.nodes();
        if !mcds_exact::is_m_dominating(g, nodes, m) {
            return TestResult::Fail(format!(
                "{:?}: (1,{m}) output {nodes:?} is not {m}-fold dominating",
                case.kind
            ));
        }
        if !properties::is_connected_dominating_set(g, nodes) {
            return TestResult::Fail(format!(
                "{:?}: (1,{m}) output {nodes:?} is not a connected dominating set",
                case.kind
            ));
        }
        // Exact floor for the (1, 2) member on small instances.
        if m == 2 && n <= MAX_12CDS_NODES {
            if let Ok(Some(opt)) = mcds_exact::try_min_12cds(g, ORACLE_BUDGET) {
                if nodes.len() < opt.len() {
                    return TestResult::Fail(format!(
                        "{:?}: (1,2) output of {} nodes \"beat\" the exact optimum {} — \
                         an exact-solver bug",
                        case.kind,
                        nodes.len(),
                        opt.len()
                    ));
                }
            }
        }
    }

    // (2, m): only a biconnected giant can host a biconnected backbone.
    let all: Vec<usize> = (0..n).collect();
    if !mcds_exact::is_biconnected(g, &all) {
        return TestResult::Pass;
    }
    for m in 1..=3 {
        let sol = match Solver::new(Algorithm::GreedyConnect)
            .m(m)
            .biconnect(true)
            .solve(g)
        {
            Ok(sol) => sol,
            Err(e) => {
                return TestResult::Fail(format!(
                    "{:?}: (2,{m}) solve errored on a biconnected instance: {e}",
                    case.kind
                ))
            }
        };
        let nodes = sol.nodes().to_vec();
        if !mcds_exact::is_biconnected(g, &nodes) {
            return TestResult::Fail(format!(
                "{:?}: (2,{m}) output {nodes:?} is not biconnected",
                case.kind
            ));
        }
        if !mcds_exact::is_m_dominating(g, &nodes, m) {
            return TestResult::Fail(format!(
                "{:?}: (2,{m}) output {nodes:?} is not {m}-fold dominating",
                case.kind
            ));
        }

        // The m-aware prune must preserve the (2, m) contract and be
        // idempotent.
        let once = match fault::prune_m_cds(g, &nodes, m, true) {
            Ok(set) => set,
            Err(e) => {
                return TestResult::Fail(format!("{:?}: (2,{m}) prune failed: {e}", case.kind))
            }
        };
        if !mcds_exact::is_biconnected(g, &once) || !mcds_exact::is_m_dominating(g, &once, m) {
            return TestResult::Fail(format!(
                "{:?}: (2,{m}) pruned set {once:?} broke the contract",
                case.kind
            ));
        }
        let twice = match fault::prune_m_cds(g, &once, m, true) {
            Ok(set) => set,
            Err(e) => {
                return TestResult::Fail(format!("{:?}: (2,{m}) re-prune failed: {e}", case.kind))
            }
        };
        if twice != once {
            return TestResult::Fail(format!(
                "{:?}: (2,{m}) prune not idempotent: {once:?} -> {twice:?}",
                case.kind
            ));
        }
    }
    TestResult::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{oracle_cases, Deployment};
    use crate::Gen;
    use mcds_geom::Point;
    use mcds_rng::rngs::StdRng;
    use mcds_rng::SeedableRng;

    #[test]
    fn fault_check_accepts_random_instances_and_discards_dust() {
        let gen = oracle_cases(12);
        let mut rng = StdRng::seed_from_u64(5);
        let mut passes = 0;
        for _ in 0..20 {
            match check_fault_case(&gen.generate(&mut rng)) {
                TestResult::Pass => passes += 1,
                TestResult::Discard => {}
                TestResult::Fail(msg) => panic!("fault check failed: {msg}"),
            }
        }
        assert!(passes > 0, "no fault case passed");
        let dust = OracleCase {
            kind: Deployment::Uniform,
            points: vec![Point::new(0.0, 0.0), Point::new(50.0, 50.0)],
        };
        assert_eq!(check_fault_case(&dust), TestResult::Discard);
    }

    #[test]
    fn fault_check_exercises_the_biconnected_branch() {
        // A tight 3×3 grid: the unit-disk giant is biconnected, so the
        // (2, m) checks actually run (a panic inside them would surface
        // here).
        let pts: Vec<Point> = (0..9)
            .map(|i| Point::new((i % 3) as f64 * 0.6, (i / 3) as f64 * 0.6))
            .collect();
        let case = OracleCase {
            kind: Deployment::Uniform,
            points: pts,
        };
        assert_eq!(check_fault_case(&case), TestResult::Pass);
    }
}
