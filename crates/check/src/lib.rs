//! In-tree property-based testing for the `mcds` workspace.
//!
//! The workspace's original property suites were written against the
//! external `proptest` crate, which needs registry access the hermetic
//! build lacks — so they were dark in the default `cargo test` run.
//! This crate replaces them with a zero-dependency engine built on
//! [`mcds_rng`]:
//!
//! * [`gen`] — composable generators: integers, floats, vectors, tuples,
//!   strings, point sets, and unit-disk-graph deployments (uniform,
//!   clustered, corridor) via [`mcds_udg::gen`];
//! * [`runner`] — the [`Property`] runner: deterministic seed derivation
//!   with per-case RNG stream splitting
//!   ([`mcds_rng::SeedableRng::from_stream`]), automatic greedy
//!   counterexample shrinking, and failure reports that print the
//!   replay seed;
//! * [`corpus`] — a persisted regression corpus (`tests/corpus/*.case`):
//!   every failure records its `(master, stream)` pair, and matching
//!   cases are replayed *before* random exploration on later runs;
//! * [`oracle`] — the differential oracle: random UDGs small enough for
//!   [`mcds_exact::brute`] are solved exactly and every approximation
//!   algorithm is checked for validity and for the paper's ratio bounds
//!   (Theorems 8 and 10);
//! * [`fault`] — the same treatment for the fault-tolerant `(k, m)`
//!   backbone family: `(1, m)` and `(2, m)` outputs are checked against
//!   the independent exact-side predicates
//!   ([`mcds_exact::is_m_dominating`], [`mcds_exact::is_biconnected`])
//!   and the exact `(1, 2)`-CDS optimum on small instances.
//!
//! # Determinism contract
//!
//! Case `i` of property `p` under master seed `s` draws from
//! `StdRng::from_stream(split_seed(s, hash(p)), i)` — a pure function of
//! `(s, p, i)`.  No global state, no thread identity, no wall clock is
//! consulted, so a failure reproduces bit-identically at any thread
//! count, and a `.case` file replays the same input (and re-shrinks to
//! the same counterexample) on every machine.
//!
//! # Example
//!
//! ```
//! use mcds_check::gen::{usizes, vecs};
//! use mcds_check::{prop_assert, Property, TestResult};
//!
//! Property::new("sorted_vectors_are_idempotent_under_sort")
//!     .cases(64)
//!     .run(&vecs(usizes(0..=1000), 0..=50), |v| {
//!         let mut once = v.clone();
//!         once.sort_unstable();
//!         let mut twice = once.clone();
//!         twice.sort_unstable();
//!         prop_assert!(once == twice, "sort not idempotent on {v:?}");
//!         TestResult::Pass
//!     });
//! ```
//!
//! A failing property panics with a report like:
//!
//! ```text
//! property `vec_sum_under_100` failed
//!   replay: MCDS_CHECK_REPLAY=6655321:17 (master:stream)
//!   original input (case 17): [57, 93, 4]
//!   shrunk counterexample (9 steps): [100]
//!   failure: sum 100 not under 100
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod fault;
pub mod gen;
pub mod oracle;
pub mod runner;

pub use gen::Gen;
pub use runner::{Config, Failure, Property, RunStats, TestResult};

/// Fails the enclosing property unless `cond` holds.
///
/// Must be used inside a property closure returning
/// [`TestResult`]; on failure it `return`s
/// [`TestResult::Fail`] with either the stringified condition or the
/// supplied format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return $crate::TestResult::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::TestResult::Fail(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property unless the two expressions are equal,
/// reporting both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return $crate::TestResult::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Discards the current case (it counts toward neither passes nor
/// failures) unless `cond` holds — the analogue of `prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::TestResult::Discard;
        }
    };
}

/// One-line property check: `check!(name, generator, |value| body)`.
///
/// The body is a property closure body that must evaluate to a
/// [`TestResult`] (the `prop_assert!` family early-returns from it).  An
/// optional `cases = n` argument overrides the case count:
///
/// ```
/// use mcds_check::{check, prop_assert, TestResult};
/// use mcds_check::gen::usizes;
///
/// check!(doubling_is_monotone, cases = 32, usizes(0..=1000), |x| {
///     prop_assert!(x * 2 >= *x);
///     TestResult::Pass
/// });
/// ```
#[macro_export]
macro_rules! check {
    ($name:ident, cases = $cases:expr, $gen:expr, |$v:ident| $body:expr) => {
        $crate::Property::new(stringify!($name))
            .cases($cases)
            .run(&$gen, |$v| $body)
    };
    ($name:ident, $gen:expr, |$v:ident| $body:expr) => {
        $crate::Property::new(stringify!($name)).run(&$gen, |$v| $body)
    };
}
