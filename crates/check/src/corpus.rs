//! The persisted regression corpus.
//!
//! A corpus entry is a tiny text file (`*.case`) recording the *seeds*
//! of a failure, not the failing value itself: since generation is a
//! pure function of `(master, stream)` (see [`crate::gen::Gen`]), the
//! replay re-derives the identical input — and re-shrinks it to the
//! identical counterexample — on any machine at any thread count.
//!
//! Format (`#` comments and blank lines ignored, `key = value` pairs):
//!
//! ```text
//! # mcds-check regression case
//! prop = differential_oracle
//! master = 12648430
//! stream = 7
//! ```
//!
//! The [`crate::Property`] runner replays every case matching its
//! property name *before* random exploration, so a previously found
//! counterexample is re-checked first on every test run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One regression case: a property name and the RNG stream that
/// produced the failing input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// The property the case belongs to (matched against
    /// [`crate::Property`] names on replay).
    pub prop: String,
    /// The master seed the failing run used.
    pub master: u64,
    /// The per-case stream index within that run.
    pub stream: u64,
}

impl Case {
    /// Renders the case in the `.case` file format.
    pub fn to_file_format(&self) -> String {
        format!(
            "# mcds-check regression case\nprop = {}\nmaster = {}\nstream = {}\n",
            self.prop, self.master, self.stream
        )
    }

    /// Parses a `.case` file.
    ///
    /// # Errors
    ///
    /// Returns a line-annotated message on unknown keys, bad numbers, or
    /// missing fields.
    pub fn parse(text: &str) -> Result<Case, String> {
        let mut prop = None;
        let mut master = None;
        let mut stream = None;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", i + 1))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "prop" => prop = Some(value.to_string()),
                "master" => {
                    master = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("line {}: bad master: {e}", i + 1))?,
                    )
                }
                "stream" => {
                    stream = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("line {}: bad stream: {e}", i + 1))?,
                    )
                }
                other => return Err(format!("line {}: unknown key `{other}`", i + 1)),
            }
        }
        Ok(Case {
            prop: prop.ok_or("missing `prop`")?,
            master: master.ok_or("missing `master`")?,
            stream: stream.ok_or("missing `stream`")?,
        })
    }
}

/// Loads every `*.case` file in `dir`, sorted by file name so replay
/// order is stable across platforms.  A missing directory is an empty
/// corpus, not an error; a malformed case file *is* an error (a corrupt
/// corpus should fail loudly, not silently skip a regression).
///
/// # Errors
///
/// I/O errors other than "directory not found", and parse failures
/// annotated with the offending path.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Case)>, String> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let case = Case::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, case));
    }
    Ok(out)
}

/// Writes `case` into `dir` (created if missing) under a deterministic
/// name derived from the property and seeds, returning the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_case(dir: &Path, case: &Case) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let safe: String = case
        .prop
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!(
        "{safe}-{:016x}-{:04}.case",
        case.master, case.stream
    ));
    fs::write(&path, case.to_file_format())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_files_round_trip() {
        let case = Case {
            prop: "differential_oracle".into(),
            master: 0xC0FFEE,
            stream: 7,
        };
        let text = case.to_file_format();
        assert_eq!(Case::parse(&text).unwrap(), case);
    }

    #[test]
    fn parse_rejects_malformed_cases() {
        assert!(Case::parse("").is_err(), "missing fields");
        assert!(Case::parse("prop = x\nmaster = 1\n").is_err(), "no stream");
        assert!(
            Case::parse("prop = x\nmaster = one\nstream = 2\n").is_err(),
            "bad number"
        );
        assert!(
            Case::parse("prop = x\nmaster = 1\nstream = 2\nwat = 3\n").is_err(),
            "unknown key"
        );
        assert!(Case::parse("just words\n").is_err(), "no key-value shape");
    }

    #[test]
    fn parse_tolerates_comments_and_whitespace() {
        let case = Case::parse(
            "# header\n\n  prop =  spaced name \n# mid comment\nmaster=3\n stream = 4 \n",
        )
        .unwrap();
        assert_eq!(case.prop, "spaced name");
        assert_eq!((case.master, case.stream), (3, 4));
    }

    #[test]
    fn save_and_load_round_trip_through_a_directory() {
        let dir =
            std::env::temp_dir().join(format!("mcds-check-corpus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let case = Case {
            prop: "p one".into(),
            master: 5,
            stream: 9,
        };
        let path = save_case(&dir, &case).unwrap();
        assert!(path.to_string_lossy().ends_with(".case"));
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, case);
        // Unknown extensions are ignored; missing directories are empty.
        fs::write(dir.join("notes.txt"), "ignored").unwrap();
        assert_eq!(load_dir(&dir).unwrap().len(), 1);
        assert!(load_dir(Path::new("/nonexistent-mcds-corpus"))
            .unwrap()
            .is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
