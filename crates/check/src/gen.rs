//! Composable value generators with shrinking.
//!
//! A [`Gen`] produces a value from a seeded [`StdRng`] and, given a
//! failing value, proposes *shrink candidates* — smaller or simpler
//! variants the runner greedily descends through while the property
//! still fails.  Generation is a pure function of the RNG stream, which
//! is what makes corpus replay and `MCDS_CHECK_REPLAY` deterministic.
//!
//! The combinators mirror the subset of `proptest` the workspace used:
//! integer and float ranges, vectors, tuples, strings, and — the
//! workhorse of the UDG suites — quantized planar point sets.

use std::fmt::Debug;
use std::ops::RangeInclusive;

use mcds_geom::Point;
use mcds_rng::rngs::StdRng;
use mcds_rng::Rng;

/// A generator of values of one type, with optional shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value from `rng`.  Must consume randomness *only* from
    /// `rng` (no globals, no clock) so replay is exact.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes smaller/simpler variants of a failing `value`, most
    /// aggressive first.  The runner keeps any candidate that still
    /// fails and recurses; an empty vector ends shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    ///
    /// The mapped generator cannot shrink (there is no inverse of `f` to
    /// pull candidates back through); prefer a dedicated generator when
    /// counterexample minimization matters.
    fn map<U, F>(self, f: F) -> MapGen<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        MapGen { inner: self, f }
    }
}

/// Uniform `usize` in an inclusive range; shrinks toward the low end.
#[derive(Debug, Clone)]
pub struct UsizeGen {
    lo: usize,
    hi: usize,
}

/// Uniform `usize` in `range` (shrinks toward `range.start()`).
pub fn usizes(range: RangeInclusive<usize>) -> UsizeGen {
    UsizeGen {
        lo: *range.start(),
        hi: *range.end(),
    }
}

impl Gen for UsizeGen {
    type Value = usize;

    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }

    fn shrink(&self, value: &usize) -> Vec<usize> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2;
            if mid != self.lo && mid != v {
                out.push(mid);
            }
            if v - 1 != self.lo && v - 1 != mid {
                out.push(v - 1);
            }
        }
        out
    }
}

/// Uniform `u64` in an inclusive range; shrinks toward the low end.
#[derive(Debug, Clone)]
pub struct U64Gen {
    lo: u64,
    hi: u64,
}

/// Uniform `u64` in `range` (shrinks toward `range.start()`).
pub fn u64s(range: RangeInclusive<u64>) -> U64Gen {
    U64Gen {
        lo: *range.start(),
        hi: *range.end(),
    }
}

impl Gen for U64Gen {
    type Value = u64;

    fn generate(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.lo..=self.hi)
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2;
            if mid != self.lo && mid != v {
                out.push(mid);
            }
        }
        out
    }
}

/// Uniform `f64` in an inclusive range; shrinks toward the low end.
#[derive(Debug, Clone)]
pub struct F64Gen {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `range` (shrinks toward `range.start()`).
///
/// # Panics
///
/// Panics unless `start ≤ end` and both are finite.
pub fn f64s(range: RangeInclusive<f64>) -> F64Gen {
    let (lo, hi) = (*range.start(), *range.end());
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "bad range {lo}..={hi}"
    );
    F64Gen { lo, hi }
}

impl Gen for F64Gen {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.lo..=self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2.0;
            if mid != self.lo && mid != v {
                out.push(mid);
            }
        }
        out
    }
}

/// How many per-index shrink candidates a container proposes per round —
/// bounds shrink fan-out on large values.
const SHRINK_FAN: usize = 24;

/// Vectors of values from an element generator.
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min: usize,
    max: usize,
}

/// A vector whose length is uniform in `len` and whose elements come
/// from `elem`.  Shrinks by truncating, dropping single elements, and
/// shrinking elements in place.
pub fn vecs<G: Gen>(elem: G, len: RangeInclusive<usize>) -> VecGen<G> {
    VecGen {
        elem,
        min: *len.start(),
        max: *len.end(),
    }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<G::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // 1. Truncate to the first half (the biggest jump first).
        if len > self.min {
            let half = (len / 2).max(self.min);
            if half < len {
                out.push(value[..half].to_vec());
            }
            // 2. Drop single elements.
            for i in (0..len).take(SHRINK_FAN) {
                let mut smaller = value.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // 3. Shrink elements in place.
        for i in (0..len).take(SHRINK_FAN) {
            for cand in self.elem.shrink(&value[i]) {
                let mut simpler = value.clone();
                simpler[i] = cand;
                out.push(simpler);
            }
        }
        out
    }
}

impl<A: Gen, B: Gen> Gen for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(&value.1)
                .into_iter()
                .map(|b| (value.0.clone(), b)),
        );
        out
    }
}

impl<A: Gen, B: Gen, C: Gen> Gen for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone(), value.2.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(&value.1)
                .into_iter()
                .map(|b| (value.0.clone(), b, value.2.clone())),
        );
        out.extend(
            self.2
                .shrink(&value.2)
                .into_iter()
                .map(|c| (value.0.clone(), value.1.clone(), c)),
        );
        out
    }
}

impl<A: Gen, B: Gen, C: Gen, D: Gen> Gen for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone(), value.2.clone(), value.3.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(&value.1)
                .into_iter()
                .map(|b| (value.0.clone(), b, value.2.clone(), value.3.clone())),
        );
        out.extend(
            self.2
                .shrink(&value.2)
                .into_iter()
                .map(|c| (value.0.clone(), value.1.clone(), c, value.3.clone())),
        );
        out.extend(
            self.3
                .shrink(&value.3)
                .into_iter()
                .map(|d| (value.0.clone(), value.1.clone(), value.2.clone(), d)),
        );
        out
    }
}

/// See [`Gen::map`].
#[derive(Debug, Clone)]
pub struct MapGen<G, F> {
    inner: G,
    f: F,
}

impl<G, U, F> Gen for MapGen<G, F>
where
    G: Gen,
    U: Clone + Debug,
    F: Fn(G::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strings drawn from a parser-hostile character pool.
#[derive(Debug, Clone)]
pub struct StringGen {
    min: usize,
    max: usize,
}

/// A string of `len` characters mixing printable ASCII, digits, signs,
/// quotes, backslashes, whitespace, and a few multi-byte scalars — the
/// pool that stresses hand-written parsers.  Shrinks by truncating and
/// dropping characters.
pub fn strings(len: RangeInclusive<usize>) -> StringGen {
    StringGen {
        min: *len.start(),
        max: *len.end(),
    }
}

/// The character pool of [`strings`].
const STRING_POOL: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '\n', '.', ',', ':', ';', '-', '+', 'e',
    'E', 'x', 'y', '"', '\\', '/', '{', '}', '[', ']', '_', '#', 'é', '→', '\u{0}',
];

impl Gen for StringGen {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let len = rng.gen_range(self.min..=self.max);
        (0..len)
            .map(|_| STRING_POOL[rng.gen_range(0..STRING_POOL.len())])
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let len = chars.len();
        let mut out = Vec::new();
        if len > self.min {
            let half = (len / 2).max(self.min);
            if half < len {
                out.push(chars[..half].iter().collect());
            }
            for i in (0..len).take(SHRINK_FAN) {
                let mut smaller = chars.clone();
                smaller.remove(i);
                out.push(smaller.into_iter().collect());
            }
        }
        out
    }
}

/// Planar point sets quantized to a 1/1000 grid in a square.
#[derive(Debug, Clone)]
pub struct PointSetGen {
    min: usize,
    max: usize,
    side: f64,
}

/// A set of `n ∈ len` points in the `side × side` square, quantized to a
/// 1/1000 grid (the same quantization the original proptest suites used
/// to avoid degenerate float edge cases, and which keeps counterexample
/// printouts short).  Shrinks by truncating the set, dropping single
/// points, and pulling points halfway toward the origin — all of which
/// preserve quantization.
pub fn point_sets(len: RangeInclusive<usize>, side: f64) -> PointSetGen {
    assert!(side.is_finite() && side > 0.0, "bad side {side}");
    PointSetGen {
        min: *len.start(),
        max: *len.end(),
        side,
    }
}

impl PointSetGen {
    fn quantized(&self, ticks: u32) -> f64 {
        f64::from(ticks) / 1000.0 * self.side
    }
}

impl Gen for PointSetGen {
    type Value = Vec<Point>;

    fn generate(&self, rng: &mut StdRng) -> Vec<Point> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len)
            .map(|_| {
                let x = rng.gen_range(0..=1000u64) as u32;
                let y = rng.gen_range(0..=1000u64) as u32;
                Point::new(self.quantized(x), self.quantized(y))
            })
            .collect()
    }

    fn shrink(&self, value: &Vec<Point>) -> Vec<Vec<Point>> {
        let len = value.len();
        let mut out = Vec::new();
        if len > self.min {
            let half = (len / 2).max(self.min);
            if half < len {
                out.push(value[..half].to_vec());
            }
            for i in (0..len).take(SHRINK_FAN) {
                let mut smaller = value.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Pull points halfway toward the origin, re-quantized.
        let halve = |c: f64| (c / self.side * 1000.0 / 2.0).round() / 1000.0 * self.side;
        for i in (0..len).take(SHRINK_FAN / 2) {
            let p = value[i];
            let pulled = Point::new(halve(p.x), halve(p.y));
            if pulled != p {
                let mut moved = value.clone();
                moved[i] = pulled;
                out.push(moved);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_rng::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generators_respect_their_ranges() {
        let mut r = rng(1);
        for _ in 0..2000 {
            let v = usizes(3..=9).generate(&mut r);
            assert!((3..=9).contains(&v));
            let f = f64s(-1.5..=2.5).generate(&mut r);
            assert!((-1.5..=2.5).contains(&f));
            let xs = vecs(usizes(0..=5), 2..=4).generate(&mut r);
            assert!((2..=4).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x <= 5));
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_stream() {
        let g = vecs(usizes(0..=100), 0..=40);
        let a = g.generate(&mut rng(7));
        let b = g.generate(&mut rng(7));
        assert_eq!(a, b);
        assert_ne!(a, g.generate(&mut rng(8)));
    }

    #[test]
    fn integer_shrink_moves_toward_low_end() {
        let g = usizes(2..=100);
        for cand in g.shrink(&57) {
            assert!((2..57).contains(&cand), "candidate {cand}");
        }
        assert!(g.shrink(&2).is_empty(), "low end is a fixed point");
    }

    #[test]
    fn vec_shrink_only_proposes_simpler_vectors() {
        let g = vecs(usizes(0..=100), 1..=10);
        let v = vec![40, 50, 60];
        for cand in g.shrink(&v) {
            let shorter = cand.len() < v.len();
            let elementwise_smaller =
                cand.len() == v.len() && cand.iter().zip(&v).all(|(c, o)| c <= o);
            assert!(shorter || elementwise_smaller, "{cand:?} vs {v:?}");
            assert!(!cand.is_empty(), "respects min length");
        }
    }

    #[test]
    fn point_sets_stay_in_square_and_quantized() {
        let g = point_sets(1..=50, 4.0);
        let pts = g.generate(&mut rng(3));
        for p in &pts {
            assert!((0.0..=4.0).contains(&p.x) && (0.0..=4.0).contains(&p.y));
            let ticks = p.x / 4.0 * 1000.0;
            assert!((ticks - ticks.round()).abs() < 1e-6, "unquantized {}", p.x);
        }
        for cand in g.shrink(&pts) {
            assert!(!cand.is_empty() && cand.len() <= pts.len());
        }
    }

    #[test]
    fn tuples_shrink_componentwise() {
        let g = (usizes(0..=10), usizes(5..=20));
        let cands = g.shrink(&(10, 20));
        assert!(!cands.is_empty());
        for (a, b) in cands {
            let first_moved = a < 10 && b == 20;
            let second_moved = a == 10 && (5..20).contains(&b);
            assert!(first_moved || second_moved, "({a}, {b})");
        }
    }

    #[test]
    fn map_generates_but_does_not_shrink() {
        let g = usizes(0..=9).map(|v| v * 2);
        let v = g.generate(&mut rng(4));
        assert!(v <= 18 && v % 2 == 0);
        assert!(g.shrink(&v).is_empty());
    }

    #[test]
    fn strings_cover_hostile_characters_and_shrink() {
        let g = strings(0..=200);
        let mut saw_quote = false;
        let mut saw_backslash = false;
        let mut r = rng(5);
        for _ in 0..50 {
            let s = g.generate(&mut r);
            saw_quote |= s.contains('"');
            saw_backslash |= s.contains('\\');
            for cand in g.shrink(&s) {
                assert!(cand.chars().count() < s.chars().count().max(1));
            }
        }
        assert!(saw_quote && saw_backslash);
    }
}
