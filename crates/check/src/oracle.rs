//! The differential oracle: random small UDGs solved exactly and
//! checked against every approximation algorithm.
//!
//! The paper's guarantees are *relative* to the exact optimum `γ_c`:
//! Theorem 8 bounds the WAF construction by `7⅓·γ_c` and Theorem 10
//! bounds the new greedy-connector construction by `6 7/18·γ_c`.  On
//! instances small enough for [`mcds_exact::brute`] those right-hand
//! sides are computable, so the bounds become machine-checkable
//! properties rather than plotted trends.  One oracle case checks, on
//! the giant component of a random deployment:
//!
//! * the brute-force optimum agrees with the branch & bound solver
//!   (differential check *inside* `mcds-exact`),
//! * every [`Algorithm`] produces a verified CDS no smaller than the
//!   optimum,
//! * the WAF and greedy-connector sizes respect Theorems 8 and 10,
//! * the first-fit MIS is no larger than the exact independence number,
//!   which itself respects Corollary 7 (`α ≤ 11/3·γ_c + 1`),
//! * pruning is idempotent and validity-preserving.

use mcds_cds::{prune, Algorithm};
use mcds_exact::brute;
use mcds_geom::Point;
use mcds_graph::{properties, traversal::largest_component, Graph};
use mcds_mis::{bounds, BfsMis};
use mcds_rng::rngs::StdRng;
use mcds_rng::Rng;
use mcds_udg::{gen as deploy, Udg};

use crate::gen::Gen;
use crate::runner::TestResult;

/// Hard cap on oracle instance size: beyond this the exact solvers stop
/// being "obviously correct references" on a test budget.
pub const MAX_ORACLE_NODES: usize = 18;

/// Node count up to which the `O(2ⁿ)` brute solver is also run and
/// cross-checked against branch & bound.
pub const MAX_BRUTE_NODES: usize = 16;

/// The deployment families the differential suite draws from — the same
/// three regimes the experiment harness sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// Uniform in a square: the literature's standard setup.
    Uniform,
    /// Clustered hotspots: small MISs, stresses connector selection.
    Clustered,
    /// Long thin corridor: large diameter, stresses `γ_c` and the chain
    /// worst cases.
    Corridor,
}

impl Deployment {
    /// All deployment families, in generation order.
    pub const ALL: [Deployment; 3] = [
        Deployment::Uniform,
        Deployment::Clustered,
        Deployment::Corridor,
    ];
}

/// One differential-oracle input: a deployment family and its points.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleCase {
    /// The family the points were drawn from (kept through shrinking,
    /// so a shrunk counterexample still names its regime).
    pub kind: Deployment,
    /// The deployed points; the oracle works on the giant component of
    /// their unit-disk graph.
    pub points: Vec<Point>,
}

/// Generator of [`OracleCase`]s with at most `max_n` points
/// (`max_n ≤ 18`); shrinks by dropping points.
#[derive(Debug, Clone)]
pub struct OracleGen {
    max_n: usize,
}

/// Oracle cases over all three deployment families with `4..=max_n`
/// points.
///
/// # Panics
///
/// Panics if `max_n` exceeds [`MAX_ORACLE_NODES`] or is below 4.
pub fn oracle_cases(max_n: usize) -> OracleGen {
    assert!(
        (4..=MAX_ORACLE_NODES).contains(&max_n),
        "oracle instances need 4..=18 points, got {max_n}"
    );
    OracleGen { max_n }
}

impl Gen for OracleGen {
    type Value = OracleCase;

    fn generate(&self, rng: &mut StdRng) -> OracleCase {
        let n = rng.gen_range(4..=self.max_n);
        let kind = Deployment::ALL[rng.gen_range(0..Deployment::ALL.len())];
        let points = match kind {
            Deployment::Uniform => {
                let side = rng.gen_range(1.5..=3.5);
                deploy::uniform_in_square(rng, n, side)
            }
            Deployment::Clustered => {
                let clusters = rng.gen_range(1..=3usize).min(n);
                let per = n.div_ceil(clusters);
                let mut pts = deploy::clustered(rng, clusters, per, 3.0, 0.8);
                pts.truncate(n);
                pts
            }
            Deployment::Corridor => {
                let length = rng.gen_range(3.0..=6.0);
                deploy::corridor(rng, n, length, 1.0)
            }
        };
        OracleCase { kind, points }
    }

    fn shrink(&self, value: &OracleCase) -> Vec<OracleCase> {
        let pts = &value.points;
        let mut out = Vec::new();
        if pts.len() > 2 {
            out.push(OracleCase {
                kind: value.kind,
                points: pts[..pts.len() / 2].to_vec(),
            });
            for i in 0..pts.len() {
                let mut smaller = pts.clone();
                smaller.remove(i);
                out.push(OracleCase {
                    kind: value.kind,
                    points: smaller,
                });
            }
        }
        out
    }
}

/// The exact connected domination number of `g`, brute-forced when
/// small enough and cross-checked against branch & bound.
///
/// # Errors
///
/// Returns a message when the two exact solvers disagree or the brute
/// optimum fails the CDS predicates — either is a solver bug.
pub fn exact_gamma_c(g: &Graph) -> Result<usize, String> {
    let bnb = mcds_exact::min_connected_dominating_set(g)
        .ok_or("branch & bound found no CDS on a connected graph")?;
    if !properties::is_connected_dominating_set(g, &bnb) {
        return Err(format!("branch & bound optimum {bnb:?} is not a CDS"));
    }
    if g.num_nodes() <= MAX_BRUTE_NODES {
        let brute = brute::min_connected_dominating_set_brute(g)
            .ok_or("brute force found no CDS on a connected graph")?;
        if !properties::is_connected_dominating_set(g, &brute) {
            return Err(format!("brute optimum {brute:?} is not a CDS"));
        }
        if brute.len() != bnb.len() {
            return Err(format!(
                "exact solvers disagree: brute γ_c = {}, branch & bound γ_c = {}",
                brute.len(),
                bnb.len()
            ));
        }
    }
    Ok(bnb.len())
}

/// The paper's size bound for `alg` at the given optimum, if one is
/// proven (Theorems 8 and 10).
pub fn size_bound(alg: Algorithm, gamma_c: usize) -> Option<f64> {
    match alg {
        Algorithm::WafTree => Some(bounds::waf_size_bound(gamma_c)),
        Algorithm::GreedyConnect => Some(bounds::greedy_size_bound(gamma_c)),
        _ => None,
    }
}

/// Runs the full differential check on one [`OracleCase`].
///
/// Returns [`TestResult::Discard`] when the giant component has fewer
/// than 2 nodes (no meaningful CDS instance), [`TestResult::Fail`] on
/// the first violated invariant, and [`TestResult::Pass`] otherwise.
pub fn check_oracle_case(case: &OracleCase) -> TestResult {
    let udg = Udg::build(case.points.clone());
    let giant = largest_component(udg.graph());
    if giant.len() < 2 {
        return TestResult::Discard;
    }
    let sub = udg.restricted_to(&giant);
    let g = sub.graph();
    debug_assert!(g.is_connected());

    let gamma_c = match exact_gamma_c(g) {
        Ok(v) => v,
        Err(e) => return TestResult::Fail(format!("{:?}: {e}", case.kind)),
    };

    // Corollary 7 against the exact independence number, and the
    // first-fit MIS against α.
    let alpha = mcds_exact::independence_number(g);
    let alpha_bound = bounds::alpha_upper_bound(gamma_c);
    if alpha as f64 > alpha_bound + 1e-9 {
        return TestResult::Fail(format!(
            "{:?}: Corollary 7 violated: α = {alpha} > 11/3·{gamma_c} + 1 = {alpha_bound}",
            case.kind
        ));
    }
    let mis = BfsMis::compute(g, 0);
    if mis.len() > alpha {
        return TestResult::Fail(format!(
            "{:?}: first-fit MIS of {} nodes exceeds α = {alpha}",
            case.kind,
            mis.len()
        ));
    }

    for alg in Algorithm::ALL {
        let cds = match alg.run(g) {
            Ok(cds) => cds,
            Err(e) => {
                return TestResult::Fail(format!(
                    "{:?}: {alg} errored on a connected instance: {e}",
                    case.kind
                ))
            }
        };
        if let Err(e) = cds.verify(g) {
            return TestResult::Fail(format!(
                "{:?}: {alg} produced an invalid CDS: {e}",
                case.kind
            ));
        }
        if cds.len() < gamma_c {
            return TestResult::Fail(format!(
                "{:?}: {alg} \"beat\" the exact optimum ({} < γ_c = {gamma_c}) — an exact-solver bug",
                case.kind,
                cds.len()
            ));
        }
        if let Some(bound) = size_bound(alg, gamma_c) {
            if cds.len() as f64 > bound + 1e-9 {
                return TestResult::Fail(format!(
                    "{:?}: {alg} ratio bound violated: |CDS| = {} > {bound} (γ_c = {gamma_c})",
                    case.kind,
                    cds.len()
                ));
            }
        }

        // Pruning: validity-preserving and idempotent.
        let once = match prune::prune_cds(g, cds.nodes()) {
            Ok(set) => set,
            Err(e) => return TestResult::Fail(format!("{:?}: {alg} prune failed: {e}", case.kind)),
        };
        if !properties::is_connected_dominating_set(g, &once) {
            return TestResult::Fail(format!(
                "{:?}: {alg} pruned set is not a CDS: {once:?}",
                case.kind
            ));
        }
        let twice = match prune::prune_cds(g, &once) {
            Ok(set) => set,
            Err(e) => {
                return TestResult::Fail(format!("{:?}: {alg} re-prune failed: {e}", case.kind))
            }
        };
        if twice != once {
            return TestResult::Fail(format!(
                "{:?}: {alg} pruning not idempotent: {once:?} -> {twice:?}",
                case.kind
            ));
        }
        if once.len() < gamma_c {
            return TestResult::Fail(format!(
                "{:?}: {alg} pruned below the optimum ({} < {gamma_c})",
                case.kind,
                once.len()
            ));
        }
    }
    TestResult::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_rng::SeedableRng;

    #[test]
    fn oracle_cases_respect_the_node_cap() {
        let gen = oracle_cases(12);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let case = gen.generate(&mut rng);
            assert!((4..=12).contains(&case.points.len()));
        }
    }

    #[test]
    fn all_deployment_kinds_are_generated() {
        let gen = oracle_cases(10);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let case = gen.generate(&mut rng);
            seen[Deployment::ALL
                .iter()
                .position(|&k| k == case.kind)
                .unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shrinking_preserves_kind_and_drops_points() {
        let gen = oracle_cases(14);
        let mut rng = StdRng::seed_from_u64(3);
        let case = gen.generate(&mut rng);
        for cand in gen.shrink(&case) {
            assert_eq!(cand.kind, case.kind);
            assert!(cand.points.len() < case.points.len());
        }
    }

    #[test]
    fn exact_gamma_c_matches_known_families() {
        assert_eq!(exact_gamma_c(&Graph::path(6)).unwrap(), 4);
        assert_eq!(exact_gamma_c(&Graph::star(7)).unwrap(), 1);
        assert_eq!(exact_gamma_c(&Graph::cycle(9)).unwrap(), 7);
    }

    #[test]
    fn size_bounds_exist_exactly_for_the_two_phased_theorems() {
        assert_eq!(size_bound(Algorithm::WafTree, 3), Some(22.0));
        let greedy = size_bound(Algorithm::GreedyConnect, 18).unwrap();
        assert!((greedy - 115.0).abs() < 1e-9);
        assert_eq!(size_bound(Algorithm::GreedyGrowth, 3), None);
        assert_eq!(size_bound(Algorithm::ChvatalSetCover, 3), None);
    }

    #[test]
    fn oracle_accepts_a_healthy_instance_and_discards_dust() {
        let gen = oracle_cases(12);
        let mut rng = StdRng::seed_from_u64(4);
        let mut passes = 0;
        for _ in 0..20 {
            if check_oracle_case(&gen.generate(&mut rng)) == TestResult::Pass {
                passes += 1;
            }
        }
        assert!(passes > 0, "no oracle case passed");
        // Two far-apart points: giant component of size 1 -> discard.
        let dust = OracleCase {
            kind: Deployment::Uniform,
            points: vec![Point::new(0.0, 0.0), Point::new(50.0, 50.0)],
        };
        assert_eq!(check_oracle_case(&dust), TestResult::Discard);
    }
}
