//! End-to-end tests: a live server on an ephemeral port, hostile-string
//! protocol fuzz, framing limits, and the interleaving-invariance
//! determinism contract.

use std::thread;

use mcds_check::gen::{self, Gen};
use mcds_geom::Point;
use mcds_rng::rngs::StdRng;
use mcds_rng::SeedableRng;
use mcds_serve::json::Value;
use mcds_serve::proto::{render_error, Request};
use mcds_serve::{Client, ServeConfig, Server};

/// A connected little line topology: node i at (0.8 i, 0).
fn line_points(n: usize) -> Vec<Point> {
    (0..n).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect()
}

/// Binds a server on an ephemeral port, runs it on a background thread,
/// and returns `(addr, join handle)`.
fn spawn_server(cfg: ServeConfig, points: Vec<Point>) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg, points).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    }
}

#[test]
fn hostile_strings_round_trip_through_the_json_layer() {
    let strings = gen::strings(0..=40);
    let mut rng = StdRng::seed_from_u64(20_080_617);
    for _ in 0..500 {
        let s = strings.generate(&mut rng);
        let doc = Value::Obj(vec![
            ("s".into(), Value::Str(s.clone())),
            (
                "xs".into(),
                Value::Arr(vec![Value::Str(s.clone()), Value::Null]),
            ),
        ]);
        let rendered = doc.render();
        let reparsed = Value::parse(&rendered)
            .unwrap_or_else(|e| panic!("render of {s:?} unparseable: {e}\n{rendered}"));
        assert_eq!(reparsed, doc, "round trip mangled {s:?}");
        // The server's error path embeds arbitrary client text; it must
        // stay a single parseable line.
        let err = render_error(&s);
        assert!(!err.contains('\n'), "error response split lines on {s:?}");
        let back = Value::parse(&err).expect("error response parses");
        assert_eq!(back.get("error").and_then(Value::as_str), Some(s.as_str()));
    }
}

#[test]
fn hostile_strings_never_crash_request_parsing() {
    let strings = gen::strings(0..=60);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..500 {
        let s = strings.generate(&mut rng);
        // Any outcome is fine except a panic.
        let _ = Request::parse(&s);
        let _ = Request::parse(&format!("{{\"op\":{}}}", Value::Str(s.clone()).render()));
        let _ = Request::parse(&format!(
            "{{\"op\":\"query\",\"what\":{}}}",
            Value::Str(s).render()
        ));
    }
}

#[test]
fn full_session_over_tcp() {
    let (addr, handle) = spawn_server(test_config(), line_points(8));
    let mut c = Client::connect(&addr).expect("connect");

    // Solve matches what the proto renderer says for this topology.
    let solve = c.request(r#"{"op":"solve","alg":"greedy"}"#).unwrap();
    assert!(solve.starts_with(r#"{"ok":true,"op":"solve","alg":"greedy","n":8,"#));
    let parsed = Value::parse(&solve).expect("solve response parses");
    assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
    let size = parsed.get("size").and_then(Value::as_u64).unwrap();
    assert!((6..=8).contains(&size), "P8 backbone size {size}");

    // Weighted solve reports a larger total under degree weights.
    let weighted = c
        .request(r#"{"op":"solve","alg":"greedy","weights":"degree"}"#)
        .unwrap();
    let wp = Value::parse(&weighted).unwrap();
    assert_eq!(wp.get("weights").and_then(Value::as_str), Some("degree"));
    assert!(wp.get("weight_total").and_then(Value::as_u64).unwrap() > size);

    // Malformed JSON is an error *response*, not a dropped connection.
    let bad = c.request(r#"{"op":"solve","#).unwrap();
    assert!(bad.starts_with(r#"{"ok":false"#));
    let also_bad = c.request(r#"{"op":"fly"}"#).unwrap();
    assert!(also_bad.contains("unknown op"));

    // Churn: queue without admitting, then tick.
    let queued = c
        .request(
            r#"{"op":"churn","events":[{"kind":"leave","node":7},{"kind":"leave","node":99}]}"#,
        )
        .unwrap();
    assert_eq!(queued, r#"{"ok":true,"op":"churn","queued":2,"pending":2}"#);
    let ticked = c.request(r#"{"op":"churn","admit":true}"#).unwrap();
    let tp = Value::parse(&ticked).unwrap();
    assert_eq!(tp.get("tick").and_then(Value::as_u64), Some(1));
    assert_eq!(tp.get("admitted").and_then(Value::as_u64), Some(1));
    assert_eq!(tp.get("rejected").and_then(Value::as_u64), Some(1)); // node 99 is dead
    assert_eq!(tp.get("population").and_then(Value::as_u64), Some(7));

    // Queries see the post-tick state.
    let stats = c.request(r#"{"op":"query","what":"stats"}"#).unwrap();
    let sp = Value::parse(&stats).unwrap();
    assert_eq!(sp.get("population").and_then(Value::as_u64), Some(7));
    assert_eq!(sp.get("giant").and_then(Value::as_u64), Some(7));
    let member = c
        .request(r#"{"op":"query","what":"member","node":7}"#)
        .unwrap();
    assert!(member.contains(r#""alive":false"#));
    let dom = c
        .request(r#"{"op":"query","what":"dominator-of","node":0}"#)
        .unwrap();
    let dp = Value::parse(&dom).unwrap();
    assert!(
        !dp.get("dominators")
            .and_then(Value::as_arr)
            .unwrap()
            .is_empty(),
        "node 0 must be dominated: {dom}"
    );

    // Metrics is a well-formed dump with the serve counters present.
    let metrics = c.request(r#"{"op":"metrics"}"#).unwrap();
    let mp = Value::parse(&metrics).expect("metrics parses");
    assert!(mp.get("counters").is_some());

    // Shutdown acknowledges, then the server exits.
    let bye = c.request(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(bye, r#"{"ok":true,"op":"shutdown"}"#);
    handle.join().expect("server thread");
}

/// One raw HTTP exchange: write the request head, read to close.
fn http_exchange(addr: &str, raw: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("http connect");
    s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    s.write_all(raw.as_bytes()).expect("http write");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("http read to close");
    out
}

#[test]
fn http_metrics_shim_coexists_with_jsonl() {
    // The exposition needs live counters, so run with the subscriber on
    // (serialized against other obs-toggling tests).
    mcds_obs::test_support::with_enabled(true, || {
        let (addr, handle) = spawn_server(test_config(), line_points(6));
        let mut c = Client::connect(&addr).expect("connect");
        let before = c.request(r#"{"op":"query","what":"stats"}"#).unwrap();

        // A curl-style GET on the same port returns the Prometheus text
        // exposition with honest framing headers.
        let ok = http_exchange(
            &addr,
            "GET /metrics HTTP/1.1\r\nHost: t\r\nUser-Agent: curl/8.0\r\nAccept: */*\r\n\r\n",
        );
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Connection: close\r\n"));
        let (head, body) = ok.split_once("\r\n\r\n").expect("header/body split");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .parse()
            .unwrap();
        assert_eq!(len, body.len(), "Content-Length must match the body");
        assert!(
            body.contains("# TYPE mcds_serve_connections_total counter"),
            "{body}"
        );
        assert!(body.contains("# TYPE mcds_serve_request_ns histogram"));
        assert!(body.contains("mcds_serve_request_ns_bucket{le=\"+Inf\"}"));

        // Routing misses: 404 on unknown paths, 405 on non-GET.
        let not_found = http_exchange(&addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(not_found.starts_with("HTTP/1.1 404 Not Found\r\n"));
        let bad_method = http_exchange(&addr, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(bad_method.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));

        // The JSONL session is untouched by interleaved HTTP scrapes:
        // same connection, byte-identical answer.
        let after = c.request(r#"{"op":"query","what":"stats"}"#).unwrap();
        assert_eq!(before, after);
        c.request(r#"{"op":"shutdown"}"#).unwrap();
        handle.join().expect("server thread");
    });
}

#[test]
fn oversized_lines_are_rejected_and_close_the_connection() {
    let cfg = ServeConfig {
        max_line: 256,
        threads: 2,
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server(cfg, line_points(4));
    let mut c = Client::connect(&addr).expect("connect");
    let huge = format!(r#"{{"op":"solve","alg":"{}"}}"#, "x".repeat(500));
    let resp = c.request(&huge).expect("error response before close");
    assert!(resp.contains("exceeds 256 bytes"), "{resp}");
    // Framing is broken, so the server must have closed the connection.
    assert!(c.request(r#"{"op":"metrics"}"#).is_err());

    // A fresh connection still works and can shut the server down.
    let mut c2 = Client::connect(&addr).expect("reconnect");
    assert!(c2
        .request(r#"{"op":"query","what":"stats"}"#)
        .unwrap()
        .starts_with(r#"{"ok":true"#));
    c2.request(r#"{"op":"shutdown"}"#).unwrap();
    handle.join().expect("server thread");
}

/// The determinism contract over the wire: two servers fed the same
/// churn batches with different client interleavings answer every
/// post-tick request byte-identically.
#[test]
fn churn_admission_is_interleaving_invariant_across_clients() {
    let batch_a =
        r#"{"op":"churn","events":[{"kind":"leave","node":2},{"kind":"join","x":3.3,"y":0.4}]}"#;
    let batch_b = r#"{"op":"churn","events":[{"kind":"move","node":5,"x":4.4,"y":0.2},{"kind":"join","x":0.4,"y":0.6}]}"#;
    let tick = r#"{"op":"churn","admit":true}"#;
    let probes = [
        r#"{"op":"query","what":"stats"}"#.to_string(),
        r#"{"op":"solve","alg":"greedy","prune":true}"#.to_string(),
        r#"{"op":"solve","alg":"waf","weights":"random","weight_seed":3}"#.to_string(),
    ]
    .into_iter()
    .chain((0..10).map(|v| format!(r#"{{"op":"query","what":"member","node":{v}}}"#)))
    .chain((0..10).map(|v| format!(r#"{{"op":"query","what":"dominator-of","node":{v}}}"#)));

    let run = |first: &str, second: &str| -> Vec<String> {
        let (addr, handle) = spawn_server(test_config(), line_points(8));
        // Two concurrent clients enqueue one batch each; submission
        // order across connections is the variable under test.
        let mut c1 = Client::connect(&addr).unwrap();
        let mut c2 = Client::connect(&addr).unwrap();
        c1.request(first).unwrap();
        c2.request(second).unwrap();
        c1.request(tick).unwrap();
        let answers: Vec<String> = probes.clone().map(|p| c2.request(&p).unwrap()).collect();
        c1.request(r#"{"op":"shutdown"}"#).unwrap();
        handle.join().unwrap();
        answers
    };

    assert_eq!(
        run(batch_a, batch_b),
        run(batch_b, batch_a),
        "post-tick responses must not depend on batch arrival order"
    );
}
