//! A minimal JSON value model with a strict recursive-descent parser.
//!
//! The wire protocol is one JSON object per line, so the parser only has
//! to handle a single document with no framing concerns.  It is strict
//! where a hand-written client could be sloppy — trailing garbage,
//! unterminated strings, bad escapes, lone surrogates and over-deep
//! nesting are all hard errors — because every rejected line is reported
//! back to the client instead of being guessed at.
//!
//! Rendering goes the other way through [`Value::render`], which emits
//! objects in insertion order; response builders always insert fields in
//! a fixed order, so equal responses are byte-equal (the same
//! deterministic-field-order convention as the `mcds-obs` trace export,
//! whose [`mcds_obs::trace::json_escape`] this module reuses).

use std::fmt;

use mcds_obs::trace::json_escape;

/// Maximum nesting depth the parser accepts; deeper documents are a
/// protocol error (the wire format never legitimately nests beyond a
/// request object holding an array of event objects).
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.  Numbers are kept as `f64` (the grammar's only
/// numeric type); integer accessors check representability.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The `null` literal.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// Key/value pairs in document order (duplicates are a parse error).
    Obj(Vec<(String, Value)>),
}

/// A parse failure with a byte offset into the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Renders the value as compact JSON (no whitespace, objects in
    /// insertion order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => out.push_str(&render_num(*x)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match; the parser rejects duplicates).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that
    /// round-trips exactly (rejects 1.5, -1, 1e300, NaN).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// [`Value::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|x| usize::try_from(x).ok())
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Renders an `f64` the shortest way that round-trips, with integral
/// values rendered without a fractional part (`3`, not `3.0`) — matching
/// how the protocol's integer fields are hand-formatted elsewhere.
fn render_num(x: f64) -> String {
    if !x.is_finite() {
        // JSON has no NaN/inf; protocol builders never produce them, but
        // render defensively rather than emitting an invalid document.
        return "null".to_string();
    }
    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        format!("{}", x as i64)
    } else {
        let s = format!("{x}");
        debug_assert!(s.parse::<f64>() == Ok(x));
        s
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{}\"", json_escape(&key))));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a run of plain bytes; multi-byte UTF-8 is
            // passed through (the input is a &str, so it is valid).
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: we only stopped on ASCII boundaries.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require the paired low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.err("high surrogate not followed by \\u"))?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let x: f64 = token
            .parse()
            .map_err(|_| self.err(format!("bad number `{token}`")))?;
        if !x.is_finite() {
            return Err(self.err(format!("number `{token}` overflows")));
        }
        Ok(Value::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-2.5e1").unwrap(), Value::Num(-25.0));
        assert_eq!(
            Value::parse("\"a\\n\\u0041\"").unwrap(),
            Value::Str("a\nA".into())
        );
        let v = Value::parse(r#"{"op":"churn","events":[{"kind":"leave","node":3}]}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("churn"));
        let events = v.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events[0].get("node").unwrap().as_usize(), Some(3));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "1 2",
            "01e",
            "1e999",
            "{\"a\" 1}",
            "\u{1}",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Nesting bomb: 64 levels of arrays.
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn render_is_deterministic_and_reparseable() {
        let v = Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("n".into(), Value::Num(3.0)),
            ("xs".into(), Value::Arr(vec![Value::Num(0.5), Value::Null])),
            ("s".into(), Value::Str("q\"\\\n".into())),
        ]);
        let text = v.render();
        assert_eq!(text, r#"{"ok":true,"n":3,"xs":[0.5,null],"s":"q\"\\\n"}"#);
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn integer_accessors_check_representability() {
        assert_eq!(Value::Num(7.0).as_u64(), Some(7));
        assert_eq!(Value::Num(7.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1e300).as_u64(), None);
        assert_eq!(Value::Bool(true).as_u64(), None);
    }
}
