//! The daemon: a TCP listener, a worker pool, and one resident
//! [`Maintainer`] behind a mutex.
//!
//! Every connection is a JSONL session served by an `mcds-pool` worker;
//! requests across all connections funnel into the shared state under a
//! single lock, so the engine only ever sees a serial event history.
//! Churn events do not touch the engine on arrival — they queue, and a
//! `churn` request with `"admit":true` drains the queue as one *tick* in
//! the canonical admission order (see [`admission_key`]).  Two servers
//! fed the same batches in any per-batch arrival order therefore hold
//! bit-identical state after each tick — the DESIGN.md §8 determinism
//! contract extended over the wire.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use mcds_maintain::{MaintainConfig, Maintainer, NodeId, TopologyEvent};
use mcds_pool::ThreadPool;
use mcds_udg::Udg;

use crate::proto::{
    self, ProtoError, QueryRequest, Request, SolveRequest, TickOutcome, MAX_LINE_BYTES,
};

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Unit-disk communication radius of the resident topology.
    pub radius: f64,
    /// Domination multiplicity maintained under churn (`1..=3`).
    pub m: usize,
    /// Worker pool width.  One handler per connection, so this bounds the
    /// number of concurrently served clients; with 1 the accept loop
    /// serves connections inline, one at a time.
    pub threads: usize,
    /// Longest accepted request line in bytes (newline included).
    pub max_line: usize,
    /// Keep buffered span/log trace events for a later flush.  A daemon
    /// enables the obs subscriber so the metrics endpoints have data;
    /// when nothing will ever flush the trace (no `--trace` file), the
    /// accept loop discards buffered events on idle so memory stays
    /// bounded over days of uptime.
    pub retain_trace: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            radius: 1.0,
            m: 1,
            threads: mcds_pool::default_parallelism(),
            max_line: MAX_LINE_BYTES,
            retain_trace: false,
        }
    }
}

/// Mutable server state: the engine plus the churn admission queue.
struct State {
    engine: Maintainer,
    pending: Vec<TopologyEvent>,
    tick: u64,
}

/// State shared between the accept loop and connection handlers.
struct Shared {
    state: Mutex<State>,
    shutdown: AtomicBool,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A poisoned lock means a handler panicked mid-request; the state
        // is still structurally sound (the engine verifies after every
        // event), so keep serving instead of wedging the daemon.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The canonical admission order of one tick: leaves, then moves, then
/// joins; ties broken by node id, then by position bits.  Any total
/// order would do for determinism — this one drains departures first so
/// a move of a node that also left the same tick is rejected rather
/// than order-dependent.
fn admission_key(e: &TopologyEvent) -> (u8, NodeId, u64, u64) {
    match *e {
        TopologyEvent::Leave { node } => (0, node, 0, 0),
        TopologyEvent::Move { node, to } => (1, node, to.x.to_bits(), to.y.to_bits()),
        TopologyEvent::Join { pos } => (2, 0, pos.x.to_bits(), pos.y.to_bits()),
    }
}

/// Drains the pending queue as one tick: sort canonically, validate each
/// event against the *current* engine state, apply the valid ones.
fn admit(state: &mut State) -> TickOutcome {
    let mut batch = std::mem::take(&mut state.pending);
    batch.sort_by_key(admission_key);
    let mut admitted = 0;
    let mut rejected = 0;
    for event in batch {
        let valid = match &event {
            TopologyEvent::Join { pos } => pos.is_finite(),
            TopologyEvent::Leave { node } => state.engine.is_alive(*node),
            TopologyEvent::Move { node, to } => state.engine.is_alive(*node) && to.is_finite(),
        };
        if valid {
            state.engine.apply(event);
            admitted += 1;
        } else {
            rejected += 1;
        }
    }
    state.tick += 1;
    mcds_obs::counter!("serve.ticks");
    mcds_obs::counter!("serve.churn_admitted", admitted as u64);
    mcds_obs::counter!("serve.churn_rejected", rejected as u64);
    TickOutcome {
        tick: state.tick,
        admitted,
        rejected,
        population: state.engine.population(),
        backbone: state.engine.backbone().len(),
    }
}

/// A bound JSONL server holding one resident maintained backbone.
///
/// ```no_run
/// use mcds_serve::{ServeConfig, Server};
///
/// let points = vec![]; // usually a generated or loaded instance
/// let server = Server::bind("127.0.0.1:0", ServeConfig::default(), points)?;
/// println!("listening on {}", server.local_addr()?);
/// server.run()?; // blocks until a client sends {"op":"shutdown"}
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("cfg", &self.cfg)
            .field("addr", &self.listener.local_addr())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and seeds the
    /// resident engine with `points` (stable ids `0..points.len()`).
    pub fn bind(
        addr: &str,
        cfg: ServeConfig,
        points: Vec<mcds_geom::Point>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let engine = Maintainer::with_population(
            MaintainConfig {
                radius: cfg.radius,
                m: cfg.m,
                ..MaintainConfig::default()
            },
            points,
        );
        Ok(Server {
            listener,
            cfg,
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    engine,
                    pending: Vec::new(),
                    tick: 0,
                }),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a `shutdown` request arrives, then waits
    /// for in-flight handlers to drain and returns.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let pool = ThreadPool::new(self.cfg.threads);
        let cfg = self.cfg;
        let shared = &self.shared;
        let mut accept_error = None;
        pool.scope(|scope| {
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        mcds_obs::counter!("serve.connections");
                        let shared = Arc::clone(shared);
                        scope.spawn(move || handle_connection(stream, &shared, cfg));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if !cfg.retain_trace {
                            // Nothing will flush the trace buffer; drop
                            // accumulated span/log events (the metric
                            // registry is untouched) so a long-lived
                            // daemon's memory stays bounded.
                            mcds_obs::trace::discard_events();
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        accept_error = Some(e);
                        shared.shutdown.store(true, Ordering::SeqCst);
                    }
                }
            }
        });
        match accept_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Reads one newline-terminated line into `acc`, polling the shutdown
/// flag on read timeouts and enforcing the line-length cap as bytes
/// arrive (not after).  Returns `Ok(None)` on EOF or shutdown.
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    acc: &mut Vec<u8>,
    max: usize,
    shutdown: &AtomicBool,
) -> Result<Option<String>, LineError> {
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(LineError::Io),
        };
        if chunk.is_empty() {
            // EOF; a final unterminated line still counts as a request.
            return if acc.is_empty() {
                Ok(None)
            } else {
                Ok(Some(take_line(acc)))
            };
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let upto = newline.map_or(chunk.len(), |i| i + 1);
        acc.extend_from_slice(&chunk[..upto]);
        reader.consume(upto);
        if acc.len() > max {
            return Err(LineError::TooLong);
        }
        if newline.is_some() {
            return Ok(Some(take_line(acc)));
        }
    }
}

fn take_line(acc: &mut Vec<u8>) -> String {
    let mut bytes = std::mem::take(acc);
    if bytes.last() == Some(&b'\n') {
        bytes.pop();
    }
    if bytes.last() == Some(&b'\r') {
        bytes.pop();
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

enum LineError {
    TooLong,
    /// Transport failure; the connection is simply dropped, so the
    /// underlying error is not carried.
    Io,
}

fn handle_connection(stream: TcpStream, shared: &Shared, cfg: ServeConfig) {
    // One small response per request: Nagle's algorithm would hold each
    // one hostage to the client's delayed ACK (~40 ms per round trip),
    // so send immediately.  Short read timeouts let idle connections
    // notice a shutdown requested elsewhere.  Failures here mean the
    // socket is already dead, so just drop it.
    if stream.set_nodelay(true).is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut acc = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let line = match read_line_limited(&mut reader, &mut acc, cfg.max_line, &shared.shutdown) {
            Ok(Some(line)) => line,
            Ok(None) => return,
            Err(LineError::TooLong) => {
                // Framing is unrecoverable past an oversized line: report
                // and close.
                let msg = format!("request line exceeds {} bytes", cfg.max_line);
                let _ = writeln!(writer, "{}", proto::render_error(&msg));
                return;
            }
            Err(LineError::Io) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        if is_http_request_line(&line) {
            // HTTP/1.1 shim: one request, one response, no keep-alive.
            // Scrapers (curl, Prometheus) share the JSONL port — JSONL
            // request lines start with `{`, so the grammars never clash.
            mcds_obs::counter!("serve.http_requests");
            drain_http_headers(&mut reader, &mut acc, cfg.max_line, &shared.shutdown);
            let response = http_response(&line);
            let _ = writer
                .write_all(response.as_bytes())
                .and_then(|()| writer.flush());
            return;
        }
        mcds_obs::counter!("serve.requests");
        let t0 = std::time::Instant::now();
        let (response, close) = respond(&line, shared, cfg);
        mcds_obs::observe_duration("serve.request_ns", t0.elapsed());
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if close {
            return;
        }
    }
}

/// Whether a received line is an HTTP request line (`GET /x HTTP/1.1`)
/// rather than a JSONL request: an all-uppercase method token followed
/// by a target and an `HTTP/1.` version.
fn is_http_request_line(line: &str) -> bool {
    let Some((method, rest)) = line.split_once(' ') else {
        return false;
    };
    (1..=16).contains(&method.len())
        && method.bytes().all(|b| b.is_ascii_uppercase())
        && rest.contains("HTTP/1.")
}

/// Reads header lines until the empty line that ends an HTTP request
/// head (or EOF/shutdown/error), with the same per-line byte cap as the
/// JSONL protocol and a hard cap on header count — the shim never
/// buffers an unbounded request.
fn drain_http_headers(
    reader: &mut BufReader<TcpStream>,
    acc: &mut Vec<u8>,
    max: usize,
    shutdown: &AtomicBool,
) {
    for _ in 0..64 {
        match read_line_limited(reader, acc, max, shutdown) {
            Ok(Some(line)) if !line.is_empty() => continue,
            _ => return,
        }
    }
}

/// The shim's entire routing table: `GET /metrics` serves the Prometheus
/// text exposition; anything else is 404/405.  Responses always carry
/// `Content-Length` and `Connection: close`.
fn http_response(request_line: &str) -> String {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (status, extra, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "Allow: GET\r\n",
            "only GET is supported; the JSONL protocol shares this port\n".to_string(),
        )
    } else if target == "/metrics" || target.starts_with("/metrics?") {
        ("200 OK", "", mcds_obs::metrics_text())
    } else {
        ("404 Not Found", "", "try GET /metrics\n".to_string())
    };
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Dispatches one request line; the bool asks the caller to close the
/// connection afterwards.
fn respond(line: &str, shared: &Shared, cfg: ServeConfig) -> (String, bool) {
    match Request::parse(line) {
        Err(ProtoError(msg)) => {
            mcds_obs::counter!("serve.bad_requests");
            (proto::render_error(&msg), false)
        }
        Ok(Request::Solve(req)) => (handle_solve(shared, cfg, &req), false),
        Ok(Request::Churn { events, admit: run }) => {
            let mut state = shared.lock();
            let queued = events.len();
            state.pending.extend(events);
            let outcome = run.then(|| admit(&mut state));
            let pending = state.pending.len();
            (proto::render_churn(queued, pending, outcome), false)
        }
        Ok(Request::Query(q)) => (handle_query(shared, cfg, q), false),
        Ok(Request::Metrics) => (proto::render_metrics(), false),
        Ok(Request::Shutdown) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (proto::render_shutdown(), true)
        }
    }
}

/// Solves the resident topology from scratch, exactly the way the batch
/// CLI does (same solver configuration, same renderer), mapping compact
/// solver indices back to stable node ids.
fn handle_solve(shared: &Shared, cfg: ServeConfig, req: &SolveRequest) -> String {
    let _span = mcds_obs::span("serve.solve");
    let state = shared.lock();
    let alive = state.engine.alive();
    if alive.is_empty() {
        return proto::render_error("no nodes alive");
    }
    let ids: Vec<NodeId> = alive.iter().map(|&(id, _)| id).collect();
    let pts: Vec<mcds_geom::Point> = alive.iter().map(|&(_, p)| p).collect();
    let udg = Udg::with_radius(pts, cfg.radius);
    let g = udg.graph();
    let solution = mcds_cds::Solver::new(req.alg)
        .verify(true)
        .prune(req.prune)
        .m(req.m)
        .biconnect(req.biconnect)
        .weight_scheme(req.weights)
        .solve(g);
    let cds = match solution {
        Ok(s) => s.into_cds(),
        Err(e) => return proto::render_error(&format!("{}: {e}", req.alg.name())),
    };
    let weight_total = req.weights.total(g, cds.nodes());
    let dominators: Vec<usize> = cds.dominators().iter().map(|&v| ids[v]).collect();
    let connectors: Vec<usize> = cds.connectors().iter().map(|&v| ids[v]).collect();
    proto::render_solve(req, g.num_nodes(), weight_total, &dominators, &connectors)
}

fn handle_query(shared: &Shared, cfg: ServeConfig, q: QueryRequest) -> String {
    let state = shared.lock();
    let engine = &state.engine;
    match q {
        QueryRequest::Stats => {
            let alive = engine.alive();
            let giant = if alive.is_empty() {
                0
            } else {
                let pts: Vec<mcds_geom::Point> = alive.iter().map(|&(_, p)| p).collect();
                let udg = Udg::with_radius(pts, cfg.radius);
                mcds_graph::traversal::largest_component(udg.graph()).len()
            };
            proto::render_stats(
                state.tick,
                engine.population(),
                giant,
                engine.dominators().len(),
                engine.connectors().len(),
            )
        }
        QueryRequest::DominatorOf(node) => {
            let Some(pos) = engine.position(node) else {
                return proto::render_dominator_of(node, false, &[]);
            };
            // Same adjacency rule as Udg::with_radius (closed disk with
            // the geometry epsilon); a dominator dominates itself.
            let r_sq = cfg.radius * cfg.radius + mcds_geom::EPS;
            let dominators: Vec<NodeId> = engine
                .dominators()
                .iter()
                .copied()
                .filter(|&d| {
                    d == node || engine.position(d).is_some_and(|q| pos.dist_sq(q) <= r_sq)
                })
                .collect();
            proto::render_dominator_of(node, true, &dominators)
        }
        QueryRequest::Member(node) => {
            let alive = engine.is_alive(node);
            let role = if !alive {
                "client"
            } else if engine.dominators().binary_search(&node).is_ok() {
                "dominator"
            } else if engine.connectors().binary_search(&node).is_ok() {
                "connector"
            } else {
                "client"
            };
            proto::render_member(node, alive, role)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_geom::Point;

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect()
    }

    #[test]
    fn admission_order_is_canonical_and_validating() {
        let engine = Maintainer::with_population(MaintainConfig::default(), line(6));
        let mut state = State {
            engine,
            pending: vec![
                TopologyEvent::Join {
                    pos: Point::new(5.0, 0.1),
                },
                TopologyEvent::Move {
                    node: 2,
                    to: Point::new(1.6, 0.1),
                },
                TopologyEvent::Leave { node: 4 },
                // Node 4 leaves this same tick; its move must be rejected
                // (leaves drain first), not applied or panicking.
                TopologyEvent::Move {
                    node: 4,
                    to: Point::new(3.0, 0.0),
                },
                TopologyEvent::Leave { node: 99 }, // dead: rejected
            ],
            tick: 0,
        };
        let out = admit(&mut state);
        assert_eq!(out.tick, 1);
        assert_eq!(out.admitted, 3); // leave 4, move 2, join
        assert_eq!(out.rejected, 2);
        assert_eq!(out.population, 6); // 6 - 1 + 1
        assert!(state.pending.is_empty());
        assert!(!state.engine.is_alive(4));
        assert!(state.engine.is_alive(6)); // the join got the next id
    }

    #[test]
    fn http_request_lines_are_distinguished_from_jsonl() {
        assert!(is_http_request_line("GET /metrics HTTP/1.1"));
        assert!(is_http_request_line("HEAD / HTTP/1.0"));
        assert!(is_http_request_line("POST /metrics HTTP/1.1"));
        assert!(!is_http_request_line("{\"op\":\"metrics\"}"));
        assert!(!is_http_request_line("get /metrics HTTP/1.1"));
        assert!(!is_http_request_line("GET"));
        assert!(!is_http_request_line("GARBAGE but no version"));
        assert!(!is_http_request_line(""));
    }

    #[test]
    fn http_routing_table_covers_200_404_405() {
        let ok = http_response("GET /metrics HTTP/1.1");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Length: "));
        assert!(ok.contains("Connection: close\r\n"));
        let not_found = http_response("GET /other HTTP/1.1");
        assert!(not_found.starts_with("HTTP/1.1 404 Not Found\r\n"));
        let bad_method = http_response("POST /metrics HTTP/1.1");
        assert!(bad_method.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(bad_method.contains("Allow: GET\r\n"));
        // Content-Length matches the body byte count exactly.
        let (head, body) = ok.split_once("\r\n\r\n").unwrap();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
    }

    #[test]
    fn admission_is_interleaving_invariant() {
        let events = vec![
            TopologyEvent::Leave { node: 1 },
            TopologyEvent::Join {
                pos: Point::new(2.1, 0.4),
            },
            TopologyEvent::Move {
                node: 3,
                to: Point::new(2.5, 0.2),
            },
            TopologyEvent::Join {
                pos: Point::new(0.3, 0.3),
            },
        ];
        let run = |order: Vec<TopologyEvent>| {
            let mut state = State {
                engine: Maintainer::with_population(MaintainConfig::default(), line(5)),
                pending: order,
                tick: 0,
            };
            admit(&mut state);
            (state.engine.alive(), state.engine.backbone())
        };
        let mut reversed = events.clone();
        reversed.reverse();
        assert_eq!(run(events), run(reversed));
    }
}
