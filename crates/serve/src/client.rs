//! Client side: a blocking one-line-per-request connection and the
//! in-tree load generator behind `mcds-cli serve --bench` and E21.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mcds_geom::Point;
use mcds_maintain::TopologyEvent;

use crate::proto::render_event;

/// A blocking JSONL client connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads the one-line response.
    ///
    /// `line` must be a single JSON object without embedded newlines.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        debug_assert!(!line.contains('\n'), "requests are one line each");
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}

/// Load-generator shape: `clients` concurrent connections, each sending
/// `requests` requests of a fixed query-heavy mix with a churn batch
/// every `churn_every`-th request (0 disables churn).
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Every how many requests a client submits a churn batch (0: never).
    pub churn_every: usize,
}

/// Aggregated result of one load run.  All latency fields are wall-clock
/// and therefore excluded from byte-compared artifacts (DESIGN.md §8).
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Requests sent across all clients.
    pub requests: usize,
    /// Responses with `"ok":false` or transport failures.
    pub errors: usize,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

impl LoadReport {
    /// Requests per second over the whole run.
    pub fn throughput(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.requests as f64 / self.wall.as_secs_f64()
        }
    }
}

/// The deterministic request mix: the request `client` sends as its
/// `i`-th, as a wire line.  Queries dominate; every `churn_every`-th
/// request is a churn batch (a join plus a move of a seed node, at
/// positions derived arithmetically from `(client, i)` so the stream
/// needs no RNG), admitted immediately.
pub fn mix_request(client: usize, i: usize, churn_every: usize, side: f64) -> String {
    if churn_every > 0 && i % churn_every == churn_every - 1 {
        let k = client * 7919 + i; // distinct odd stride per client
        let coord = |j: usize| (j % 97) as f64 * side / 97.0;
        let join = TopologyEvent::Join {
            pos: Point::new(coord(k), coord(k / 97)),
        };
        let mv = TopologyEvent::Move {
            node: client % 4,
            to: Point::new(coord(k + 13), coord(k / 97 + 13)),
        };
        return format!(
            r#"{{"op":"churn","events":[{},{}],"admit":true}}"#,
            render_event(&join),
            render_event(&mv)
        );
    }
    match i % 4 {
        0 => r#"{"op":"query","what":"stats"}"#.to_string(),
        1 => format!(r#"{{"op":"query","what":"member","node":{}}}"#, i % 50),
        2 => format!(
            r#"{{"op":"query","what":"dominator-of","node":{}}}"#,
            i % 50
        ),
        _ => r#"{"op":"metrics"}"#.to_string(),
    }
}

/// Runs the load shape against a server and aggregates latencies.
///
/// Client threads are plain `std::thread`s — this is the measuring side,
/// not the deterministic side; only the server's state must be (and is)
/// interleaving-invariant.  `side` bounds the synthetic join positions.
pub fn run_load(addr: &str, cfg: LoadConfig, side: f64) -> std::io::Result<LoadReport> {
    let started = Instant::now();
    let results: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(cfg.requests);
                    let mut errors = 0usize;
                    let mut client = match Client::connect(addr) {
                        Ok(c) => c,
                        Err(_) => return (latencies, cfg.requests),
                    };
                    for i in 0..cfg.requests {
                        let line = mix_request(c, i, cfg.churn_every, side);
                        let t0 = Instant::now();
                        match client.request(&line) {
                            Ok(resp) => {
                                let us =
                                    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                                latencies.push(us);
                                if !resp.starts_with("{\"ok\":true") {
                                    errors += 1;
                                }
                            }
                            Err(_) => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let wall = started.elapsed();
    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0;
    for (ls, e) in results {
        latencies.extend(ls);
        errors += e;
    }
    latencies.sort_unstable();
    Ok(LoadReport {
        requests: cfg.clients * cfg.requests,
        errors,
        wall,
        p50_us: percentile(&latencies, 50),
        p99_us: percentile(&latencies, 99),
    })
}

// Nearest-rank percentile; the canonical implementation lives next to
// the histogram code in `mcds-obs` and is re-exported here for the
// bench client's historical call sites (E21's exp_serve among them).
pub use mcds_obs::percentile;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_parseable() {
        for c in 0..3 {
            for i in 0..12 {
                let a = mix_request(c, i, 5, 4.0);
                let b = mix_request(c, i, 5, 4.0);
                assert_eq!(a, b);
                crate::proto::Request::parse(&a).expect("mix request parses");
            }
        }
        // churn_every = 0 never emits churn
        for i in 0..20 {
            assert!(!mix_request(0, i, 0, 4.0).contains("churn"));
        }
    }
}
