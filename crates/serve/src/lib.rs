//! Backbone-as-a-service: a zero-dependency JSONL-over-TCP daemon that
//! keeps a [`mcds_maintain::Maintainer`] resident in memory and answers
//! solve / churn / query / metrics requests over it.
//!
//! One JSON object per line in each direction (see [`proto`] for the
//! schema).  The daemon's two load-bearing properties:
//!
//! * **Byte-identical solves** — the solve handler configures
//!   [`mcds_cds::Solver`] exactly like the batch CLI and renders through
//!   the same [`proto::render_solve`], so `scripts/verify.sh` can `diff`
//!   the daemon's answer against `mcds-cli solve --json`.
//! * **Interleaving-invariant churn** — events queue and are admitted in
//!   batches per *tick*, sorted into a canonical order first, so the
//!   resident state after each tick is independent of which client's
//!   events arrived first (DESIGN.md §8 over the wire).
//!
//! The crate splits into [`json`] (a strict, deterministic JSON value
//! model — the only parser in the workspace), [`proto`] (request
//! parsing + fixed-field-order response rendering), [`server`] (the
//! daemon: `mcds-pool` workers, one mutex-guarded engine), and
//! [`client`] (blocking client + the load generator behind E21).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod json;
pub mod proto;
pub mod server;

pub use client::{run_load, Client, LoadConfig, LoadReport};
pub use server::{ServeConfig, Server};
