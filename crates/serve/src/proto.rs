//! The wire protocol: request parsing and response rendering.
//!
//! One JSON object per line in each direction.  Requests carry an `"op"`
//! field selecting the verb; unknown fields are rejected so client typos
//! fail loudly instead of silently defaulting.  Responses always lead
//! with `"ok"` and render fields in a fixed order, so equal answers are
//! byte-equal — the property `scripts/verify.sh` exploits to diff the
//! daemon's solve answer against the batch CLI's `solve --json` output.
//!
//! ```text
//! > {"op":"solve","alg":"greedy","prune":true}
//! < {"ok":true,"op":"solve","alg":"greedy","n":60,"size":11,"weights":"unit","weight_total":11,"dominators":[...],"connectors":[...]}
//! > {"op":"churn","events":[{"kind":"leave","node":3}],"admit":true}
//! < {"ok":true,"op":"churn","queued":1,"tick":1,"admitted":1,"rejected":0,"population":59,"backbone":14}
//! > {"op":"query","what":"stats"}
//! < {"ok":true,"op":"query","what":"stats","tick":1,"population":59,"giant":59,"dominators":8,"connectors":6,"backbone":14}
//! > {"op":"metrics"}
//! < {"ok":true,"op":"metrics","counters":{...},"gauges":{...},"hists":{...}}
//! > {"op":"shutdown"}
//! < {"ok":true,"op":"shutdown"}
//! ```

use std::fmt;

use mcds_cds::{Algorithm, WeightScheme};
use mcds_geom::Point;
use mcds_maintain::TopologyEvent;
use mcds_obs::trace::json_escape;

use crate::json::Value;

/// Default cap on request line length (bytes, newline included); longer
/// lines are rejected and the connection closed, since framing can no
/// longer be trusted.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve the resident topology from scratch.
    Solve(SolveRequest),
    /// Submit churn events; with `admit`, also run an admission tick.
    Churn {
        /// Events to enqueue (validated at admission, not here).
        events: Vec<TopologyEvent>,
        /// Whether to drain the whole pending queue as one tick.
        admit: bool,
    },
    /// Read-only questions about the maintained backbone.
    Query(QueryRequest),
    /// Dump the `mcds-obs` metric registry.
    Metrics,
    /// Stop the server after acknowledging.
    Shutdown,
}

/// Parameters of a `solve` request (all optional on the wire).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRequest {
    /// Construction to run (default `greedy`).
    pub alg: Algorithm,
    /// Domination multiplicity `1..=3` (default 1).
    pub m: usize,
    /// Augment to 2-connectivity (default false).
    pub biconnect: bool,
    /// Run the validity-preserving prune pass (default false).
    pub prune: bool,
    /// Node-weight scheme (default unit).
    pub weights: WeightScheme,
}

impl Default for SolveRequest {
    fn default() -> Self {
        SolveRequest {
            alg: Algorithm::GreedyConnect,
            m: 1,
            biconnect: false,
            prune: false,
            weights: WeightScheme::Unit,
        }
    }
}

/// The `query` verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRequest {
    /// Backbone shape and population summary.
    Stats,
    /// The backbone members currently dominating `node`.
    DominatorOf(usize),
    /// Whether `node` is in the backbone, and in which role.
    Member(usize),
}

/// A rejected request line; the message is sent back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtoError {}

fn perr(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let doc = Value::parse(line).map_err(|e| perr(format!("bad JSON: {e}")))?;
        let Value::Obj(fields) = &doc else {
            return Err(perr("request must be a JSON object"));
        };
        let op = doc
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| perr("request needs a string \"op\" field"))?;
        let allowed: &[&str] = match op {
            "solve" => &[
                "op",
                "alg",
                "m",
                "biconnect",
                "prune",
                "weights",
                "weight_seed",
            ],
            "churn" => &["op", "events", "admit"],
            "query" => &["op", "what", "node"],
            "metrics" | "shutdown" => &["op"],
            other => return Err(perr(format!("unknown op \"{}\"", json_escape(other)))),
        };
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(perr(format!(
                    "unknown field \"{}\" for op \"{op}\"",
                    json_escape(key)
                )));
            }
        }
        match op {
            "solve" => Ok(Request::Solve(parse_solve(&doc)?)),
            "churn" => {
                let events = match doc.get("events") {
                    None => Vec::new(),
                    Some(v) => {
                        let items = v
                            .as_arr()
                            .ok_or_else(|| perr("\"events\" must be an array"))?;
                        items.iter().map(parse_event).collect::<Result<_, _>>()?
                    }
                };
                let admit = parse_bool(&doc, "admit")?;
                Ok(Request::Churn { events, admit })
            }
            "query" => {
                let what = doc
                    .get("what")
                    .and_then(Value::as_str)
                    .ok_or_else(|| perr("query needs a string \"what\" field"))?;
                let node = || {
                    doc.get("node")
                        .and_then(Value::as_usize)
                        .ok_or_else(|| perr(format!("query \"{what}\" needs a \"node\" id")))
                };
                match what {
                    "stats" => Ok(Request::Query(QueryRequest::Stats)),
                    "dominator-of" => Ok(Request::Query(QueryRequest::DominatorOf(node()?))),
                    "member" => Ok(Request::Query(QueryRequest::Member(node()?))),
                    other => Err(perr(format!(
                        "unknown query \"{}\" (valid: stats, dominator-of, member)",
                        json_escape(other)
                    ))),
                }
            }
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            _ => unreachable!("filtered above"),
        }
    }
}

fn parse_bool(doc: &Value, key: &str) -> Result<bool, ProtoError> {
    match doc.get(key) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| perr(format!("\"{key}\" must be a boolean"))),
    }
}

fn parse_solve(doc: &Value) -> Result<SolveRequest, ProtoError> {
    let mut req = SolveRequest::default();
    if let Some(v) = doc.get("alg") {
        let name = v.as_str().ok_or_else(|| perr("\"alg\" must be a string"))?;
        req.alg = name.parse().map_err(|e| perr(format!("{e}")))?;
    }
    if let Some(v) = doc.get("m") {
        req.m = v
            .as_usize()
            .filter(|m| (1..=3).contains(m))
            .ok_or_else(|| perr("\"m\" must be 1, 2, or 3"))?;
    }
    req.biconnect = parse_bool(doc, "biconnect")?;
    req.prune = parse_bool(doc, "prune")?;
    let seed = match doc.get("weight_seed") {
        None => 1,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| perr("\"weight_seed\" must be a non-negative integer"))?,
    };
    if let Some(v) = doc.get("weights") {
        let name = v
            .as_str()
            .ok_or_else(|| perr("\"weights\" must be a string"))?;
        req.weights = WeightScheme::parse(name, seed).map_err(|e| perr(format!("{e}")))?;
    }
    Ok(req)
}

fn parse_event(v: &Value) -> Result<TopologyEvent, ProtoError> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| perr("event needs a string \"kind\" field"))?;
    let coord = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .filter(|x| x.is_finite())
            .ok_or_else(|| perr(format!("event \"{kind}\" needs a finite \"{key}\"")))
    };
    let node = || {
        v.get("node")
            .and_then(Value::as_usize)
            .ok_or_else(|| perr(format!("event \"{kind}\" needs a \"node\" id")))
    };
    match kind {
        "join" => Ok(TopologyEvent::Join {
            pos: Point::new(coord("x")?, coord("y")?),
        }),
        "leave" => Ok(TopologyEvent::Leave { node: node()? }),
        "move" => Ok(TopologyEvent::Move {
            node: node()?,
            to: Point::new(coord("x")?, coord("y")?),
        }),
        other => Err(perr(format!(
            "unknown event kind \"{}\" (valid: join, leave, move)",
            json_escape(other)
        ))),
    }
}

/// Renders one topology event the way [`parse_event`] reads it (used by
/// clients and the load generator).
pub fn render_event(event: &TopologyEvent) -> String {
    match event {
        TopologyEvent::Join { pos } => Value::Obj(vec![
            ("kind".into(), Value::Str("join".into())),
            ("x".into(), Value::Num(pos.x)),
            ("y".into(), Value::Num(pos.y)),
        ]),
        TopologyEvent::Leave { node } => Value::Obj(vec![
            ("kind".into(), Value::Str("leave".into())),
            ("node".into(), Value::Num(*node as f64)),
        ]),
        TopologyEvent::Move { node, to } => Value::Obj(vec![
            ("kind".into(), Value::Str("move".into())),
            ("node".into(), Value::Num(*node as f64)),
            ("x".into(), Value::Num(to.x)),
            ("y".into(), Value::Num(to.y)),
        ]),
    }
    .render()
}

/// Renders an error response.
pub fn render_error(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(msg))
}

/// Renders a node id list as a JSON array.
fn render_ids(ids: &[usize]) -> String {
    let mut out = String::from("[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
    out.push(']');
    out
}

/// Renders a solve response.  Shared verbatim by the daemon and by
/// `mcds-cli solve --json`, which is what makes the two answers
/// byte-identical by construction.
pub fn render_solve(
    req: &SolveRequest,
    n: usize,
    weight_total: u64,
    dominators: &[usize],
    connectors: &[usize],
) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"solve\",\"alg\":\"{}\",\"n\":{n},\"size\":{},\
         \"weights\":\"{}\",\"weight_total\":{weight_total},\
         \"dominators\":{},\"connectors\":{}}}",
        req.alg.name(),
        dominators.len() + connectors.len(),
        req.weights.name(),
        render_ids(dominators),
        render_ids(connectors),
    )
}

/// Outcome of one admission tick, rendered into churn responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickOutcome {
    /// Tick number after admission.
    pub tick: u64,
    /// Events applied this tick.
    pub admitted: usize,
    /// Events dropped by validation (dead node, non-finite position).
    pub rejected: usize,
    /// Live nodes after the tick.
    pub population: usize,
    /// Backbone size after the tick.
    pub backbone: usize,
}

/// Renders a churn response; `queued` counts this request's events and
/// `pending` the queue depth left behind (absent when a tick ran).
pub fn render_churn(queued: usize, pending: usize, tick: Option<TickOutcome>) -> String {
    match tick {
        None => {
            format!("{{\"ok\":true,\"op\":\"churn\",\"queued\":{queued},\"pending\":{pending}}}")
        }
        Some(t) => format!(
            "{{\"ok\":true,\"op\":\"churn\",\"queued\":{queued},\"tick\":{},\"admitted\":{},\
             \"rejected\":{},\"population\":{},\"backbone\":{}}}",
            t.tick, t.admitted, t.rejected, t.population, t.backbone
        ),
    }
}

/// Renders a `query stats` response.
#[allow(clippy::too_many_arguments)]
pub fn render_stats(
    tick: u64,
    population: usize,
    giant: usize,
    dominators: usize,
    connectors: usize,
) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"query\",\"what\":\"stats\",\"tick\":{tick},\
         \"population\":{population},\"giant\":{giant},\"dominators\":{dominators},\
         \"connectors\":{connectors},\"backbone\":{}}}",
        dominators + connectors
    )
}

/// Renders a `query dominator-of` response.
pub fn render_dominator_of(node: usize, alive: bool, dominators: &[usize]) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"query\",\"what\":\"dominator-of\",\"node\":{node},\
         \"alive\":{alive},\"dominators\":{}}}",
        render_ids(dominators)
    )
}

/// Renders a `query member` response; `role` is `dominator`, `connector`
/// or `client`.
pub fn render_member(node: usize, alive: bool, role: &str) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"query\",\"what\":\"member\",\"node\":{node},\
         \"alive\":{alive},\"member\":{},\"role\":\"{role}\"}}",
        role != "client" && alive
    )
}

/// Renders the metrics dump around the `mcds-obs` registry snapshot.
pub fn render_metrics() -> String {
    format!(
        "{{\"ok\":true,\"op\":\"metrics\",{}}}",
        mcds_obs::trace::metrics_json()
    )
}

/// Renders the shutdown acknowledgement.
pub fn render_shutdown() -> String {
    "{\"ok\":true,\"op\":\"shutdown\"}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(
            Request::parse(r#"{"op":"solve"}"#).unwrap(),
            Request::Solve(SolveRequest::default())
        );
        let r = Request::parse(
            r#"{"op":"solve","alg":"waf","m":2,"biconnect":true,"prune":true,"weights":"random","weight_seed":9}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Solve(SolveRequest {
                alg: Algorithm::WafTree,
                m: 2,
                biconnect: true,
                prune: true,
                weights: WeightScheme::Random(9),
            })
        );
        let r = Request::parse(
            r#"{"op":"churn","events":[{"kind":"join","x":0.5,"y":1.5},{"kind":"leave","node":2},{"kind":"move","node":1,"x":0,"y":0}],"admit":true}"#,
        )
        .unwrap();
        match r {
            Request::Churn { events, admit } => {
                assert_eq!(events.len(), 3);
                assert!(admit);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            Request::parse(r#"{"op":"query","what":"stats"}"#).unwrap(),
            Request::Query(QueryRequest::Stats)
        );
        assert_eq!(
            Request::parse(r#"{"op":"query","what":"dominator-of","node":4}"#).unwrap(),
            Request::Query(QueryRequest::DominatorOf(4))
        );
        assert_eq!(
            Request::parse(r#"{"op":"query","what":"member","node":0}"#).unwrap(),
            Request::Query(QueryRequest::Member(0))
        );
        assert_eq!(
            Request::parse(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_bad_requests_with_messages() {
        for (line, needle) in [
            ("", "bad JSON"),
            ("[1]", "must be a JSON object"),
            (r#"{"op":"fly"}"#, "unknown op"),
            (r#"{"op":"solve","alg":"bogus"}"#, "bogus"),
            (r#"{"op":"solve","m":9}"#, "\"m\" must be"),
            (r#"{"op":"solve","turbo":true}"#, "unknown field"),
            (
                r#"{"op":"solve","weights":"lucky"}"#,
                "unknown weight scheme",
            ),
            (
                r#"{"op":"churn","events":[{"kind":"warp"}]}"#,
                "unknown event kind",
            ),
            (
                r#"{"op":"churn","events":[{"kind":"leave"}]}"#,
                "needs a \"node\"",
            ),
            (
                r#"{"op":"churn","events":[{"kind":"join","x":1}]}"#,
                "needs a finite \"y\"",
            ),
            (r#"{"op":"query","what":"age"}"#, "unknown query"),
            (r#"{"op":"query","what":"member"}"#, "needs a \"node\""),
            (r#"{"op":"shutdown","force":true}"#, "unknown field"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.0.contains(needle), "{line}: {}", err.0);
        }
    }

    #[test]
    fn event_rendering_round_trips() {
        let events = [
            TopologyEvent::Join {
                pos: Point::new(1.25, -0.5),
            },
            TopologyEvent::Leave { node: 17 },
            TopologyEvent::Move {
                node: 3,
                to: Point::new(0.0, 2.0),
            },
        ];
        for e in events {
            let line = format!(r#"{{"op":"churn","events":[{}]}}"#, render_event(&e));
            match Request::parse(&line).unwrap() {
                Request::Churn { events, .. } => assert_eq!(events, vec![e]),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn responses_are_fixed_order_json() {
        let solve = render_solve(&SolveRequest::default(), 5, 3, &[0, 2], &[1]);
        assert_eq!(
            solve,
            r#"{"ok":true,"op":"solve","alg":"greedy","n":5,"size":3,"weights":"unit","weight_total":3,"dominators":[0,2],"connectors":[1]}"#
        );
        assert!(Value::parse(&solve).is_ok());
        for line in [
            render_error("boom \"quoted\""),
            render_churn(2, 5, None),
            render_churn(
                0,
                0,
                Some(TickOutcome {
                    tick: 3,
                    admitted: 4,
                    rejected: 1,
                    population: 50,
                    backbone: 12,
                }),
            ),
            render_stats(1, 50, 49, 8, 4),
            render_dominator_of(3, true, &[1, 2]),
            render_member(1, true, "dominator"),
            render_shutdown(),
        ] {
            assert!(Value::parse(&line).is_ok(), "unparseable response {line}");
        }
        assert_eq!(
            render_member(9, false, "client"),
            r#"{"ok":true,"op":"query","what":"member","node":9,"alive":false,"member":false,"role":"client"}"#
        );
    }
}
