//! Property-based cross-checks of the exact solvers against the
//! exhaustive reference implementations, on tiny random graphs.

// Property tests need the external `proptest` crate, which is not
// available in hermetic (offline) builds; enable with
// `cargo test --features ext-tests` after restoring the dependency in
// the workspace manifest.
#![cfg(feature = "ext-tests")]

use mcds_exact::{
    brute, independence_number, max_independent_set, min_connected_dominating_set,
    min_dominating_set,
};
use mcds_graph::{properties, Graph};
use proptest::prelude::*;

fn tiny_graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..11).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 2))
            .prop_map(move |pairs| Graph::from_edges(n, pairs.into_iter().filter(|(u, v)| u != v)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alpha_matches_brute(g in tiny_graph_strategy()) {
        let fast = max_independent_set(&g);
        prop_assert!(properties::is_independent_set(&g, &fast));
        prop_assert_eq!(fast.len(), brute::max_independent_set_brute(&g).len());
    }

    #[test]
    fn gamma_matches_brute(g in tiny_graph_strategy()) {
        let fast = min_dominating_set(&g);
        prop_assert!(properties::is_dominating_set(&g, &fast));
        prop_assert_eq!(fast.len(), brute::min_dominating_set_brute(&g).len());
    }

    #[test]
    fn gamma_c_matches_brute(g in tiny_graph_strategy()) {
        let fast = min_connected_dominating_set(&g);
        let slow = brute::min_connected_dominating_set_brute(&g);
        match (fast, slow) {
            (Some(f), Some(s)) => {
                prop_assert!(properties::check_cds(&g, &f).is_ok());
                prop_assert_eq!(f.len(), s.len());
            }
            (None, None) => {} // both agree: disconnected
            (f, s) => prop_assert!(false, "solver disagreement: {:?} vs {:?}", f, s),
        }
    }

    #[test]
    fn solver_chain_inequalities(g in tiny_graph_strategy()) {
        // γ ≤ γ_c (when γ_c exists) and γ ≤ n − α... the complement of a
        // maximum independent set is a vertex cover, not directly γ; use
        // the standard facts: γ ≤ α (every maximal independent set is
        // dominating and α is the largest independent set... actually
        // γ ≤ size of ANY maximal independent set ≤ α).
        let gamma = min_dominating_set(&g).len();
        let alpha = independence_number(&g);
        prop_assert!(gamma <= alpha.max(1));
        if let Some(cds) = min_connected_dominating_set(&g) {
            prop_assert!(gamma <= cds.len().max(1));
        }
    }
}
