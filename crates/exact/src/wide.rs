//! Maximum independent set for graphs beyond 128 nodes: the same branch
//! & bound as [`crate::max_independent_set`], over arbitrary-width
//! bitsets (`Vec<u64>` rows).
//!
//! Slower per node than the `u128` fast path but unbounded in width; the
//! dispatching wrappers in [`crate`] pick the right engine.

use mcds_graph::Graph;

/// A fixed-width bitset over `words × 64` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Bits {
    words: Vec<u64>,
}

impl Bits {
    pub(crate) fn zeros(n_bits: usize) -> Self {
        Bits {
            words: vec![0; n_bits.div_ceil(64)],
        }
    }

    pub(crate) fn ones(n_bits: usize) -> Self {
        let mut b = Bits::zeros(n_bits);
        for (i, w) in b.words.iter_mut().enumerate() {
            let remaining = n_bits.saturating_sub(i * 64);
            *w = if remaining >= 64 {
                u64::MAX
            } else if remaining == 0 {
                0
            } else {
                (1u64 << remaining) - 1
            };
        }
        b
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    pub(crate) fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    #[cfg(test)] // exercised by the bitset unit tests only
    pub(crate) fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// First set bit, if any.
    pub(crate) fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// `self &= other`.
    pub(crate) fn and_assign(&mut self, other: &Bits) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other`.
    pub(crate) fn andnot_assign(&mut self, other: &Bits) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Popcount of `self & other` without allocating.
    pub(crate) fn and_count(&self, other: &Bits) -> u32 {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Iterates set bits ascending.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w0)| {
            let mut w = w0;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(i * 64 + b)
                }
            })
        })
    }
}

struct WideSearch<'a> {
    adj: &'a [Bits],
    best: Bits,
    best_size: u32,
    steps: u64,
    budget: u64,
}

impl WideSearch<'_> {
    /// Greedy clique-cover bound (same logic as the u128 engine).
    fn clique_cover_bound(&self, cand: &Bits) -> u32 {
        let mut cand = cand.clone();
        let mut cliques = 0u32;
        while let Some(v) = cand.first() {
            let mut common = self.adj[v].clone();
            cand.clear(v);
            loop {
                let mut pick = None;
                // First candidate inside the running clique intersection.
                for u in cand.iter() {
                    if common.get(u) {
                        pick = Some(u);
                        break;
                    }
                }
                match pick {
                    Some(u) => {
                        common.and_assign(&self.adj[u]);
                        cand.clear(u);
                    }
                    None => break,
                }
            }
            cliques += 1;
        }
        cliques
    }

    fn run(&mut self, current: &mut Bits, current_size: u32, cand: &Bits) -> bool {
        self.steps += 1;
        if self.steps > self.budget {
            return false;
        }
        if cand.is_empty() {
            if current_size > self.best_size {
                self.best_size = current_size;
                self.best = current.clone();
            }
            return true;
        }
        if current_size + self.clique_cover_bound(cand) <= self.best_size {
            return true;
        }
        // Pivot: max degree within cand.
        let mut pivot = usize::MAX;
        let mut pivot_deg = -1i64;
        for v in cand.iter() {
            let d = self.adj[v].and_count(cand) as i64;
            if d > pivot_deg {
                pivot_deg = d;
                pivot = v;
            }
        }
        let v = pivot;
        // Include v.
        let mut included = cand.clone();
        included.andnot_assign(&self.adj[v]);
        included.clear(v);
        current.set(v);
        let ok = self.run(current, current_size + 1, &included);
        current.clear(v);
        if !ok {
            return false;
        }
        // Exclude v.
        let mut excluded = cand.clone();
        excluded.clear(v);
        self.run(current, current_size, &excluded)
    }
}

/// Budgeted exact maximum independent set for arbitrary node counts.
///
/// Returns `None` if the budget is exhausted (a `Some` is always exact).
pub(crate) fn try_max_independent_set_wide(g: &Graph, max_steps: u64) -> Option<Vec<usize>> {
    let n = g.num_nodes();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut adj: Vec<Bits> = (0..n).map(|_| Bits::zeros(n)).collect();
    for (u, v) in g.edges() {
        adj[u].set(v);
        adj[v].set(u);
    }
    let mut search = WideSearch {
        adj: &adj,
        best: Bits::zeros(n),
        best_size: 0,
        steps: 0,
        budget: max_steps,
    };
    let full = Bits::ones(n);
    let mut current = Bits::zeros(n);
    if !search.run(&mut current, 0, &full) {
        return None;
    }
    Some(search.best.iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::properties;

    #[test]
    fn bits_basics() {
        let mut b = Bits::zeros(130);
        assert!(b.is_empty());
        b.set(0);
        b.set(64);
        b.set(129);
        assert_eq!(b.count(), 3);
        assert!(b.get(64));
        assert_eq!(b.first(), Some(0));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        b.clear(0);
        assert_eq!(b.first(), Some(64));
        let ones = Bits::ones(130);
        assert_eq!(ones.count(), 130);
        assert_eq!(b.and_count(&ones), 2);
        let mut c = ones.clone();
        c.andnot_assign(&b);
        assert_eq!(c.count(), 128);
    }

    #[test]
    fn wide_agrees_with_narrow_on_small_graphs() {
        let mut s = 31337u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..15 {
            let n = 18;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 22 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, edges);
            let wide = try_max_independent_set_wide(&g, u64::MAX).unwrap();
            let narrow = crate::max_independent_set(&g);
            assert!(properties::is_independent_set(&g, &wide));
            assert_eq!(wide.len(), narrow.len(), "{g:?}");
        }
    }

    #[test]
    fn wide_handles_more_than_128_nodes() {
        // A 150-cycle: α = 75.
        let g = Graph::cycle(150);
        let mis = try_max_independent_set_wide(&g, u64::MAX).unwrap();
        assert_eq!(mis.len(), 75);
        assert!(properties::is_independent_set(&g, &mis));
    }

    #[test]
    fn wide_respects_budget() {
        let g = Graph::cycle(200);
        assert!(try_max_independent_set_wide(&g, 2).is_none());
    }
}
