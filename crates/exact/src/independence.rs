//! Exact maximum independent set via branch & bound on 128-bit sets.

use mcds_graph::Graph;

/// Adjacency in 128-bit masks; the solver's working representation.
struct BitGraph {
    n: usize,
    adj: Vec<u128>,
}

impl BitGraph {
    fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        assert!(
            n <= 128,
            "exact independence solver supports at most 128 nodes, got {n}"
        );
        let mut adj = vec![0u128; n];
        for (u, v) in g.edges() {
            adj[u] |= 1 << v;
            adj[v] |= 1 << u;
        }
        BitGraph { n, adj }
    }

    fn full(&self) -> u128 {
        if self.n == 128 {
            u128::MAX
        } else {
            (1u128 << self.n) - 1
        }
    }
}

struct Search<'a> {
    bg: &'a BitGraph,
    best: u128,
    best_size: u32,
    steps: u64,
    budget: u64,
}

impl Search<'_> {
    /// Greedy clique-cover bound: partition the candidate set into cliques
    /// greedily; an independent set takes at most one node per clique.
    fn clique_cover_bound(&self, mut cand: u128) -> u32 {
        let mut cliques = 0u32;
        while cand != 0 {
            let v = cand.trailing_zeros() as usize;
            // Grow a clique from v within cand.
            let mut clique_common = self.bg.adj[v];
            let mut rest = cand & !(1 << v);
            cand &= !(1 << v);
            let mut member_mask = 1u128 << v;
            while rest & clique_common != 0 {
                let u = (rest & clique_common).trailing_zeros() as usize;
                member_mask |= 1 << u;
                clique_common &= self.bg.adj[u];
                rest &= !(1 << u);
                cand &= !(1 << u);
            }
            let _ = member_mask;
            cliques += 1;
        }
        cliques
    }

    /// Returns `false` when the budget ran out.
    fn run(&mut self, current: u128, current_size: u32, cand: u128) -> bool {
        self.steps += 1;
        if self.steps > self.budget {
            return false;
        }
        if cand == 0 {
            if current_size > self.best_size {
                self.best_size = current_size;
                self.best = current;
            }
            return true;
        }
        if current_size + self.clique_cover_bound(cand) <= self.best_size {
            return true; // cannot beat the incumbent
        }
        // Pivot: candidate of maximum degree within cand (removing it
        // constrains the most).
        let mut pivot = usize::MAX;
        let mut pivot_deg = -1i32;
        let mut it = cand;
        while it != 0 {
            let v = it.trailing_zeros() as usize;
            it &= it - 1;
            let d = (self.bg.adj[v] & cand).count_ones() as i32;
            if d > pivot_deg {
                pivot_deg = d;
                pivot = v;
            }
        }
        let v = pivot;
        // Branch 1: include v.
        if !self.run(
            current | (1 << v),
            current_size + 1,
            cand & !(self.bg.adj[v] | (1 << v)),
        ) {
            return false;
        }
        // Branch 2: exclude v.
        self.run(current, current_size, cand & !(1 << v))
    }
}

/// Computes a maximum independent set of `g` exactly.
///
/// # Panics
///
/// Panics if `g` has more than 128 nodes (the solver's working word).
///
/// ```
/// use mcds_graph::Graph;
/// use mcds_exact::max_independent_set;
/// assert_eq!(max_independent_set(&Graph::cycle(6)).len(), 3);
/// ```
pub fn max_independent_set(g: &Graph) -> Vec<usize> {
    try_max_independent_set(g, u64::MAX).expect("unbounded budget cannot be exhausted")
}

/// The independence number `α(G)`.
///
/// # Panics
///
/// Panics if `g` has more than 128 nodes.
pub fn independence_number(g: &Graph) -> usize {
    max_independent_set(g).len()
}

/// Budgeted variant of [`max_independent_set`]: abandons the search after
/// `max_steps` B&B nodes and returns `None` (no partial answer is
/// reported, so a `Some` is always exact).
///
/// # Panics
///
/// Panics if `g` has more than 128 nodes.
pub fn try_max_independent_set(g: &Graph, max_steps: u64) -> Option<Vec<usize>> {
    let bg = BitGraph::new(g);
    if bg.n == 0 {
        return Some(Vec::new());
    }
    let mut search = Search {
        bg: &bg,
        best: 0,
        best_size: 0,
        steps: 0,
        budget: max_steps,
    };
    let full = bg.full();
    if !search.run(0, 0, full) {
        return None;
    }
    let best = search.best;
    Some((0..bg.n).filter(|&v| best & (1 << v) != 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_graph::properties;

    #[test]
    fn known_independence_numbers() {
        assert_eq!(independence_number(&Graph::empty(0)), 0);
        assert_eq!(independence_number(&Graph::empty(7)), 7);
        assert_eq!(independence_number(&Graph::complete(8)), 1);
        assert_eq!(independence_number(&Graph::path(7)), 4);
        assert_eq!(independence_number(&Graph::cycle(7)), 3);
        assert_eq!(independence_number(&Graph::cycle(8)), 4);
        assert_eq!(independence_number(&Graph::star(9)), 8);
    }

    #[test]
    fn result_is_independent_and_maximum() {
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (6, 7),
                (7, 8),
                (8, 6),
                (0, 3),
                (3, 6),
            ],
        );
        let mis = max_independent_set(&g);
        assert!(properties::is_independent_set(&g, &mis));
        assert_eq!(mis.len(), 3); // one per triangle
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // A Kneser-ish hard-ish instance with a budget of 1 step.
        let g = Graph::cycle(30);
        assert!(try_max_independent_set(&g, 1).is_none());
        assert!(try_max_independent_set(&g, u64::MAX).is_some());
    }

    #[test]
    fn agrees_with_brute_force_on_small_graphs() {
        // Deterministic pseudo-random graphs with 10 nodes.
        let mut s = 12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..20 {
            let n = 10;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 30 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, edges);
            let fast = independence_number(&g);
            let brute = crate::brute::max_independent_set_brute(&g).len();
            assert_eq!(fast, brute, "{g:?}");
        }
    }

    #[test]
    #[should_panic(expected = "128 nodes")]
    fn oversized_graph_panics() {
        let _ = independence_number(&Graph::empty(129));
    }
}
